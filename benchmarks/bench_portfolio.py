"""Portfolio racing vs. best single engine on the circuit zoo.

The portfolio's pitch is that complementary engines have complementary
blow-up cases: BDD reachability is instant on small controllers (p3, p5) but
explodes on the wide addr_decoder datapath (p1), where the word-level ATPG
engine answers in milliseconds.  Racing them with
first-conclusive-result-wins cancellation should therefore track the best
single engine on *every* case without knowing which engine that is.

This benchmark runs each engine solo (under a wall-clock budget, so the
diverging BDD run on p1 is cut off rather than waited out) and then the full
race, and reports the portfolio's wall time against the best and worst solo
engine per case.  The table is registered with the shared reporting harness;
when ``REPRO_PORTFOLIO_REPORT`` is set the raw measurements are also written
there as JSON (the CI benchmark-smoke job uploads that file as an artifact).

Run:  python -m pytest benchmarks/bench_portfolio.py -q
"""

import json
import os

import reporting

from repro.circuits import build_case
from repro.portfolio import EngineBudget, PortfolioChecker, PortfolioOptions

#: Cases chosen so no single engine is best everywhere: the BDD engine
#: explodes on p1 but beats ATPG on the p3/p5 controllers.
CASES = ("p1", "p3", "p5")
ENGINES = ("atpg", "bdd", "random")
#: Wall-clock cap per engine; solo runs that hit it count as timeouts.
TIME_BUDGET_SECONDS = 3.0


def _budget(case) -> EngineBudget:
    return EngineBudget(
        time_seconds=TIME_BUDGET_SECONDS, max_frames=case.max_frames, seed=2000
    )


def _run(case_id, engines, run_all=False):
    """One portfolio run (fresh circuit) in process mode; returns the result."""
    case = build_case(case_id)
    checker = PortfolioChecker(
        case.circuit,
        engines=engines,
        environment=case.environment,
        initial_state=case.initial_state,
        options=PortfolioOptions(budget=_budget(case), mode="process", run_all=run_all),
    )
    return case, checker.check(case.prop)


def _measure_all():
    """Solo runs for every (case, engine) pair plus the full race per case."""
    rows = []
    for case_id in CASES:
        solo = {}
        for engine in ENGINES:
            _, result = _run(case_id, (engine,))
            engine_result = result.engine_results[0]
            solo[engine] = {
                "wall_seconds": engine_result.wall_seconds,
                "status": engine_result.status.value,
                "conclusive": engine_result.verdict is not None,
                "timed_out": engine_result.timed_out,
            }
        case, race = _run(case_id, ENGINES)
        expected = case.expected_status.value
        rows.append(
            {
                "case": case_id,
                "design": case.design,
                "expected": expected,
                "solo": solo,
                "portfolio": {
                    "wall_seconds": race.wall_seconds,
                    "status": race.status.value,
                    "winner": race.winner,
                    "agrees_with_expected": race.status.value == expected,
                },
            }
        )
    return rows


def _format_table(rows):
    header = "%-6s %-12s" % ("case", "winner")
    for engine in ENGINES:
        header += " %12s" % ("%s (s)" % engine)
    header += " %12s %10s" % ("race (s)", "verdict")
    lines = [header, "-" * len(header)]
    for row in rows:
        line = "%-6s %-12s" % (row["case"], row["portfolio"]["winner"] or "-")
        for engine in ENGINES:
            entry = row["solo"][engine]
            if entry["timed_out"]:
                cell = "timeout"
            elif not entry["conclusive"]:
                cell = "(%.3f)" % entry["wall_seconds"]
            else:
                cell = "%.3f" % entry["wall_seconds"]
            line += " %12s" % cell
        line += " %12.3f %10s" % (
            row["portfolio"]["wall_seconds"],
            row["portfolio"]["status"],
        )
        lines.append(line)
    lines.append("")
    lines.append(
        "(parenthesised solo times are inconclusive runs; 'timeout' means the"
    )
    lines.append(
        " %.0fs budget expired -- the race cancels those engines instead)"
        % TIME_BUDGET_SECONDS
    )
    return "\n".join(lines)


def test_portfolio_tracks_best_single_engine(benchmark):
    """Race the portfolio on the zoo and compare against solo engine runs."""
    rows = _measure_all()
    # The benchmarked quantity: one full race on the case where the engine
    # choice matters most (p1: BDD explodes, ATPG answers instantly).
    benchmark.pedantic(lambda: _run("p1", ENGINES), rounds=1, iterations=1)

    for row in rows:
        # Every race must settle on the paper's expected verdict.
        assert row["portfolio"]["agrees_with_expected"], row
        # The race must never degenerate to the blow-up engine's timeout;
        # deliberately loose so a loaded CI runner cannot flake the job.
        assert row["portfolio"]["wall_seconds"] < TIME_BUDGET_SECONDS, row

    table = _format_table(rows)
    reporting.register_table("[Portfolio] race vs. solo engines", table)
    print("\n[Portfolio] race vs. solo engines\n" + table)

    report_path = os.environ.get("REPRO_PORTFOLIO_REPORT")
    if report_path:
        with open(report_path, "w") as stream:
            json.dump(
                {
                    "schema": "repro-portfolio-bench/v1",
                    "engines": list(ENGINES),
                    "time_budget_seconds": TIME_BUDGET_SECONDS,
                    "rows": rows,
                },
                stream,
                indent=2,
            )
