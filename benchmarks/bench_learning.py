"""Cross-bound search learning vs. the non-learning search (`--no-learning`).

A prove-mode verification flow sweeps the check bound upward (each deeper
bound re-proves every earlier target frame before attacking the new one).
Without learning, the branch-and-bound repeats all of that work; with
learning (:class:`CheckerOptions.learning`, the default), the persistent
store riding the cached unrolled model serves repeat targets from the
proven-FAIL memo and prunes the searches -- including the first visit of
the deepest target -- with conflict-lifted illegal cubes re-based from
earlier bounds and installed mid-search.

This benchmark runs multi-bound prove-mode sweeps of the search-heavy zoo
cases (p5, p12-p14 -- all HOLD, so every target frame is searched), checks
that both arms return identical verdicts at every bound, and asserts the
headline claim: **>= 2x median speedup with learning on**.

A second, datapath-heavy sweep (p15, the industry_06 checksum cross-check)
exercises *infeasibility certificates*: every justification leaf is refuted
by the modular solver, whose certificate cores are lifted into learned
datapath cubes.  Its acceptance gates: certificates must actually flow
(``datapath_cubes_learned > 0`` and pruning fires from datapath cubes
``> 0``) and the learning arm must win by >= 1.5x median.

A third sweep measures the *persistent knowledge base* (:mod:`repro.kb`):
a store primed by one sweep per case is handed to fresh checkers (fresh
circuits, fresh model caches -- everything a new process would have), and
the warm arm must consume the persisted facts (``kb_cubes_loaded`` /
``kb_hits`` > 0) and win by >= 1.5x median over the same sweep without a
store.

Methodology note: the speedup is computed from *paired* rounds (each round
times the non-learning sweep immediately followed by the learning sweep,
and the per-case ratio is the median of per-round ratios).  Timing the two
arms minutes apart -- as separate pytest-benchmark tests would -- lets
machine-speed drift between them dominate ratios of sub-second workloads;
pairing cancels it.  The separate per-arm benchmark rows below remain the
absolute-time regression gate.
"""

import gc
import statistics as stats_module

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case

#: timing with the collector off removes cross-test GC coupling (see
#: bench_incremental.py, which established the convention).
pytestmark = pytest.mark.benchmark(disable_gc=True)

#: (case, sweep depth): every bound in 1..depth is checked in order by one
#: checker instance -- the incremental multi-bound flow.
SWEEPS = [("p5", 7), ("p12", 5), ("p13", 7), ("p14", 8)]
#: headline acceptance threshold: median speedup across the sweeps.
#: Recalibrated when the compiled implication kernel became the default:
#: learning saves the same branches (cube/hit/skip counts are pinned
#: unchanged by tests/test_compiled_justify.py), but each avoided
#: evaluation is now ~4-6x cheaper, so the wall-time ratio compressed
#: from the interpreted engine's ~2.3x to ~1.6x median.
MEDIAN_SPEEDUP = 1.3

#: the datapath-certificate sweep: every leaf of every p15 search dies in
#: the modular solver, so learning lives or dies on Infeasible cores.
DATAPATH_SWEEPS = [("p15", 5)]
#: acceptance threshold for the datapath sweep (ISSUE 5 criterion).
DATAPATH_MEDIAN_SPEEDUP = 1.5

#: the warm-knowledge-base sweep: one control-heavy, one memo-dominated and
#: one datapath-heavy case, all primed into one store.
KB_SWEEPS = [("p5", 7), ("p12", 5), ("p15", 5)]
#: acceptance threshold for the warm-KB sweep (ISSUE 6 criterion).
KB_MEDIAN_SPEEDUP = 1.5

#: paired rounds for the speedup ratios.
ROUNDS = 3
#: rounds for the absolute-time gate rows (regression gate uses minima, and
#: the paired test below re-measures both arms anyway).  Three rounds keep
#: the minima stable against transient machine-speed drift, which showed up
#: to ~20% within one smoke run on a busy host.
GATE_ROUNDS = 3


def _run_sweep(case_id, depth, learning, kb_path=None):
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=depth, incremental=True, learning=learning,
            kb_path=kb_path, trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )
    return [checker.check(case.prop, max_frames=bound) for bound in range(1, depth + 1)]


def _summarise(results):
    statuses = "/".join(result.status.value for result in results)
    totals = {
        "decisions": sum(r.statistics.decisions for r in results),
        "cubes_learned": sum(r.statistics.cubes_learned for r in results),
        "cube_hits": sum(r.statistics.cube_hits for r in results),
        "targets_skipped": sum(r.statistics.targets_skipped for r in results),
        "solver_cores": sum(r.statistics.solver_cores for r in results),
        "datapath_cubes_learned": sum(
            r.statistics.datapath_cubes_learned for r in results
        ),
        "datapath_cube_hits": sum(
            r.statistics.datapath_cube_hits for r in results
        ),
        # kb_cubes_loaded is a gauge per check; the last bound's value is
        # the total the model carried through the sweep.
        "kb_cubes_loaded": results[-1].statistics.kb_cubes_loaded,
        "kb_hits": sum(r.statistics.kb_hits for r in results),
    }
    return statuses, totals


# ----------------------------------------------------------------------
# Absolute-time regression gate rows (one per arm)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id,depth", SWEEPS + DATAPATH_SWEEPS)
def test_sweep_without_learning(benchmark, case_id, depth):
    results = benchmark.pedantic(
        _run_sweep, args=(case_id, depth, False), rounds=GATE_ROUNDS, iterations=1
    )
    _statuses, totals = _summarise(results)
    assert totals["targets_skipped"] == 0 and totals["cubes_learned"] == 0


@pytest.mark.parametrize("case_id,depth", SWEEPS + DATAPATH_SWEEPS)
def test_sweep_with_learning(benchmark, case_id, depth):
    results = benchmark.pedantic(
        _run_sweep, args=(case_id, depth, True), rounds=GATE_ROUNDS, iterations=1
    )
    _statuses, totals = _summarise(results)
    # Every repeat target after its first FAIL is served from the memo.
    assert totals["targets_skipped"] > 0


# ----------------------------------------------------------------------
# Paired speedup measurement + acceptance assertions
# ----------------------------------------------------------------------
def _paired_rounds(sweeps):
    """Paired off/on timings per case: (rows, speedups, summaries)."""
    import time

    rows = []
    speedups = []
    summaries = {}
    for case_id, depth in sweeps:
        ratios = []
        best_off = best_on = float("inf")
        summary_on = None
        for _ in range(ROUNDS):
            started = time.perf_counter()
            results_off = _run_sweep(case_id, depth, False)
            time_off = time.perf_counter() - started
            started = time.perf_counter()
            results_on = _run_sweep(case_id, depth, True)
            time_on = time.perf_counter() - started
            # Identical verdicts at every bound are part of the contract.
            statuses_off, _ = _summarise(results_off)
            statuses_on, summary_on = _summarise(results_on)
            assert statuses_on == statuses_off, (case_id, statuses_on, statuses_off)
            ratios.append(time_off / time_on if time_on > 0 else float("inf"))
            best_off = min(best_off, time_off)
            best_on = min(best_on, time_on)
        speedup = stats_module.median(ratios)
        speedups.append(speedup)
        summaries[case_id] = summary_on
        rows.append(
            "%-6s %6d %10.3f %10.3f %7.2fx %7d %6d %8d"
            % (case_id, depth, best_off, best_on, speedup,
               summary_on["cubes_learned"], summary_on["cube_hits"],
               summary_on["targets_skipped"])
        )
    return rows, speedups, summaries


def _report_speedups(title, rows, median, threshold):
    header = (
        "%-6s %6s %10s %10s %8s %7s %6s %8s"
        % ("case", "bounds", "off(s)", "on(s)", "speedup", "cubes", "hits", "skipped")
    )
    table = "\n".join(
        [header, "-" * len(header)]
        + rows
        + ["", "median speedup across sweeps: %.2fx (threshold %.1fx)"
           % (median, threshold)]
    )
    reporting.register_table(title, table)
    print("\n" + title + "\n" + table)


def test_learning_speedup_report():
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        rows, speedups, _summaries = _paired_rounds(SWEEPS)
    finally:
        if gc_was_enabled:
            gc.enable()
    median = stats_module.median(speedups)
    _report_speedups(
        "[Learning] multi-bound prove-mode sweeps, learning vs --no-learning",
        rows, median, MEDIAN_SPEEDUP,
    )
    assert median >= MEDIAN_SPEEDUP, (
        "cross-bound learning regressed: median sweep speedup is %.2fx "
        "(expected >= %.1fx)" % (median, MEDIAN_SPEEDUP)
    )


def test_kb_warm_sweep_report(tmp_path):
    """ISSUE 6 acceptance: a store primed by earlier sweeps must make fresh
    checkers faster.  The warm arm sees only what the store persisted (fresh
    circuits and model caches per sweep, as a new process would), must
    consume it (``kb_cubes_loaded`` / ``kb_hits`` > 0), return identical
    verdicts, and win by >= 1.5x median over the no-store arm."""
    import time

    kb_path = str(tmp_path / "warm.db")
    for case_id, depth in KB_SWEEPS:  # prime the store (untimed)
        _run_sweep(case_id, depth, True, kb_path=kb_path)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        rows = []
        speedups = []
        summaries = {}
        for case_id, depth in KB_SWEEPS:
            ratios = []
            best_cold = best_warm = float("inf")
            summary_warm = None
            for _ in range(ROUNDS):
                started = time.perf_counter()
                results_cold = _run_sweep(case_id, depth, True)
                time_cold = time.perf_counter() - started
                started = time.perf_counter()
                results_warm = _run_sweep(case_id, depth, True, kb_path=kb_path)
                time_warm = time.perf_counter() - started
                statuses_cold, _ = _summarise(results_cold)
                statuses_warm, summary_warm = _summarise(results_warm)
                assert statuses_warm == statuses_cold, (
                    case_id, statuses_warm, statuses_cold,
                )
                ratios.append(
                    time_cold / time_warm if time_warm > 0 else float("inf")
                )
                best_cold = min(best_cold, time_cold)
                best_warm = min(best_warm, time_warm)
            speedup = stats_module.median(ratios)
            speedups.append(speedup)
            summaries[case_id] = summary_warm
            rows.append(
                "%-6s %6d %10.3f %10.3f %7.2fx %7d %6d %8d"
                % (case_id, depth, best_cold, best_warm, speedup,
                   summary_warm["kb_cubes_loaded"], summary_warm["kb_hits"],
                   summary_warm["targets_skipped"])
            )
    finally:
        if gc_was_enabled:
            gc.enable()
    median = stats_module.median(speedups)
    header = (
        "%-6s %6s %10s %10s %8s %7s %6s %8s"
        % ("case", "bounds", "cold(s)", "warm(s)", "speedup",
           "loaded", "kbhits", "skipped")
    )
    table = "\n".join(
        [header, "-" * len(header)]
        + rows
        + ["", "median warm-KB speedup across sweeps: %.2fx (threshold %.1fx)"
           % (median, KB_MEDIAN_SPEEDUP)]
    )
    reporting.register_table(
        "[Learning] warm knowledge-base sweeps, primed store vs --no-kb", table
    )
    print("\n[Learning] warm knowledge-base sweeps, primed store vs --no-kb\n"
          + table)
    for case_id, summary in summaries.items():
        assert summary["kb_hits"] > 0, (
            "%s: the warm sweep never consumed a persisted fact" % (case_id,)
        )
    assert any(s["kb_cubes_loaded"] > 0 for s in summaries.values()), (
        "no sweep loaded any persisted cubes from the store"
    )
    assert median >= KB_MEDIAN_SPEEDUP, (
        "warm knowledge-base reuse regressed: median sweep speedup is %.2fx "
        "(expected >= %.1fx)" % (median, KB_MEDIAN_SPEEDUP)
    )


def test_datapath_certificate_speedup_report():
    """ISSUE 5 acceptance: on the datapath-heavy sweep, certificates must
    produce learned datapath cubes, those cubes must fire, and learning must
    win by >= 1.5x median over --no-learning."""
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        rows, speedups, summaries = _paired_rounds(DATAPATH_SWEEPS)
    finally:
        if gc_was_enabled:
            gc.enable()
    median = stats_module.median(speedups)
    _report_speedups(
        "[Learning] datapath-certificate sweep (p15), learning vs --no-learning",
        rows, median, DATAPATH_MEDIAN_SPEEDUP,
    )
    for case_id, summary in summaries.items():
        assert summary["solver_cores"] > 0, (
            "%s: no infeasibility certificates were produced" % (case_id,)
        )
        assert summary["datapath_cubes_learned"] > 0, (
            "%s: certificates did not produce learned datapath cubes" % (case_id,)
        )
        assert summary["datapath_cube_hits"] > 0, (
            "%s: learned datapath cubes never fired" % (case_id,)
        )
    assert median >= DATAPATH_MEDIAN_SPEEDUP, (
        "datapath certificate learning regressed: median sweep speedup is "
        "%.2fx (expected >= %.1fx)" % (median, DATAPATH_MEDIAN_SPEEDUP)
    )
