"""Cross-bound search learning vs. the non-learning search (`--no-learning`).

A prove-mode verification flow sweeps the check bound upward (each deeper
bound re-proves every earlier target frame before attacking the new one).
Without learning, the branch-and-bound repeats all of that work; with
learning (:class:`CheckerOptions.learning`, the default), the persistent
store riding the cached unrolled model serves repeat targets from the
proven-FAIL memo and prunes the searches -- including the first visit of
the deepest target -- with conflict-lifted illegal cubes re-based from
earlier bounds and installed mid-search.

This benchmark runs multi-bound prove-mode sweeps of the search-heavy zoo
cases (p5, p12-p14 -- all HOLD, so every target frame is searched), checks
that both arms return identical verdicts at every bound, and asserts the
headline claim: **>= 2x median speedup with learning on**.

Methodology note: the speedup is computed from *paired* rounds (each round
times the non-learning sweep immediately followed by the learning sweep,
and the per-case ratio is the median of per-round ratios).  Timing the two
arms minutes apart -- as separate pytest-benchmark tests would -- lets
machine-speed drift between them dominate ratios of sub-second workloads;
pairing cancels it.  The separate per-arm benchmark rows below remain the
absolute-time regression gate.
"""

import gc
import statistics as stats_module

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case

#: timing with the collector off removes cross-test GC coupling (see
#: bench_incremental.py, which established the convention).
pytestmark = pytest.mark.benchmark(disable_gc=True)

#: (case, sweep depth): every bound in 1..depth is checked in order by one
#: checker instance -- the incremental multi-bound flow.
SWEEPS = [("p5", 7), ("p12", 5), ("p13", 7), ("p14", 8)]
#: headline acceptance threshold: median speedup across the sweeps.
MEDIAN_SPEEDUP = 2.0

#: paired rounds for the speedup ratios.
ROUNDS = 3
#: rounds for the absolute-time gate rows (regression gate uses minima, and
#: the paired test below re-measures both arms anyway).  Three rounds keep
#: the minima stable against transient machine-speed drift, which showed up
#: to ~20% within one smoke run on a busy host.
GATE_ROUNDS = 3


def _run_sweep(case_id, depth, learning):
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=depth, incremental=True, learning=learning,
            trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )
    return [checker.check(case.prop, max_frames=bound) for bound in range(1, depth + 1)]


def _summarise(results):
    statuses = "/".join(result.status.value for result in results)
    totals = {
        "decisions": sum(r.statistics.decisions for r in results),
        "cubes_learned": sum(r.statistics.cubes_learned for r in results),
        "cube_hits": sum(r.statistics.cube_hits for r in results),
        "targets_skipped": sum(r.statistics.targets_skipped for r in results),
    }
    return statuses, totals


# ----------------------------------------------------------------------
# Absolute-time regression gate rows (one per arm)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case_id,depth", SWEEPS)
def test_sweep_without_learning(benchmark, case_id, depth):
    results = benchmark.pedantic(
        _run_sweep, args=(case_id, depth, False), rounds=GATE_ROUNDS, iterations=1
    )
    _statuses, totals = _summarise(results)
    assert totals["targets_skipped"] == 0 and totals["cubes_learned"] == 0


@pytest.mark.parametrize("case_id,depth", SWEEPS)
def test_sweep_with_learning(benchmark, case_id, depth):
    results = benchmark.pedantic(
        _run_sweep, args=(case_id, depth, True), rounds=GATE_ROUNDS, iterations=1
    )
    _statuses, totals = _summarise(results)
    # Every repeat target after its first FAIL is served from the memo.
    assert totals["targets_skipped"] > 0


# ----------------------------------------------------------------------
# Paired speedup measurement + acceptance assertions
# ----------------------------------------------------------------------
def test_learning_speedup_report():
    import time

    rows = []
    speedups = []
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for case_id, depth in SWEEPS:
            ratios = []
            best_off = best_on = float("inf")
            summary_on = None
            for _ in range(ROUNDS):
                started = time.perf_counter()
                results_off = _run_sweep(case_id, depth, False)
                time_off = time.perf_counter() - started
                started = time.perf_counter()
                results_on = _run_sweep(case_id, depth, True)
                time_on = time.perf_counter() - started
                # Identical verdicts at every bound are part of the contract.
                statuses_off, _ = _summarise(results_off)
                statuses_on, summary_on = _summarise(results_on)
                assert statuses_on == statuses_off, (case_id, statuses_on, statuses_off)
                ratios.append(time_off / time_on if time_on > 0 else float("inf"))
                best_off = min(best_off, time_off)
                best_on = min(best_on, time_on)
            speedup = stats_module.median(ratios)
            speedups.append(speedup)
            rows.append(
                "%-6s %6d %10.3f %10.3f %7.2fx %7d %6d %8d"
                % (case_id, depth, best_off, best_on, speedup,
                   summary_on["cubes_learned"], summary_on["cube_hits"],
                   summary_on["targets_skipped"])
            )
    finally:
        if gc_was_enabled:
            gc.enable()

    median = stats_module.median(speedups)
    header = (
        "%-6s %6s %10s %10s %8s %7s %6s %8s"
        % ("case", "bounds", "off(s)", "on(s)", "speedup", "cubes", "hits", "skipped")
    )
    table = "\n".join(
        [header, "-" * len(header)]
        + rows
        + ["", "median speedup across sweeps: %.2fx (threshold %.1fx)"
           % (median, MEDIAN_SPEEDUP)]
    )
    reporting.register_table(
        "[Learning] multi-bound prove-mode sweeps, learning vs --no-learning",
        table,
    )
    print("\n[Learning] multi-bound prove-mode sweeps, learning vs --no-learning\n" + table)
    assert median >= MEDIAN_SPEEDUP, (
        "cross-bound learning regressed: median sweep speedup is %.2fx "
        "(expected >= %.1fx)" % (median, MEDIAN_SPEEDUP)
    )
