"""cProfile harness for a representative ``repro check`` run (``make profile``).

Runs one property check under cProfile and dumps the top functions by
cumulative time, so hot-path regressions in the deductive engine are easy to
spot without wiring up external tooling.

Usage::

    python benchmarks/profile_check.py [--case p3] [--bound 12] [--top 25]
    python benchmarks/profile_check.py --no-incremental   # ablation profile
"""

import argparse
import cProfile
import os
import pstats
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.checker import AssertionChecker, CheckerOptions  # noqa: E402
from repro.checker.incremental import UnrolledModelCache  # noqa: E402
from repro.circuits import all_case_ids, build_case  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--case", default="p3", choices=all_case_ids(),
                        help="zoo property case to profile (default: p3)")
    parser.add_argument("--bound", type=int, default=12,
                        help="unrolling bound (default: 12)")
    parser.add_argument("--top", type=int, default=25,
                        help="rows in the cumulative-time dump (default: 25)")
    parser.add_argument("--no-incremental", action="store_true",
                        help="profile the fresh-rebuild path instead")
    parser.add_argument("--no-compiled", action="store_true",
                        help="profile the interpreted implication engine "
                             "instead of the compiled slot-indexed kernel")
    parser.add_argument("--output", metavar="FILE",
                        help="also write raw cProfile data to FILE")
    args = parser.parse_args(argv)

    case = build_case(args.case)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=args.bound,
            incremental=not args.no_incremental,
            compiled=not args.no_compiled,
            trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )

    profiler = cProfile.Profile()
    profiler.enable()
    result = checker.check(case.prop)
    profiler.disable()

    mode = "fresh" if args.no_incremental else "incremental"
    mode += ", interpreted" if args.no_compiled else ", compiled"
    print(
        "case %s (%s), bound %d, %s path: %s in %.3fs "
        "(%d decisions, %d frames built, rule-cache hit rate %.1f%%)\n"
        % (
            args.case, case.design, args.bound, mode, result.status.value,
            result.statistics.cpu_seconds, result.statistics.decisions,
            result.statistics.frames_built,
            100.0 * result.statistics.rule_cache_hit_rate,
        )
    )
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats("cumulative").print_stats(args.top)
    if args.output:
        stats.dump_stats(args.output)
        print("raw profile written to %s" % args.output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
