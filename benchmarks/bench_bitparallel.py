"""Throughput of the bit-parallel compiled kernel vs. the interpreted oracle.

The kernel's pitch is that interpreter overhead -- dict lookups and dynamic
dispatch per gate per vector -- dominates random-simulation cost, and that
evaluating K vectors per gate visit amortises it K ways.  This benchmark
sweeps K over {1, 64, 256, 1024} on representative circuit-zoo designs and
reports vectors/second against the vector-at-a-time reference simulator.

The acceptance bar (ISSUE 2): >= 10x vectors/sec at K=1024 on every measured
design.  The report test asserts it, so a kernel regression fails the suite,
not just the perf gate.

Run:  python -m pytest benchmarks/bench_bitparallel.py -q
"""

import random
import time

import pytest
import reporting

from repro.circuits import build_case
from repro.sim import BitParallelSim, RandomLaneSampler, compile_circuit
from repro.simulation.simulator import Simulator

#: One design per structure class: wide datapath decode (p1), counter/compare
#: control (p7), tri-state bus fabric (p11).
CASES = ("p1", "p7", "p11")
WIDTHS = (1, 64, 256, 1024)
#: vectors per interpreted measurement round.
REFERENCE_VECTORS = 384
ROUNDS = 3


def _parallel_cycles(width):
    """Cycles per bit-parallel round: keep at least ~1k vectors per round so
    small-K measurements are not sub-millisecond timer noise for the CI gate."""
    return max(6, 1024 // width)

#: (case_id, "interpreted" | K) -> best observed vectors/second.
_RATES = {}


def _prepared(case_id):
    case = build_case(case_id)
    sampler = RandomLaneSampler(case.circuit, case.environment)
    return case, sampler


def _record(key, rate):
    _RATES[key] = max(_RATES.get(key, 0.0), rate)


@pytest.mark.parametrize("case_id", CASES)
def test_interpreted_reference(benchmark, case_id):
    case, sampler = _prepared(case_id)
    rng = random.Random(2000)
    vectors = [
        sampler.scalar_vector(sampler.sample(rng, 1), 0)
        for _ in range(REFERENCE_VECTORS)
    ]

    def run():
        simulator = Simulator(case.circuit, initial_state=case.initial_state)
        started = time.perf_counter()
        for vector in vectors:
            simulator.step(vector)
        _record((case_id, "interpreted"),
                REFERENCE_VECTORS / (time.perf_counter() - started))

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("case_id", CASES)
def test_bitparallel_kernel(benchmark, case_id, width):
    case, sampler = _prepared(case_id)
    plan = compile_circuit(case.circuit)
    rng = random.Random(2000)
    cycles = _parallel_cycles(width)
    stimuli = [sampler.sample(rng, width) for _ in range(cycles)]

    def run():
        simulator = BitParallelSim(plan, lanes=width, initial_state=case.initial_state)
        started = time.perf_counter()
        for stimulus in stimuli:
            simulator.step(stimulus)
        _record((case_id, width),
                cycles * width / (time.perf_counter() - started))

    benchmark.pedantic(run, rounds=ROUNDS, iterations=1)


def test_bitparallel_speedup_report(benchmark):
    """Assemble the sweep table and enforce the >= 10x acceptance bar."""
    missing = [case_id for case_id in CASES if (case_id, "interpreted") not in _RATES]
    if missing:
        pytest.skip("reference rows did not run: %s" % (missing,))

    def _format():
        header = "%-6s %-14s %14s" % ("case", "design", "interp (v/s)")
        for width in WIDTHS:
            header += " %14s" % ("K=%d (v/s)" % width)
        header += " %10s" % "best x"
        lines = [header, "-" * len(header)]
        for case_id in CASES:
            case = build_case(case_id)
            reference = _RATES[(case_id, "interpreted")]
            line = "%-6s %-14s %14.0f" % (case_id, case.design, reference)
            best = 0.0
            for width in WIDTHS:
                rate = _RATES.get((case_id, width), 0.0)
                best = max(best, rate / reference)
                line += " %14.0f" % rate
            line += " %10.1f" % best
            lines.append(line)
        return "\n".join(lines)

    table = benchmark.pedantic(_format, rounds=1, iterations=1)
    title = (
        "[Kernel] bit-parallel vs interpreted simulation throughput "
        "(K = lanes per gate visit)"
    )
    reporting.register_table(title, table)
    print("\n" + title + "\n" + table)

    for case_id in CASES:
        reference = _RATES[(case_id, "interpreted")]
        at_1024 = _RATES.get((case_id, 1024), 0.0)
        speedup = at_1024 / reference
        assert speedup >= 10.0, (
            "bit-parallel kernel only %.1fx the interpreted simulator on %s "
            "at K=1024 (acceptance bar is 10x)" % (speedup, case_id)
        )
