"""Fig. 3 reproduction: word-level implication on an adder.

The paper's Fig. 3 shows that from ``out = 4'b0111`` and one input
``4'b1x1x`` the other input is implied to ``1x0x`` and the carry-out to 1.
The benchmark measures the cost of the ripple-carry fixpoint propagation and
asserts the implied values match the figure.
"""

import reporting

from repro.bitvector import BV3, propagate_adder
from repro.bitvector.bv3 import bv


def _fig3():
    return propagate_adder(bv("1x1x"), BV3.unknown(4), bv("0111"))


def test_fig3_adder_implication(benchmark):
    new_a, new_b, new_out, carry_in, carry_out = benchmark(_fig3)
    assert carry_out == 1
    assert new_b.bit(3) == 1 and new_b.bit(1) == 0  # 1x0x
    line = "0111 = 1x1x + ?  ==>  other input %s, carry-out %d (paper: 1x0x, 1)" % (
        new_b,
        carry_out,
    )
    reporting.register_table("[Fig 3] adder word-level implication", line)
    print("\n[Fig 3] " + line)


def test_fig3_wide_adder_scaling(benchmark):
    """Same propagation on a 32-bit adder (cost scales linearly with width)."""
    a = BV3(32, 0xA5A5A5A5, 0xF0F0F0F0)
    out = BV3.from_int(32, 0x12345678)

    result = benchmark(lambda: propagate_adder(a, BV3.unknown(32), out))
    assert result[2].is_fully_known()
