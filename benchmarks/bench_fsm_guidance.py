"""Ablation: local-FSM guidance of the ATPG search (paper Section 6 extension).

Local finite state machines are extracted up front; their locally
unreachable states are recorded as structurally illegal in the extended
state transition graph, and the justifier prunes any branch whose implied
register values enter such a state (in any time frame).

The benchmark measures the effect on two representative checks:

* the alarm-clock "hour never shows 13" proof (p9, the hardest row of
  Table 2), whose hour/minute registers carry many unreachable BCD-style
  encodings, and
* a deep witness search on a protocol controller whose phase register has
  four dead encodings.

Reported columns: extraction overhead is included in the guided run's CPU
time, so the comparison is end-to-end.
"""

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.circuits import build_case
from repro.netlist import Circuit
from repro.properties import Signal, Witness

_ROWS = []


def _build_controller():
    """A small protocol controller with unreachable phase encodings."""
    circuit = Circuit("controller")
    start = circuit.input("start", 1)
    phase = circuit.state("phase", 3)  # only 0..3 used
    advance = circuit.input("advance", 1)

    next_from = circuit.mux(
        phase,
        circuit.mux(start, circuit.const(0, 3), circuit.const(1, 3)),
        circuit.const(2, 3),
        circuit.mux(advance, circuit.const(2, 3), circuit.const(3, 3)),
        circuit.const(0, 3),
    )
    circuit.dff_into(phase, next_from, init_value=0)
    circuit.output(circuit.eq(phase, 3), name="finishing")
    return circuit


def _run_case(case_id, guidance):
    case = build_case(case_id)
    options = CheckerOptions(
        max_frames=case.max_frames, use_local_fsm_guidance=guidance
    )
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=options,
    )
    result = checker.check(case.prop)
    return case, result


def _run_controller(guidance):
    circuit = _build_controller()
    options = CheckerOptions(max_frames=10, use_local_fsm_guidance=guidance)
    checker = AssertionChecker(circuit, options=options)
    result = checker.check(Witness("reach_finish", Signal("finishing") == 1))
    return result


@pytest.mark.parametrize("guidance", [False, True])
@pytest.mark.parametrize("case_id", ["p9", "p7"])
def test_fsm_guidance_on_paper_cases(benchmark, case_id, guidance):
    case, result = benchmark.pedantic(
        _run_case, args=(case_id, guidance), rounds=1, iterations=1
    )
    assert result.status is case.expected_status
    _ROWS.append(
        (
            case_id,
            "guided" if guidance else "baseline",
            result.status.value,
            result.statistics.decisions,
            result.statistics.backtracks,
            result.statistics.cpu_seconds,
        )
    )


@pytest.mark.parametrize("guidance", [False, True])
def test_fsm_guidance_on_controller(benchmark, guidance):
    result = benchmark.pedantic(_run_controller, args=(guidance,), rounds=1, iterations=1)
    assert result.status.value == "witness_found"
    _ROWS.append(
        (
            "ctrl",
            "guided" if guidance else "baseline",
            result.status.value,
            result.statistics.decisions,
            result.statistics.backtracks,
            result.statistics.cpu_seconds,
        )
    )


def test_fsm_guidance_report(benchmark):
    if len(_ROWS) < 6:
        pytest.skip("guidance rows did not all run")

    def _format():
        header = "%-6s %-10s %-16s %10s %12s %10s" % (
            "case", "config", "verdict", "decisions", "backtracks", "cpu (s)",
        )
        lines = [header, "-" * len(header)]
        for row in sorted(_ROWS):
            lines.append("%-6s %-10s %-16s %10d %12d %10.3f" % row)
        return "\n".join(lines)

    table = benchmark.pedantic(_format, rounds=1, iterations=1)
    reporting.register_table("[Ablation] local FSM guidance (Section 6 extension)", table)
    print("\n[Ablation] local FSM guidance (Section 6 extension)\n" + table)
