"""Shared table registry for the benchmark harness.

pytest captures ``print`` output of passing tests, so tables printed inside
benchmark tests are invisible in the default ``pytest benchmarks/
--benchmark-only`` log.  Report tests therefore *register* their formatted
tables here as well; the ``pytest_terminal_summary`` hook in
``benchmarks/conftest.py`` prints every registered table after the run, which
is what ends up in ``bench_output.txt``.
"""

from typing import List, Tuple

#: (title, formatted table) pairs registered by the report tests, in order.
_TABLES: List[Tuple[str, str]] = []


def register_table(title: str, table: str) -> None:
    """Record a formatted table for the end-of-run summary."""
    _TABLES.append((title, table))


def registered_tables() -> List[Tuple[str, str]]:
    """All tables registered so far (in registration order)."""
    return list(_TABLES)


def clear() -> None:
    """Forget registered tables (used by the harness's own tests)."""
    _TABLES.clear()
