"""Table 2 reproduction: CPU time and memory for properties p1-p14.

For every property of the paper's Table 2 the combined word-level ATPG +
modular arithmetic checker is run once; the table printed at the end reports
wall-clock seconds and peak heap megabytes (the paper reports seconds and
megabytes on an UltraSparc-5 -- absolute values differ, the relative shape
across properties is the reproduction target).  Run with ``-s`` to see it.
"""

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.circuits import all_case_ids, build_case

_RESULTS = {}

#: CPU seconds reported in the paper's Table 2, for side-by-side printing.
PAPER_CPU_SECONDS = {
    "p1": 0.08, "p2": 0.09, "p3": 1.88, "p4": 1.45, "p5": 0.14, "p6": 0.59,
    "p7": 0.36, "p8": 1.31, "p9": 137.05, "p10": 14.79, "p11": 20.37,
    "p12": 1.25, "p13": 0.40, "p14": 0.03,
}

#: Memory megabytes reported in the paper's Table 2.
PAPER_MEMORY_MB = {
    "p1": 0.01, "p2": 0.01, "p3": 1.57, "p4": 1.53, "p5": 0.12, "p6": 0.20,
    "p7": 0.88, "p8": 2.74, "p9": 9.76, "p10": 54.66, "p11": 17.89,
    "p12": 2.85, "p13": 1.59, "p14": 0.02,
}


def _run_case(case_id):
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(max_frames=case.max_frames),
    )
    return case, checker.check(case.prop)


@pytest.mark.parametrize("case_id", all_case_ids())
def test_table2_property(benchmark, case_id):
    """Check one property and record its cost row."""
    case, result = benchmark.pedantic(_run_case, args=(case_id,), rounds=1, iterations=1)
    assert result.status is case.expected_status
    _RESULTS[case_id] = (case, result)


def _format_table2() -> str:
    header = "%-12s %-5s %-18s %10s %10s %12s %12s" % (
        "ckt_name", "prop", "verdict", "cpu (s)", "mem (MB)", "paper cpu", "paper mem",
    )
    lines = [header, "-" * len(header)]
    for case_id in all_case_ids():
        case, result = _RESULTS[case_id]
        lines.append(
            "%-12s %-5s %-18s %10.3f %10.2f %12.2f %12.2f"
            % (
                case.design,
                case_id,
                result.status.value,
                result.statistics.cpu_seconds,
                result.statistics.peak_memory_mb,
                PAPER_CPU_SECONDS[case_id],
                PAPER_MEMORY_MB[case_id],
            )
        )
    return "\n".join(lines)


def test_table2_report(benchmark):
    """Print the assembled Table 2 after all property rows have run.

    Uses the benchmark fixture (measuring only the formatting) so the table
    is also emitted under ``--benchmark-only``.
    """
    if len(_RESULTS) < len(all_case_ids()):
        pytest.skip("property rows did not all run (e.g. -k filtering)")
    table = benchmark.pedantic(_format_table2, rounds=1, iterations=1)
    reporting.register_table(
        "[Table 2] per-property cost (this reproduction vs. paper)", table
    )
    print("\n[Table 2] per-property cost (this reproduction vs. paper)\n" + table)
