"""Motivation experiment: random simulation vs. deterministic generation.

The paper's introduction argues that test benches derived randomly "usually
fail to detect some tricky corner-case bugs", which is what motivates the
constraint-solving engine.  This benchmark quantifies the claim on planted
corner-case bugs of increasing rarity: a bug that only fires for one specific
``width``-bit input value.

For each width we measure

* whether a fixed random-simulation budget finds the bug (and how long the
  simulation takes), and
* the time the word-level ATPG engine needs to derive the triggering input
  deterministically.

The expected shape: random simulation degrades from "sometimes finds it" to
"practically never finds it" as the value space grows, while the
deterministic engine's cost stays flat.
"""

import pytest
import reporting

from repro.baselines import RandomSimulationChecker, RandomSimulationOptions
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.result import CheckStatus
from repro.netlist import Circuit
from repro.properties import Assertion, Signal

_ROWS = []

WIDTHS = [8, 12, 16, 20]
RANDOM_BUDGET_VECTORS = 2048


def _build_corner_case(width):
    """A design whose ``bug`` output rises only for one magic input value."""
    circuit = Circuit("corner_%d" % width)
    key = circuit.input("key", width)
    magic = (0xA5A5A5A5A5 >> 3) & ((1 << width) - 1)
    circuit.output(circuit.eq(key, magic), name="bug")
    return circuit


def _run_random(width, backend):
    circuit = _build_corner_case(width)
    options = RandomSimulationOptions(
        num_runs=RANDOM_BUDGET_VECTORS // 16, cycles_per_run=16, seed=width,
        backend=backend,
    )
    checker = RandomSimulationChecker(circuit, options=options)
    result = checker.check(Assertion("no_bug", Signal("bug") == 0))
    return result, checker.vectors_simulated


def _run_atpg(width):
    circuit = _build_corner_case(width)
    checker = AssertionChecker(circuit, options=CheckerOptions(max_frames=1))
    return checker.check(Assertion("no_bug", Signal("bug") == 0))


@pytest.mark.parametrize("backend", ["interpreted", "bitparallel"])
@pytest.mark.parametrize("width", WIDTHS)
def test_random_simulation_budget(benchmark, width, backend):
    result, vectors = benchmark.pedantic(
        _run_random, args=(width, backend), rounds=1, iterations=1
    )
    found = result.status is CheckStatus.FAILS
    _ROWS.append(
        (width, "random (%s)" % backend, "found" if found else "missed", vectors,
         result.statistics.cpu_seconds)
    )


@pytest.mark.parametrize("width", WIDTHS)
def test_deterministic_engine(benchmark, width):
    result = benchmark.pedantic(_run_atpg, args=(width,), rounds=1, iterations=1)
    assert result.status is CheckStatus.FAILS, "the ATPG engine must find the planted bug"
    _ROWS.append(
        (width, "word-level ATPG", "found", 1, result.statistics.cpu_seconds)
    )


def test_corner_case_report(benchmark):
    """Assemble the comparison table."""
    if len(_ROWS) < 3 * len(WIDTHS):
        pytest.skip("corner-case rows did not all run")

    def _format():
        header = "%8s %-20s %-8s %10s %10s" % (
            "width", "engine", "outcome", "vectors", "cpu (s)",
        )
        lines = [header, "-" * len(header)]
        for row in sorted(_ROWS):
            lines.append("%8d %-20s %-8s %10d %10.3f" % row)
        return "\n".join(lines)

    table = benchmark.pedantic(_format, rounds=1, iterations=1)
    title = (
        "[Motivation] corner-case bug (single magic value in a 2**width space), "
        "random budget %d vectors" % (RANDOM_BUDGET_VECTORS,)
    )
    reporting.register_table(title, table)
    print("\n" + title + "\n" + table)
