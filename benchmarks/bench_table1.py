"""Table 1 reproduction: benchmark circuit statistics.

Regenerates the paper's Table 1 (circuit name, #lines, #gates, #FFs, #ins,
#outs) from the benchmark design generators.  The sizes of the synthetic
industrial designs are parameterised and therefore smaller than the paper's
proprietary originals; the published line counts are carried through as
metadata so the rows remain comparable.  Run with ``-s`` to see the table.
"""

import reporting

from repro.circuits import circuit_statistics


def _format_table():
    rows = circuit_statistics()
    header = "%-14s %8s %8s %6s %6s %6s" % ("ckt name", "#lines", "#gates", "#FFs", "#ins", "#outs")
    lines = [header, "-" * len(header)]
    for stats in rows:
        lines.append(
            "%-14s %8d %8d %6d %6d %6d"
            % (stats.name, stats.lines, stats.gates, stats.flip_flops, stats.inputs, stats.outputs)
        )
    return "\n".join(lines)


def test_table1_circuit_statistics(benchmark):
    """Build every benchmark design and report its Table 1 row."""
    rows = benchmark(circuit_statistics)
    assert len(rows) == 9
    table = _format_table()
    reporting.register_table("[Table 1] circuit statistics", table)
    print("\n[Table 1] circuit statistics\n" + table)
