"""Fleet-routed submits vs. direct daemon submits: the router's overhead.

The fleet router (``repro.service.fleet``) sits between the client and a
set of daemons: it fingerprints the circuit, rendezvous-hashes it onto a
shard, and then speaks the exact same wire protocol as a direct submit.
On the warm path the fingerprint comes from the router's cache, so the
whole routing layer should cost microseconds against a
milliseconds-scale round trip.  This benchmark pins that: a warm routed
submit must stay within ``OVERHEAD_FACTOR`` (plus a small absolute
allowance) of a warm direct submit to the same daemon, stay sticky to
one shard, and return bit-identical reports.

Run:  python -m pytest benchmarks/bench_fleet.py -q
"""

import asyncio
import contextlib
import os
import statistics
import tempfile
import threading
import time

import pytest
import reporting

from repro import api
from repro.service.client import (
    ServiceClient,
    ServiceError,
    check_via_service,
    service_available,
)
from repro.service.fleet import FleetEndpoint, FleetRouter
from repro.service.supervisor import ServiceOptions, serve

from bench_service import _normalized

pytestmark = pytest.mark.benchmark(disable_gc=True)

CASES = ("p5", "p15")
ROUNDS = 5
#: warm routed submits may cost at most this factor of a direct submit
#: (plus ``OVERHEAD_ALLOWANCE`` seconds of absolute slack for the
#: fingerprint-cache hit and the rendezvous hash).
OVERHEAD_FACTOR = 2.0
OVERHEAD_ALLOWANCE = 0.020


@contextlib.contextmanager
def _fleet(count=2):
    with tempfile.TemporaryDirectory(prefix="repro-bench-fleet-") as scratch:
        sockets = []
        threads = []
        for index in range(count):
            socket_path = os.path.join(scratch, "shard-%d.sock" % index)
            thread = threading.Thread(
                target=lambda p=socket_path: asyncio.run(
                    serve(ServiceOptions(socket_path=p))),
                daemon=True,
            )
            thread.start()
            sockets.append(socket_path)
            threads.append(thread)
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if all(os.path.exists(p) and service_available(p) for p in sockets):
                break
            time.sleep(0.05)
        else:
            raise RuntimeError("fleet daemons did not come up")
        try:
            yield sockets
        finally:
            for socket_path in sockets:
                with contextlib.suppress(ServiceError):
                    with ServiceClient(socket_path) as client:
                        client.shutdown()
            for thread in threads:
                thread.join(timeout=30.0)


def _measure(router, sockets):
    rows = []
    for case_id in CASES:
        request = api.CheckRequest(circuit=api.CircuitRef.case(case_id))

        # Warm the owning shard's worker (and the router's fingerprint
        # cache) before timing anything.
        first = router.check(request, fallback=False)
        shard = first.service["endpoint"]
        socket_path = next(
            endpoint.socket for endpoint in router.endpoints
            if endpoint.name == shard)

        direct_times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            direct_report = check_via_service(
                request, socket_path=socket_path, fallback=False)
            direct_times.append(time.perf_counter() - started)

        routed_times = []
        shards = set()
        for _ in range(ROUNDS):
            started = time.perf_counter()
            routed_report = router.check(request, fallback=False)
            routed_times.append(time.perf_counter() - started)
            shards.add(routed_report.service["endpoint"])

        rows.append(
            {
                "case": case_id,
                "shard": shard,
                "sticky": shards == {shard},
                "direct_median": statistics.median(direct_times),
                "routed_median": statistics.median(routed_times),
                "identical": _normalized(routed_report) == _normalized(direct_report),
            }
        )
    return rows


def _format_table(rows):
    header = "%-6s %6s %12s %12s %10s %7s %10s" % (
        "case", "shard", "direct (s)", "routed (s)", "overhead", "sticky",
        "identical",
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %6s %12.4f %12.4f %9.2fx %7s %10s"
            % (
                row["case"],
                row["shard"],
                row["direct_median"],
                row["routed_median"],
                row["routed_median"] / row["direct_median"],
                "yes" if row["sticky"] else "NO",
                "yes" if row["identical"] else "NO",
            )
        )
    lines.append("")
    lines.append(
        "(direct = warm check_via_service to the owning shard's socket;"
    )
    lines.append(
        " routed = the same submit through the two-shard FleetRouter;"
    )
    lines.append(" medians of %d rounds)" % ROUNDS)
    return "\n".join(lines)


def test_fleet_routing_overhead_is_bounded(benchmark):
    with _fleet(count=2) as sockets:
        router = FleetRouter([
            FleetEndpoint("a", sockets[0]),
            FleetEndpoint("b", sockets[1]),
        ])
        rows = _measure(router, sockets)
        # The benchmarked quantity for the regression gate: one warm
        # routed p5 submit against the already-warm shard.
        request = api.CheckRequest(circuit=api.CircuitRef.case(CASES[0]))
        benchmark.pedantic(
            lambda: router.check(request, fallback=False),
            rounds=ROUNDS,
            iterations=1,
        )

    for row in rows:
        assert row["identical"], (
            "routed verdict for %s drifted from the direct path" % row["case"]
        )
        assert row["sticky"], (
            "case %s bounced between shards on the warm path" % row["case"]
        )
        ceiling = row["direct_median"] * OVERHEAD_FACTOR + OVERHEAD_ALLOWANCE
        assert row["routed_median"] <= ceiling, (
            "fleet routing on %s cost %.4fs vs %.4fs direct "
            "(ceiling %.4fs = %.1fx + %.0fms)"
            % (row["case"], row["routed_median"], row["direct_median"],
               ceiling, OVERHEAD_FACTOR, OVERHEAD_ALLOWANCE * 1e3)
        )

    table = _format_table(rows)
    reporting.register_table("[Fleet] routed vs. direct warm submits", table)
    print("\n[Fleet] routed vs. direct warm submits\n" + table)
