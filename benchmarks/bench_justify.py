"""Compiled vs. interpreted implication kernel on search-heavy sweeps.

The justification hot path was lowered onto flat slot-indexed lanes
(:mod:`repro.implication.compiled`): ternary cubes live in parallel
``known``/``value`` int arrays, watcher lists are indexed by slot, rule
refinements are memoised as int tuples, and savepoint/rollback walk a slot
trail.  The interpreted engine is kept as a bit-identical oracle behind
``CheckerOptions.compiled``.

This benchmark drives both engines through the two workloads that dominate
checker time on the p5/p12/p15 zoo cases, and gates the headline claim:
**>= 3x median speedup across the sweep suite**.

* **search sweeps** -- the full branch-and-bound justification search,
  re-run on a warm incremental model with learning disabled so every round
  performs the complete decision/propagate/backtrack sweep (the
  daemon-warm-worker shape; FAIL memos would otherwise short-circuit it).
  p15, the wide-datapath certificate sweep, is where interpreted cube
  hashing hurts most.
* **fixpoint sweeps** -- enqueue every node and drain the worklist to a
  fixpoint on a warm model (the extend/resync shape: pure evaluation-loop
  throughput, memo-hit dominated).

Verdicts, frame counts and evaluation counters are asserted equal between
the modes in every sweep -- the speedup must never cost bit-identity.
"""

import statistics as stats_module

import pytest
import reporting

from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case

#: the warm sweeps are short; collector pauses from the cold interpreted
#: runs land disproportionately inside them (same rationale as
#: bench_incremental.py).
pytestmark = pytest.mark.benchmark(disable_gc=True)

#: (case_id, bound) for the full justification search sweeps.  Bounds keep
#: each warm round well under a second so the suite stays smoke-sized.
SEARCH_SWEEPS = [("p5", 6), ("p12", 3), ("p15", 3)]
#: (case_id, unroll depth) for the fixpoint propagation sweeps.
FIXPOINT_SWEEPS = [("p5", 12), ("p12", 6), ("p15", 6)]
#: worklist drains per timed round (single drains are sub-millisecond).
FIXPOINT_DRAINS = 50
#: headline acceptance threshold: median speedup across all six sweeps.
KERNEL_SPEEDUP = 3.0
#: timing rounds per configuration; minima feed the speedup ratios.
ROUNDS = 3

#: (sweep label, mode) -> (digest tuple, min elapsed seconds)
_RESULTS = {}


# ----------------------------------------------------------------------
# Search sweeps: warm re-justification with learning off
# ----------------------------------------------------------------------
def _search_checker(case_id, bound, compiled):
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=bound,
            compiled=compiled,
            learning=False,
            trace_memory=False,
        ),
        model_cache=UnrolledModelCache(),
    )
    return checker, case.prop


@pytest.mark.parametrize("case_id,bound", SEARCH_SWEEPS)
@pytest.mark.parametrize("mode", ["interpreted", "compiled"])
def test_search_sweep(benchmark, case_id, bound, mode):
    checker, prop = _search_checker(case_id, bound, mode == "compiled")
    # The cold check unrolls the model and fills the rule memos; the timed
    # rounds then measure the pure warm search sweep.
    cold = checker.check(prop)
    result = benchmark.pedantic(
        checker.check, args=(prop,), rounds=ROUNDS, iterations=1
    )
    assert result.status == cold.status
    _RESULTS[("search %s@%d" % (case_id, bound), mode)] = (
        (result.status.value, result.frames_explored, result.statistics.decisions),
        benchmark.stats.stats.min,
    )


# ----------------------------------------------------------------------
# Fixpoint sweeps: enqueue-all worklist drains on a warm model
# ----------------------------------------------------------------------
def _fixpoint_model(case_id, depth, compiled):
    case = build_case(case_id)
    model = UnrolledModel(case.circuit, depth, compiled=compiled)
    engine = model.engine
    # Pin frame-0 inputs so the drains propagate real implications.
    for net in case.circuit.inputs:
        engine.assign(model.key(net, 0), BV3.from_int(net.width, 1))
    nodes = list(model.active_nodes())
    engine.enqueue(nodes)
    engine.propagate()  # warm the rule memos
    return engine, nodes


def _drain(engine, nodes):
    for _ in range(FIXPOINT_DRAINS):
        engine.enqueue(nodes)
        engine.propagate()


@pytest.mark.parametrize("case_id,depth", FIXPOINT_SWEEPS)
@pytest.mark.parametrize("mode", ["interpreted", "compiled"])
def test_fixpoint_sweep(benchmark, case_id, depth, mode):
    engine, nodes = _fixpoint_model(case_id, depth, mode == "compiled")
    before = engine.node_evaluations
    benchmark.pedantic(_drain, args=(engine, nodes), rounds=ROUNDS, iterations=1)
    evaluations = engine.node_evaluations - before
    _RESULTS[("fixpoint %s@%d" % (case_id, depth), mode)] = (
        (len(nodes), evaluations),
        benchmark.stats.stats.min,
    )


# ----------------------------------------------------------------------
# Report + acceptance assertion
# ----------------------------------------------------------------------
def test_justify_speedup_report(benchmark):
    labels = ["search %s@%d" % pair for pair in SEARCH_SWEEPS]
    labels += ["fixpoint %s@%d" % pair for pair in FIXPOINT_SWEEPS]
    needed = [(label, mode) for label in labels for mode in ("interpreted", "compiled")]
    if any(key not in _RESULTS for key in needed):
        pytest.skip("not all justify benchmark rows ran")

    def _format():
        lines = [
            "%-16s %10s %10s %8s"
            % ("sweep", "interp(s)", "compiled(s)", "speedup")
        ]
        lines.append("-" * len(lines[0]))
        speedups = []
        for label in labels:
            digest_i, time_i = _RESULTS[(label, "interpreted")]
            digest_c, time_c = _RESULTS[(label, "compiled")]
            # Bit-identical behaviour is part of the contract: same verdict,
            # frames and decisions (search), same evaluation counts (fixpoint).
            assert digest_i == digest_c, (label, digest_i, digest_c)
            speedup = time_i / time_c if time_c > 0 else float("inf")
            speedups.append(speedup)
            lines.append(
                "%-16s %10.4f %10.4f %7.2fx" % (label, time_i, time_c, speedup)
            )
        median = stats_module.median(speedups)
        lines.append("")
        lines.append(
            "median kernel speedup: %.2fx (threshold %.1fx)"
            % (median, KERNEL_SPEEDUP)
        )
        return "\n".join(lines), median

    table, median = benchmark.pedantic(_format, rounds=1, iterations=1)
    reporting.register_table(
        "[Justify] compiled vs interpreted implication kernel", table
    )
    print("\n[Justify] compiled vs interpreted implication kernel\n" + table)
    assert median >= KERNEL_SPEEDUP, (
        "compiled kernel regressed: median speedup %.2fx (expected >= %.1fx)"
        % (median, KERNEL_SPEEDUP)
    )
