"""Shared fixtures and reporting hooks for the benchmark suite."""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(__file__))

import reporting  # noqa: E402  (needs the path tweak above)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every table the report tests registered, so the regenerated
    paper tables appear in the benchmark log even with output capturing on."""
    tables = reporting.registered_tables()
    if not tables:
        return
    terminalreporter.ensure_newline()
    terminalreporter.section("reproduced paper tables and experiment reports")
    for title, table in tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        for line in table.splitlines():
            terminalreporter.write_line(line)
