"""Fig. 5 / Section 4.1 reproduction: the modular linear constraint solver.

Reproduces both worked examples of Section 4:

* the 3-bit system ``[[1,1],[2,7]]·x = [5,4]`` whose only solution ``(3, 2)``
  exists under modulo-8 arithmetic, and
* the 4-bit linear circuit of Fig. 5 whose closed-form solution set
  ``x = x0 + N·f`` has 256 members (two free 4-bit variables).

The benchmark measures the Gauss-Jordan / congruence solving cost and checks
the solution sets.
"""

import reporting

from repro.modsolver.linear import ModularLinearSystem


def _solve_3bit():
    system = ModularLinearSystem.from_matrix([[1, 1], [2, 7]], [5, 4], width=3)
    return system, system.solve()


def _solve_fig5():
    system = ModularLinearSystem.from_matrix(
        [[3, -1, 0, -2], [1, 2, -2, 0]], [2, 10], width=4
    )
    return system, system.solve()


def test_section4_3bit_example(benchmark):
    system, solutions = benchmark(_solve_3bit)
    assert solutions  # a ModularSolutionSet, not an Infeasible certificate
    assert system.is_solution({"x0": 3, "x1": 2})
    line = "modulo-8 solution of [[1,1],[2,7]]x=[5,4]: (x, y) = (3, 2) found"
    reporting.register_table("[Sec 4.1] 3-bit linear example", line)
    print("\n[Sec 4] " + line)


def test_fig5_closed_form(benchmark):
    system, solutions = benchmark(_solve_fig5)
    assert solutions
    count = sum(1 for _ in solutions.enumerate(limit=512))
    assert count == 256
    assert system.is_solution({"x0": 10, "x1": 0, "x2": 0, "x3": 6})
    line = (
        "closed form x = x0 + N*f: particular %s, %d free vars, %d distinct solutions"
        % (
            [solutions.particular[v] for v in solutions.variables],
            solutions.num_free_variables,
            count,
        )
    )
    reporting.register_table("[Fig 5] linear circuit closed-form solution set", line)
    print("\n[Fig 5] " + line)


def test_linear_solver_scaling(benchmark):
    """Cost on a larger structured system (16 variables, 12 equations, 16-bit
    vectors) -- exercises the O(n^3) claim of Section 4.1.

    The right-hand side is generated from a planted solution so the system is
    feasible by construction and the solver must reproduce (a superset of) it.
    """
    width = 16
    modulus = 1 << width
    planted = {"v%d" % col: (col * 2551 + 17) % modulus for col in range(16)}

    def build_system():
        system = ModularLinearSystem(width)
        for row in range(12):
            coefficients = {
                "v%d" % col: ((row * 7 + col * 13 + 3) % 11) - 5 for col in range(16)
            }
            rhs = sum(coefficients[var] * planted[var] for var in coefficients) % modulus
            system.add_constraint(coefficients, rhs)
        return system

    def solve_large():
        return build_system().solve()

    solutions = benchmark(solve_large)
    assert solutions
    system = build_system()
    assert system.is_solution(solutions.substitute([0] * solutions.num_free_variables))
    assert system.is_solution(planted)
