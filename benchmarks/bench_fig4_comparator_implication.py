"""Fig. 4 reproduction: range-based implication across a comparator.

The paper's Fig. 4 derives, from ``x01x > 1x0x == TRUE``, the refined operand
cubes ``101x`` and ``100x`` via [min, max] range tightening and the MSB-first
mapping rules.  The benchmark reproduces the exact example and measures the
rule's cost.
"""

import reporting

from repro.bitvector import BV3
from repro.bitvector.bv3 import bv
from repro.implication.rules_compare import imply_comparator


def _fig4():
    return imply_comparator(">", [bv("x01x"), bv("1x0x"), BV3.from_int(1, 1)])


def test_fig4_comparator_implication(benchmark):
    a, b, out = benchmark(_fig4)
    assert a == bv("101x")
    assert b == bv("100x")
    line = "x01x > 1x0x = TRUE  ==>  in_a %s, in_b %s (paper: 101x, 100x)" % (a, b)
    reporting.register_table("[Fig 4] comparator range implication", line)
    print("\n[Fig 4] " + line)


def test_fig4_wide_comparator_scaling(benchmark):
    """The same tightening on 24-bit operands."""
    a = BV3(24, 0x00F000, 0x0FF00F)
    b = BV3(24, 0x800000, 0xF0000F)
    result = benchmark(lambda: imply_comparator("<", [a, b, BV3.from_int(1, 1)]))
    assert result[2].to_int() == 1
