"""False-negative ablation: modular vs. integral (rational) constraint solving.

Section 4 of the paper argues that a non-modular solver misses counterexamples
that rely on bit-vector wrap-around.  This benchmark quantifies that claim:

* the paper's multiplier example (``c = 12, a = 4`` admits ``b = 7`` only
  modulo 16),
* a sweep of random linear systems, counting how often the rational solver
  reports "no solution" while the modular solver finds one (the
  false-negative rate).
"""

import random

import reporting

from repro.baselines.integer_solver import RationalLinearSolver
from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.modular import solve_scalar_congruence


def test_multiplier_wraparound_example(benchmark):
    """b = 7 satisfies 4*b = 12 (mod 16) but not over the integers."""

    def solve():
        return solve_scalar_congruence(4, 12, 4)

    solutions = benchmark(solve)
    values = sorted(solutions.values())
    assert 3 in values and 7 in values
    integral = [b for b in values if 4 * b == 12]
    line = (
        "4*b = 12 over 4-bit vectors: modular solutions %s, integral-only solutions %s"
        % (values, integral)
    )
    reporting.register_table("[Sec 4] multiplier wrap-around example", line)
    print("\n[False negative] " + line)


def _random_system(rng, width, num_vars, num_rows):
    rows = [
        [rng.randint(-4, 4) for _ in range(num_vars)] for _ in range(num_rows)
    ]
    rhs = [rng.randint(0, (1 << width) - 1) for _ in range(num_rows)]
    return rows, rhs


def _false_negative_sweep(width=6, num_vars=3, num_rows=3, samples=150, seed=2000):
    rng = random.Random(seed)
    modular_sat = 0
    rational_sat = 0
    false_negatives = 0
    for _ in range(samples):
        rows, rhs = _random_system(rng, width, num_vars, num_rows)
        modular = ModularLinearSystem.from_matrix(rows, rhs, width).solve()
        rational = RationalLinearSolver(width).solve_matrix(rows, rhs)
        if modular:  # Infeasible (with its certificate core) is falsy
            modular_sat += 1
        if rational is not None:
            rational_sat += 1
        if modular and rational is None:
            false_negatives += 1
    return modular_sat, rational_sat, false_negatives, samples


def test_false_negative_rate(benchmark):
    modular_sat, rational_sat, false_negatives, samples = benchmark.pedantic(
        _false_negative_sweep, rounds=1, iterations=1
    )
    assert modular_sat >= rational_sat
    assert false_negatives > 0, "expected the integral solver to miss some modular solutions"
    line = (
        "%d random systems: modular SAT %d, rational SAT %d, "
        "false negatives (missed counterexamples) %d (%.1f%% of solvable systems)"
        % (
            samples,
            modular_sat,
            rational_sat,
            false_negatives,
            100.0 * false_negatives / max(1, modular_sat),
        )
    )
    reporting.register_table("[Sec 4] false-negative rate of non-modular solving", line)
    print("\n[False negative rate] " + line)
