"""Incremental vs. fresh time-frame expansion across check bounds.

The paper's outer loop re-unrolls the design for every target frame, which
makes a bound-``k`` check pay O(k^2) frame constructions before any search
starts.  The incremental path (:class:`CheckerOptions.incremental`) appends
frames to one live implication network and retracts per-bound goals through
engine savepoints, for O(k) constructions total.

This benchmark runs both paths on implication-dominated zoo assertions
(addr_decoder p2, token_ring p3, alarm_clock p7 -- all HOLD, so every bound
is explored) at bounds {4, 8, 16}, checks the verdicts agree bit-for-bit,
and asserts the headline claim: **>= 3x median speedup at bound 16**.  A
second experiment measures the multi-property batch shape, where the cached
skeleton is additionally reused across properties.
"""

import statistics as stats_module

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache
from repro.circuits import build_case, build_token_ring
from repro.properties import Assertion, AtMostOneHot, OneHot, Signal, Witness

#: The incremental runs are short (7-300 ms); garbage-collection pauses from
#: the heap the *fresh* runs build up land disproportionately inside them and
#: made the regression gate flaky.  Timing with the collector off removes
#: that cross-test coupling.
pytestmark = pytest.mark.benchmark(disable_gc=True)

CASES = ["p2", "p3", "p7"]
BOUNDS = [4, 8, 16]
#: headline acceptance threshold: median speedup across CASES at bound 16.
SPEEDUP_AT_16 = 3.0
#: multi-property batches must show a measurable win as well.
BATCH_SPEEDUP = 1.2

#: timing rounds per configuration; the minimum is used for speedup
#: ratios (noise-robust), while the regression gate keeps the median.
#: Five rounds keeps the min stable on noisy shared CI runners (the
#: workloads here are 20-500 ms, where transient load skews single shots).
ROUNDS = 5

#: (case_id, bound, mode) -> (status value, frames, min elapsed seconds)
_RESULTS = {}


def _run_case(case_id, bound, incremental):
    case = build_case(case_id)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=CheckerOptions(
            max_frames=bound, incremental=incremental, trace_memory=False
        ),
        model_cache=UnrolledModelCache(),
    )
    return checker.check(case.prop)


@pytest.mark.parametrize("bound", BOUNDS)
@pytest.mark.parametrize("case_id", CASES)
def test_fresh_unrolling(benchmark, case_id, bound):
    result = benchmark.pedantic(
        _run_case, args=(case_id, bound, False), rounds=ROUNDS, iterations=1
    )
    _RESULTS[(case_id, bound, "fresh")] = (
        result.status.value, result.frames_explored, benchmark.stats.stats.min
    )


@pytest.mark.parametrize("bound", BOUNDS)
@pytest.mark.parametrize("case_id", CASES)
def test_incremental_unrolling(benchmark, case_id, bound):
    result = benchmark.pedantic(
        _run_case, args=(case_id, bound, True), rounds=ROUNDS, iterations=1
    )
    assert result.statistics.frames_built == bound
    _RESULTS[(case_id, bound, "incremental")] = (
        result.status.value, result.frames_explored, benchmark.stats.stats.min
    )


# ----------------------------------------------------------------------
# Multi-property batches: skeleton reuse across properties
# ----------------------------------------------------------------------
def _batch_properties(ports):
    grants = [Signal(net.name) for net in ports.grants]
    return [
        Assertion("one_hot", OneHot(*grants)),
        Assertion("at_most_one", AtMostOneHot(*grants)),
        Witness("first_grant", grants[0] == 1),
        Witness("last_grant", grants[-1] == 1),
    ]


def _run_batch(incremental, bound=8):
    ports = build_token_ring()
    cache = UnrolledModelCache()
    options = CheckerOptions(
        max_frames=bound, incremental=incremental, trace_memory=False
    )
    # One checker per batch, as the batch runner does per (circuit, env) job
    # group; the incremental path shares its unrolled skeleton across all
    # four properties through the model cache.
    checker = AssertionChecker(ports.circuit, options=options, model_cache=cache)
    return [checker.check(prop) for prop in _batch_properties(ports)]


@pytest.mark.parametrize("mode", ["fresh", "incremental"])
def test_multi_property_batch(benchmark, mode):
    results = benchmark.pedantic(
        _run_batch, args=(mode == "incremental",), rounds=ROUNDS, iterations=1
    )
    _RESULTS[("batch", 8, mode)] = (
        "/".join(r.status.value for r in results),
        sum(r.frames_explored for r in results),
        benchmark.stats.stats.min,
    )


# ----------------------------------------------------------------------
# Report + acceptance assertions
# ----------------------------------------------------------------------
def test_incremental_speedup_report(benchmark):
    needed = [(c, b, m) for c in CASES for b in BOUNDS for m in ("fresh", "incremental")]
    needed += [("batch", 8, "fresh"), ("batch", 8, "incremental")]
    if any(key not in _RESULTS for key in needed):
        pytest.skip("not all incremental benchmark rows ran")

    def _format():
        lines = [
            "%-6s %6s %-14s %-14s %10s %10s %8s"
            % ("case", "bound", "fresh", "incremental", "fresh(s)", "incr(s)", "speedup")
        ]
        lines.append("-" * len(lines[0]))
        speedups_at_16 = []
        for case_id in CASES:
            for bound in BOUNDS:
                status_f, frames_f, time_f = _RESULTS[(case_id, bound, "fresh")]
                status_i, frames_i, time_i = _RESULTS[(case_id, bound, "incremental")]
                # Bit-identical verdicts are part of the contract.
                assert status_i == status_f, (case_id, bound)
                assert frames_i == frames_f, (case_id, bound)
                speedup = time_f / time_i if time_i > 0 else float("inf")
                if bound == 16:
                    speedups_at_16.append(speedup)
                lines.append(
                    "%-6s %6d %-14s %-14s %10.3f %10.3f %7.2fx"
                    % (case_id, bound, status_f, status_i, time_f, time_i, speedup)
                )
        status_f, _, batch_f = _RESULTS[("batch", 8, "fresh")]
        status_i, _, batch_i = _RESULTS[("batch", 8, "incremental")]
        assert status_i == status_f
        batch_speedup = batch_f / batch_i if batch_i > 0 else float("inf")
        lines.append(
            "%-6s %6d %-14s %-14s %10.3f %10.3f %7.2fx"
            % ("batch", 8, "4 props", "4 props", batch_f, batch_i, batch_speedup)
        )
        median_16 = stats_module.median(speedups_at_16)
        lines.append("")
        lines.append(
            "median speedup at bound 16: %.2fx (threshold %.1fx); "
            "multi-property batch: %.2fx (threshold %.1fx)"
            % (median_16, SPEEDUP_AT_16, batch_speedup, BATCH_SPEEDUP)
        )
        return "\n".join(lines), median_16, batch_speedup

    table, median_16, batch_speedup = benchmark.pedantic(_format, rounds=1, iterations=1)
    reporting.register_table(
        "[Incremental] fresh vs incremental time-frame expansion", table
    )
    print("\n[Incremental] fresh vs incremental time-frame expansion\n" + table)
    assert median_16 >= SPEEDUP_AT_16, (
        "incremental unrolling regressed: median speedup at bound 16 is "
        "%.2fx (expected >= %.1fx)" % (median_16, SPEEDUP_AT_16)
    )
    assert batch_speedup >= BATCH_SPEEDUP, (
        "multi-property model reuse regressed: batch speedup %.2fx "
        "(expected >= %.1fx)" % (batch_speedup, BATCH_SPEEDUP)
    )
