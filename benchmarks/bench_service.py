"""Warm daemon submits vs. cold in-process checks on the circuit zoo.

The verification daemon's pitch is amortisation: a per-circuit worker keeps
the parsed design, the unrolled model cache, the persistent ESTG, and an
open knowledge-base handle resident across jobs, so everything after the
first submit skips straight to the search.  This benchmark quantifies that
on the p5 and p15 zoo cases:

* **cold in-process** -- ``repro.api.check`` on a fresh request each round,
  the cost every one-shot CLI invocation pays;
* **warm daemon** -- the same request submitted over the unix socket to an
  already-warm worker.

The gate asserts the warm median is at least ``SPEEDUP_FLOOR`` times faster
per case, that the worker actually reported warm-model hits, and that the
daemon's verdicts and counterexample traces are bit-identical to the
in-process path (the daemon must never buy speed with drift).

Run:  python -m pytest benchmarks/bench_service.py -q
"""

import asyncio
import contextlib
import copy
import os
import statistics
import tempfile
import threading
import time

import pytest
import reporting

from repro import api
from repro.service.client import (
    ServiceClient,
    ServiceError,
    check_via_service,
    service_available,
)
from repro.service.supervisor import ServiceOptions, serve

pytestmark = pytest.mark.benchmark(disable_gc=True)

CASES = ("p5", "p15")
ROUNDS = 5
#: acceptance floor: warm daemon submits must beat cold in-process checks
#: by at least this factor on every measured case.
SPEEDUP_FLOOR = 5.0


@contextlib.contextmanager
def _daemon():
    with tempfile.TemporaryDirectory(prefix="repro-bench-svc-") as scratch:
        socket_path = os.path.join(scratch, "service.sock")
        thread = threading.Thread(
            target=lambda: asyncio.run(serve(ServiceOptions(socket_path=socket_path))),
            daemon=True,
        )
        thread.start()
        deadline = time.monotonic() + 20.0
        while time.monotonic() < deadline:
            if os.path.exists(socket_path) and service_available(socket_path):
                break
            time.sleep(0.05)
        else:
            raise RuntimeError("service daemon did not come up")
        try:
            yield socket_path
        finally:
            with contextlib.suppress(ServiceError):
                with ServiceClient(socket_path) as client:
                    client.shutdown()
            thread.join(timeout=30.0)


def _normalized(report: api.CheckReport) -> dict:
    """The report dict minus timing/transport fields (identity compare)."""
    payload = copy.deepcopy(report.to_dict())
    payload.pop("wall_seconds", None)
    payload.pop("source", None)
    payload.pop("service", None)
    for result in payload.get("results", []):
        result.pop("wall_seconds", None)
        result.pop("stats", None)
        for engine in result.get("engines", []):
            engine.pop("wall_seconds", None)
            engine.pop("stats", None)
    return payload


def _measure(socket_path):
    rows = []
    for case_id in CASES:
        request = api.CheckRequest(circuit=api.CircuitRef.case(case_id))

        cold_times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            cold_report = api.check(request)
            cold_times.append(time.perf_counter() - started)

        # First submit pays the worker's cold start; everything after is warm.
        check_via_service(request, socket_path=socket_path, fallback=False)
        warm_times = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            warm_report = check_via_service(
                request, socket_path=socket_path, fallback=False
            )
            warm_times.append(time.perf_counter() - started)

        rows.append(
            {
                "case": case_id,
                "cold_median": statistics.median(cold_times),
                "warm_median": statistics.median(warm_times),
                "warm_hits": warm_report.service["worker"]["warm_hits"],
                "identical": _normalized(warm_report) == _normalized(cold_report),
                "status": warm_report.results[0].status,
            }
        )
    return rows


def _format_table(rows):
    header = "%-6s %12s %12s %9s %10s %10s" % (
        "case", "cold (s)", "warm (s)", "speedup", "warm hits", "identical"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            "%-6s %12.4f %12.4f %8.1fx %10d %10s"
            % (
                row["case"],
                row["cold_median"],
                row["warm_median"],
                row["cold_median"] / row["warm_median"],
                row["warm_hits"],
                "yes" if row["identical"] else "NO",
            )
        )
    lines.append("")
    lines.append(
        "(cold = fresh in-process api.check; warm = submit to a resident"
    )
    lines.append(
        " daemon worker over the unix socket; medians of %d rounds)" % ROUNDS
    )
    return "\n".join(lines)


def test_warm_daemon_beats_cold_in_process(benchmark):
    """Warm submits are >=%.0fx faster and bit-identical.""" % SPEEDUP_FLOOR
    with _daemon() as socket_path:
        rows = _measure(socket_path)
        # The benchmarked quantity for the regression gate: one warm p5
        # submit against the already-warm worker.
        request = api.CheckRequest(circuit=api.CircuitRef.case(CASES[0]))
        benchmark.pedantic(
            lambda: check_via_service(request, socket_path=socket_path,
                                      fallback=False),
            rounds=ROUNDS,
            iterations=1,
        )

    for row in rows:
        assert row["identical"], (
            "daemon verdict for %s drifted from the in-process path" % row["case"]
        )
        assert row["warm_hits"] > 0, row
        speedup = row["cold_median"] / row["warm_median"]
        assert speedup >= SPEEDUP_FLOOR, (
            "warm daemon submit on %s only %.1fx faster than cold in-process "
            "(floor %.0fx): cold %.4fs vs warm %.4fs"
            % (row["case"], speedup, SPEEDUP_FLOOR,
               row["cold_median"], row["warm_median"])
        )

    table = _format_table(rows)
    reporting.register_table("[Service] warm daemon vs. cold in-process", table)
    print("\n[Service] warm daemon vs. cold in-process\n" + table)
