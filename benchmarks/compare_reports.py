"""CI benchmark-regression gate: diff a pytest-benchmark JSON against a baseline.

Usage::

    # Gate a run against the committed baseline (exit 1 on a regression):
    python benchmarks/compare_reports.py report.json \\
        --baseline benchmarks/BASELINE.json --threshold 0.25 \\
        --normalize --min-time 0.001

    # Refresh the committed baseline from a run (see `make bench-baseline`):
    python benchmarks/compare_reports.py report.json \\
        --write-baseline benchmarks/BASELINE.json

A benchmark *regresses* when its time grows by more than ``--threshold``
(default 25%) relative to the baseline.  The gated statistic is the
*minimum* over the benchmark's rounds when the report carries one (the
median is the fallback): contention on shared CI runners only ever inflates
timings, so min-vs-min cancels burst noise that would make a median-based
gate flaky.  ``--normalize``
first divides every ratio by a machine-speed scale, which cancels uniform
speed differences (CI runners are not the machine the baseline was recorded
on) while still catching any benchmark that slows down relative to its
peers.  The scale is the median of *per-family* median ratios (family = the
benchmark file), not of raw per-benchmark ratios: one file contributing many
parametrized entries (e.g. the kernel sweep) must not be able to absorb its
own uniform regression into the scale.

The committed baseline uses a slim schema -- just benchmark names and median
seconds -- so refreshing it produces a reviewable one-line-per-benchmark
diff instead of a full pytest-benchmark dump.  A raw pytest-benchmark JSON
is also accepted as ``--baseline`` for ad-hoc A/B comparisons.

Exit codes: 0 ok / baseline written, 1 regression detected, 2 bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

BASELINE_SCHEMA = "repro-bench-baseline/v1"


def extract_medians(payload: dict) -> Dict[str, float]:
    """Benchmark-name -> gated seconds, from either accepted format.

    For raw pytest-benchmark reports the per-benchmark *min* over rounds is
    preferred (noise-robust on shared runners); the median is the fallback.
    The slim baseline schema keeps its historical ``medians`` key, holding
    whatever statistic the generating report supplied.
    """
    if payload.get("schema") == BASELINE_SCHEMA:
        return {str(name): float(value) for name, value in payload["medians"].items()}
    if "benchmarks" in payload:
        timings: Dict[str, float] = {}
        for entry in payload["benchmarks"]:
            name = entry.get("fullname") or entry["name"]
            stats = entry["stats"]
            timings[name] = float(stats.get("min") or stats["median"])
        return timings
    raise ValueError(
        "unrecognised report format (expected pytest-benchmark JSON or %r)"
        % (BASELINE_SCHEMA,)
    )


def _load(path: str) -> Dict[str, float]:
    with open(path) as stream:
        return extract_medians(json.load(stream))


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _family_of(name: str) -> str:
    """Benchmark family: the file part of a pytest fullname."""
    return name.split("::", 1)[0]


def machine_scale(ratios: Dict[str, float]) -> float:
    """Machine-speed scale: median of per-family median ratios.

    Balancing by family keeps a single heavily-parametrized benchmark file
    from dominating the scale -- a uniform slowdown of one file's entries
    must shift its family median, not the global scale.
    """
    families: Dict[str, List[float]] = {}
    for name, ratio in ratios.items():
        families.setdefault(_family_of(name), []).append(ratio)
    return _median([_median(values) for values in families.values()])


def write_baseline(medians: Dict[str, float], path: str, source: str) -> None:
    payload = {
        "schema": BASELINE_SCHEMA,
        "source_report": source,
        "medians": {name: medians[name] for name in sorted(medians)},
    }
    with open(path, "w") as stream:
        json.dump(payload, stream, indent=2, sort_keys=True)
        stream.write("\n")


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    normalize: bool,
    min_time: float = 0.0,
    out=sys.stdout,
) -> int:
    """Print the comparison table; return the process exit code."""
    common = sorted(set(current) & set(baseline))
    if not common:
        print("error: no benchmarks in common with the baseline", file=out)
        return 2

    ratios = {name: current[name] / baseline[name] for name in common}
    scale = machine_scale(ratios) if normalize else 1.0
    if scale <= 0:
        print("error: degenerate normalization scale %r" % (scale,), file=out)
        return 2

    regressions: List[str] = []
    print(
        "%-72s %12s %12s %8s" % ("benchmark", "base (s)", "now (s)", "ratio"),
        file=out,
    )
    for name in common:
        ratio = ratios[name] / scale
        flag = ""
        if ratio > 1.0 + threshold:
            if baseline[name] < min_time:
                # Sub-min-time medians are timer noise; report, don't gate.
                flag = "  (slower, below --min-time; not gated)"
            else:
                regressions.append(name)
                flag = "  << REGRESSION"
        print(
            "%-72s %12.6f %12.6f %7.2fx%s"
            % (name, baseline[name], current[name], ratio, flag),
            file=out,
        )

    only_current = sorted(set(current) - set(baseline))
    only_baseline = sorted(set(baseline) - set(current))
    if normalize:
        print("(machine-speed normalization scale: %.3fx)" % (scale,), file=out)
    if only_current:
        print(
            "note: %d benchmark(s) not in baseline (refresh it): %s"
            % (len(only_current), ", ".join(only_current)),
            file=out,
        )
    if only_baseline:
        print(
            "note: %d baseline benchmark(s) not in this run: %s"
            % (len(only_baseline), ", ".join(only_baseline)),
            file=out,
        )

    if regressions:
        print(
            "FAIL: %d benchmark(s) slowed down more than %.0f%% vs baseline"
            % (len(regressions), threshold * 100.0),
            file=out,
        )
        return 1
    print(
        "OK: %d benchmark(s) within %.0f%% of baseline"
        % (len(common), threshold * 100.0),
        file=out,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None, out=sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="compare_reports", description=__doc__.splitlines()[0]
    )
    parser.add_argument("report", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", help="baseline to compare against")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum tolerated median slowdown (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--normalize",
        action="store_true",
        help="cancel uniform machine-speed differences by dividing every "
        "ratio by the median ratio",
    )
    parser.add_argument(
        "--min-time",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="do not gate benchmarks whose baseline median is below this "
        "(sub-millisecond medians are timer noise on shared CI runners)",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the report's medians as a new slim baseline and exit",
    )
    args = parser.parse_args(argv)

    try:
        current = _load(args.report)
    except (OSError, ValueError, KeyError) as exc:
        print("error reading report %s: %s" % (args.report, exc), file=out)
        return 2

    if args.write_baseline:
        write_baseline(current, args.write_baseline, source=args.report)
        print(
            "baseline with %d benchmark(s) written to %s"
            % (len(current), args.write_baseline),
            file=out,
        )
        return 0

    if not args.baseline:
        print("error: --baseline (or --write-baseline) is required", file=out)
        return 2
    try:
        baseline = _load(args.baseline)
    except (OSError, ValueError, KeyError) as exc:
        print("error reading baseline %s: %s" % (args.baseline, exc), file=out)
        return 2

    return compare(
        current, baseline, args.threshold, args.normalize,
        min_time=args.min_time, out=out,
    )


if __name__ == "__main__":
    sys.exit(main())
