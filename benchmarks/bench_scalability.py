"""Scalability / memory ablation: word-level ATPG vs. BDD and SAT baselines.

The paper's central systems claim is that the word-level engine is memory
efficient (linear in circuit size x time frames) and "much less sensitive to
the exponential growth of the state space" than BDD-based symbolic model
checking; it also cites SAT-based bounded model checking (Biere et al.) as
the memory-lean bit-level alternative.  This benchmark checks the one-hot
bus-select assertion (p3-style) on token rings of growing size with all
three engines and reports run time, peak heap and the size of the
representation each engine builds (search decisions, CNF clauses, or BDD
nodes).

The expected shape: the BDD engine's node count / memory blows up (or hits
its node budget and aborts) as the ring grows, while the word-level engine
and the SAT BMC baseline grow smoothly.
"""

import pytest
import reporting

from repro.baselines.bdd_checker import BddSymbolicChecker
from repro.baselines.sat_checker import SATBoundedChecker
from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.result import CheckStatus
from repro.circuits import build_token_ring
from repro.properties import Assertion, OneHot, Signal

_ROWS = []

SIZES = [3, 4, 6, 8, 10, 12]
MAX_FRAMES = 2
#: BDD node budget; exceeding it is reported as the "memory explosion" row.
BDD_NODE_LIMIT = 150_000


def _one_hot_property(ports):
    return Assertion(
        "one_hot_grants", OneHot(*[Signal(net.name) for net in ports.grants])
    )


def _run_word_level(num_clients):
    ports = build_token_ring(num_clients=num_clients, data_width=8)
    checker = AssertionChecker(
        ports.circuit, options=CheckerOptions(max_frames=MAX_FRAMES)
    )
    result = checker.check(_one_hot_property(ports))
    return ports, result


def _run_sat(num_clients):
    ports = build_token_ring(num_clients=num_clients, data_width=8)
    checker = SATBoundedChecker(ports.circuit, max_frames=MAX_FRAMES)
    result = checker.check(_one_hot_property(ports))
    return ports, result


def _run_bdd(num_clients):
    ports = build_token_ring(num_clients=num_clients, data_width=8)
    checker = BddSymbolicChecker(ports.circuit, node_limit=BDD_NODE_LIMIT)
    result = checker.check(_one_hot_property(ports))
    return ports, result


@pytest.mark.parametrize("num_clients", SIZES)
def test_scalability_word_level(benchmark, num_clients):
    ports, result = benchmark.pedantic(_run_word_level, args=(num_clients,), rounds=1, iterations=1)
    assert result.status is CheckStatus.HOLDS
    _ROWS.append(
        (
            num_clients,
            "word-level ATPG",
            result.status.value,
            result.statistics.cpu_seconds,
            result.statistics.peak_memory_mb,
            result.statistics.decisions,
        )
    )


@pytest.mark.parametrize("num_clients", SIZES)
def test_scalability_sat_bmc(benchmark, num_clients):
    ports, result = benchmark.pedantic(_run_sat, args=(num_clients,), rounds=1, iterations=1)
    assert result.status is CheckStatus.HOLDS
    _ROWS.append(
        (
            num_clients,
            "SAT BMC (bit-level)",
            result.status.value,
            result.cpu_seconds,
            result.peak_memory_mb,
            result.clauses,
        )
    )


@pytest.mark.parametrize("num_clients", SIZES)
def test_scalability_bdd_symbolic(benchmark, num_clients):
    ports, result = benchmark.pedantic(_run_bdd, args=(num_clients,), rounds=1, iterations=1)
    # The BDD engine is allowed to abort on its node budget -- that outcome
    # *is* the memory-explosion data point; it must never report a violation.
    assert result.status in (CheckStatus.HOLDS, CheckStatus.ABORTED)
    _ROWS.append(
        (
            num_clients,
            "BDD symbolic MC",
            result.status.value,
            result.cpu_seconds,
            result.peak_memory_mb,
            result.peak_nodes,
        )
    )


def test_scalability_report(benchmark):
    """Assemble the comparison table (benchmarked so it also runs under
    ``--benchmark-only`` and lands in the bench log)."""
    if len(_ROWS) < 3 * len(SIZES):
        pytest.skip("scalability rows did not all run")

    def _format():
        header = "%10s %-22s %-10s %10s %10s %22s" % (
            "clients", "engine", "verdict", "cpu (s)", "mem (MB)",
            "decisions/clauses/nodes",
        )
        lines = [header, "-" * len(header)]
        for row in sorted(_ROWS):
            lines.append("%10d %-22s %-10s %10.3f %10.2f %22d" % row)
        return "\n".join(lines)

    table = benchmark.pedantic(_format, rounds=1, iterations=1)
    reporting.register_table(
        "[Scalability] one-hot bus-select assertion on growing token rings", table
    )
    print("\n[Scalability] one-hot bus-select assertion on growing token rings\n" + table)
