"""One-page markdown summary of a pytest-benchmark JSON report.

Used by the nightly workflow to turn the full-suite ``--benchmark-json``
output into a human-readable artifact::

    python benchmarks/summarize_report.py nightly_report.json -o summary.md
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence


def _group_of(fullname: str) -> str:
    """Benchmark file stem, used as the section key."""
    return fullname.split("::")[0].rsplit("/", 1)[-1].replace(".py", "")


def summarize(payload: dict) -> str:
    machine = payload.get("machine_info", {})
    commit = payload.get("commit_info", {})
    lines = ["# Benchmark report", ""]
    meta = []
    if commit.get("id"):
        meta.append("commit `%s`" % commit["id"][:12])
    if payload.get("datetime"):
        meta.append("run %s" % payload["datetime"])
    if machine.get("node"):
        meta.append(
            "%s (%s, Python %s)"
            % (
                machine.get("node"),
                machine.get("machine", "?"),
                machine.get("python_version", "?"),
            )
        )
    if meta:
        lines.extend([" · ".join(meta), ""])

    groups = {}
    for entry in payload.get("benchmarks", []):
        fullname = entry.get("fullname") or entry["name"]
        groups.setdefault(_group_of(fullname), []).append(entry)

    total = sum(len(entries) for entries in groups.values())
    lines.append("%d benchmarks in %d groups." % (total, len(groups)))
    lines.append("")
    for group in sorted(groups):
        lines.append("## %s" % group)
        lines.append("")
        lines.append("| benchmark | median (s) | mean (s) | stddev | rounds |")
        lines.append("|---|---:|---:|---:|---:|")
        for entry in sorted(
            groups[group], key=lambda item: item["stats"]["median"], reverse=True
        ):
            stats = entry["stats"]
            name = (entry.get("fullname") or entry["name"]).split("::", 1)[-1]
            lines.append(
                "| `%s` | %.6f | %.6f | %.6f | %d |"
                % (
                    name,
                    stats["median"],
                    stats["mean"],
                    stats["stddev"],
                    stats["rounds"],
                )
            )
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="summarize_report")
    parser.add_argument("report", help="pytest-benchmark --benchmark-json output")
    parser.add_argument("-o", "--output", help="markdown output path (default: stdout)")
    args = parser.parse_args(argv)

    try:
        with open(args.report) as stream:
            payload = json.load(stream)
    except (OSError, ValueError) as exc:
        print("error reading %s: %s" % (args.report, exc), file=sys.stderr)
        return 2

    markdown = summarize(payload)
    if args.output:
        with open(args.output, "w") as stream:
            stream.write(markdown + "\n")
    else:
        print(markdown)
    return 0


if __name__ == "__main__":
    sys.exit(main())
