"""Decision-ordering and ESTG ablations.

DESIGN.md calls out two search heuristics of Section 3.2 for ablation:

1. ordering decision candidates by legal-assignment bias (and trying the
   complement of the bias first when proving) versus plain fanout ordering,
2. learning illegal states in the extended state transition graph (ESTG).

Both are measured on the alarm-clock p9 assertion (the hardest proof of
Table 2) and on an arbiter witness search, reporting decisions/backtracks.
"""

import pytest
import reporting

from repro.checker import AssertionChecker, CheckerOptions
from repro.checker.result import CheckStatus
from repro.circuits import build_case

_ROWS = []


def _run(case_id, use_bias, use_estg):
    case = build_case(case_id)
    options = CheckerOptions(max_frames=case.max_frames, use_bias=use_bias, use_estg=use_estg)
    checker = AssertionChecker(
        case.circuit,
        environment=case.environment,
        initial_state=case.initial_state,
        options=options,
    )
    result = checker.check(case.prop)
    return case, result


@pytest.mark.parametrize("use_bias", [True, False])
@pytest.mark.parametrize("case_id", ["p9", "p6"])
def test_bias_ordering_ablation(benchmark, case_id, use_bias):
    case, result = benchmark.pedantic(
        _run, args=(case_id, use_bias, False), rounds=1, iterations=1
    )
    assert result.status is case.expected_status
    _ROWS.append(
        (
            case_id,
            "bias ordering" if use_bias else "fanout ordering",
            result.statistics.decisions,
            result.statistics.backtracks,
            result.statistics.cpu_seconds,
        )
    )


@pytest.mark.parametrize("use_estg", [False, True])
def test_estg_ablation(benchmark, use_estg):
    """ESTG learning on the hardest proof (heuristic accelerator; the verdict
    is unchanged because the trace validator rejects spurious successes)."""
    case, result = benchmark.pedantic(
        _run, args=("p9", True, use_estg), rounds=1, iterations=1
    )
    assert result.status is CheckStatus.HOLDS
    _ROWS.append(
        (
            "p9",
            "ESTG on" if use_estg else "ESTG off",
            result.statistics.decisions,
            result.statistics.backtracks,
            result.statistics.cpu_seconds,
        )
    )


def test_ablation_report(benchmark):
    """Assemble the ablation table (benchmarked so it also runs under
    ``--benchmark-only`` and lands in the bench log)."""
    if not _ROWS:
        pytest.skip("no ablation rows ran")

    def _format():
        header = "%-5s %-18s %10s %12s %10s" % (
            "prop", "configuration", "decisions", "backtracks", "cpu (s)",
        )
        lines = [header, "-" * len(header)]
        for row in _ROWS:
            lines.append("%-5s %-18s %10d %12d %10.3f" % row)
        return "\n".join(lines)

    table = benchmark.pedantic(_format, rounds=1, iterations=1)
    reporting.register_table("[Ablation] decision ordering and ESTG learning", table)
    print("\n[Ablation] decision ordering and ESTG learning\n" + table)
