"""Cycle-accurate word-level simulation.

Used to validate counterexamples / witness sequences produced by the checker
(every generated trace is replayed through the simulator before being
reported), to drive initialization sequences, and by the test-bench style
examples.
"""

from repro.simulation.simulator import Simulator, SimulationTrace
from repro.simulation.vcd import VcdWriter, trace_to_vcd

__all__ = ["Simulator", "SimulationTrace", "VcdWriter", "trace_to_vcd"]
