"""A minimal VCD (value change dump) writer for simulation traces.

Counterexamples and witness sequences are much easier to inspect in a
waveform viewer than as dictionaries; this writer converts a
:class:`~repro.simulation.simulator.SimulationTrace` (or the ``trace`` of a
:class:`~repro.checker.result.Counterexample`) into the IEEE 1364 VCD text
format understood by GTKWave and every commercial waveform tool.

Only the subset of VCD needed for word-level cycle traces is emitted: one
timescale unit per clock cycle, binary vector values, and a flat scope named
after the design.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, TextIO

#: Characters usable as VCD identifier codes (printable ASCII, VCD convention).
_ID_ALPHABET = "".join(chr(code) for code in range(33, 127))


def _identifier(index: int) -> str:
    """The VCD short identifier for the ``index``-th signal."""
    if index < 0:
        raise ValueError("index must be non-negative")
    digits = []
    while True:
        digits.append(_ID_ALPHABET[index % len(_ID_ALPHABET)])
        index //= len(_ID_ALPHABET)
        if index == 0:
            break
        index -= 1
    return "".join(reversed(digits))


class VcdWriter:
    """Writes cycle-by-cycle value dictionaries as a VCD document.

    Parameters
    ----------
    design_name:
        Used as the VCD scope name.
    widths:
        Mapping from signal name to bit width.  Signals appearing in a cycle
        dictionary but not listed here are skipped.
    timescale:
        VCD timescale string; each simulated cycle advances one unit.
    """

    def __init__(
        self,
        design_name: str,
        widths: Mapping[str, int],
        timescale: str = "1 ns",
    ):
        if not widths:
            raise ValueError("at least one signal is required")
        self.design_name = design_name
        self.widths = dict(widths)
        self.timescale = timescale
        self._order: List[str] = sorted(self.widths)
        self._codes: Dict[str, str] = {
            name: _identifier(index) for index, name in enumerate(self._order)
        }

    # ------------------------------------------------------------------
    def header_lines(self) -> List[str]:
        """The declaration section of the VCD document."""
        lines = [
            "$comment repro word-level trace $end",
            "$timescale %s $end" % (self.timescale,),
            "$scope module %s $end" % (self.design_name,),
        ]
        for name in self._order:
            lines.append(
                "$var wire %d %s %s $end" % (self.widths[name], self._codes[name], name)
            )
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        return lines

    def _value_lines(self, values: Mapping[str, int], previous: Dict[str, int]) -> List[str]:
        lines: List[str] = []
        for name in self._order:
            if name not in values:
                continue
            value = int(values[name]) & ((1 << self.widths[name]) - 1)
            if name in previous and previous[name] == value:
                continue
            previous[name] = value
            width = self.widths[name]
            if width == 1:
                lines.append("%d%s" % (value, self._codes[name]))
            else:
                lines.append("b%s %s" % (format(value, "b"), self._codes[name]))
        return lines

    def format(self, cycles: Sequence[Mapping[str, int]]) -> str:
        """Render a full VCD document for the given cycle values."""
        lines = self.header_lines()
        previous: Dict[str, int] = {}
        for time, values in enumerate(cycles):
            lines.append("#%d" % (time,))
            if time == 0:
                lines.append("$dumpvars")
            lines.extend(self._value_lines(values, previous))
            if time == 0:
                lines.append("$end")
        lines.append("#%d" % (len(cycles),))
        return "\n".join(lines) + "\n"

    def write(self, cycles: Sequence[Mapping[str, int]], stream: TextIO) -> None:
        """Write the VCD document to an open text stream."""
        stream.write(self.format(cycles))

    def write_file(self, cycles: Sequence[Mapping[str, int]], path: str) -> None:
        """Write the VCD document to ``path``."""
        with open(path, "w") as stream:
            self.write(cycles, stream)


def trace_to_vcd(
    circuit,
    cycles: Sequence[Mapping[str, int]],
    signals: Optional[Iterable[str]] = None,
    timescale: str = "1 ns",
) -> str:
    """Convenience wrapper: dump a trace of ``circuit`` net values as VCD text.

    ``signals`` restricts the dump to specific net names (default: primary
    inputs, primary outputs and register outputs -- the signals a debugging
    engineer looks at first).
    """
    if signals is None:
        names: List[str] = [net.name for net in circuit.inputs]
        names += [net.name for net in circuit.outputs]
        names += [ff.q.name for ff in circuit.flip_flops]
    else:
        names = list(signals)
    widths = {}
    for name in names:
        net = circuit.net(name)
        widths[name] = net.width
    writer = VcdWriter(circuit.name, widths, timescale=timescale)
    return writer.format(cycles)
