"""A two-valued, cycle-accurate simulator for word-level netlists.

The simulator evaluates the combinational gates in topological order once per
cycle and then updates every register with its ``next_value``.  Registers
with ``init_value=None`` power up to 0 unless an explicit initial state is
supplied -- the checker never relies on that default, it is only a
convenience for test benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.netlist.arith import Adder
from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net
from repro.netlist.seq import DFF


@dataclass
class SimulationTrace:
    """Recorded net values, one dict per simulated cycle."""

    cycles: List[Dict[str, int]] = field(default_factory=list)

    def value(self, cycle: int, net_name: str) -> int:
        """Value of ``net_name`` during ``cycle`` (0-based)."""
        return self.cycles[cycle][net_name]

    def __len__(self) -> int:
        return len(self.cycles)


class Simulator:
    """Cycle-accurate simulator for a :class:`~repro.netlist.circuit.Circuit`.

    Parameters
    ----------
    circuit:
        The design to simulate.
    initial_state:
        Optional mapping from register output net (or its name) to the
        power-on value; registers not mentioned use their ``init_value``
        (or 0 when that is ``None``).
    """

    def __init__(
        self,
        circuit: Circuit,
        initial_state: Optional[Mapping[Union[Net, str], int]] = None,
    ):
        self.circuit = circuit
        self._order = circuit.topological_order()
        self.state: Dict[DFF, int] = {}
        for ff in circuit.flip_flops:
            value = ff.init_value if ff.init_value is not None else 0
            self.state[ff] = value & ff.q.mask()
        if initial_state:
            self.load_state(initial_state)
        self.values: Dict[Net, int] = {}

    # ------------------------------------------------------------------
    def load_state(self, state: Mapping[Union[Net, str], int]) -> None:
        """Overwrite selected register values."""
        by_net = {ff.q: ff for ff in self.circuit.flip_flops}
        by_name = {ff.q.name: ff for ff in self.circuit.flip_flops}
        for key, value in state.items():
            ff = by_net.get(key) if isinstance(key, Net) else by_name.get(key)
            if ff is None:
                raise KeyError("no register with output %r" % (key,))
            self.state[ff] = value & ff.q.mask()

    def register_values(self) -> Dict[str, int]:
        """Current register values keyed by output net name."""
        return {ff.q.name: value for ff, value in self.state.items()}

    # ------------------------------------------------------------------
    def evaluate_combinational(self, input_values: Mapping[Union[Net, str], int]) -> Dict[Net, int]:
        """Evaluate all combinational logic for the given input values.

        Register outputs take their current state values.  Returns the full
        net-to-value map for this cycle (also cached in ``self.values``).
        """
        values: Dict[Net, int] = {}
        for net in self.circuit.inputs:
            if net in input_values:
                values[net] = int(input_values[net]) & net.mask()
            elif net.name in input_values:
                values[net] = int(input_values[net.name]) & net.mask()
            else:
                values[net] = 0
        for ff in self.circuit.flip_flops:
            values[ff.q] = self.state[ff]
        for gate in self._order:
            values[gate.output] = gate.evaluate(values) & gate.output.mask()
            if isinstance(gate, Adder) and gate.carry_out is not None:
                values[gate.carry_out] = gate.evaluate_carry_out(values)
        self.values = values
        return values

    def step(self, input_values: Mapping[Union[Net, str], int]) -> Dict[str, int]:
        """Simulate one clock cycle; returns net values by name."""
        values = self.evaluate_combinational(input_values)
        next_state: Dict[DFF, int] = {}
        for ff in self.circuit.flip_flops:
            next_state[ff] = ff.next_value(values, self.state[ff])
        self.state = next_state
        return {net.name: value for net, value in values.items()}

    def run(self, input_sequence: Sequence[Mapping[Union[Net, str], int]]) -> SimulationTrace:
        """Simulate a sequence of cycles and record the trace."""
        trace = SimulationTrace()
        for input_values in input_sequence:
            trace.cycles.append(self.step(input_values))
        return trace
