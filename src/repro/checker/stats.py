"""Run-time and memory measurement for the Table 2 reproduction."""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Optional


@dataclass
class CheckStatistics:
    """Aggregated statistics of one property check."""

    cpu_seconds: float = 0.0
    peak_memory_mb: float = 0.0
    decisions: int = 0
    backtracks: int = 0
    conflicts: int = 0
    implications: int = 0
    arithmetic_calls: int = 0
    frames_explored: int = 0
    justify_runs: int = 0
    #: unrolled-model reuse (incremental checking path).
    models_reused: int = 0
    frames_built: int = 0
    #: implication-engine memo cache traffic during this check.
    rule_cache_hits: int = 0
    rule_cache_misses: int = 0
    justified_cache_hits: int = 0
    justified_cache_misses: int = 0
    #: datapath solver calls refuted with an infeasibility certificate.
    solver_cores: int = 0
    #: memoised solver certificates (CheckerOptions.learning): certificates
    #: newly recorded during this check, leaves answered by replaying a
    #: stored certificate instead of re-solving, and -- a gauge like
    #: ``kb_cubes_loaded`` -- certificates the model carries from the
    #: persistent knowledge base.
    solver_cores_learned: int = 0
    solver_core_hits: int = 0
    kb_solver_cores_loaded: int = 0
    #: compiled check kernel (CheckerOptions.compiled): models lowered
    #: through the compile pass during this check, and the milliseconds the
    #: pass spent (frame building, incremental extension, circuit sync).
    compiled_models: int = 0
    compile_time_ms: float = 0.0
    #: cross-bound search learning (CheckerOptions.learning).
    cubes_learned: int = 0
    cubes_lifted: int = 0
    cube_hits: int = 0
    #: learned cubes derived from datapath solver certificates, and the
    #: pruning fires attributable to them.
    datapath_cubes_learned: int = 0
    datapath_cube_hits: int = 0
    #: target frames skipped because an earlier bound proved them FAIL.
    targets_skipped: int = 0
    #: persistent knowledge base (CheckerOptions.kb_path): cubes the shared
    #: model carries from the store (a gauge, not a per-check delta) and the
    #: pruning fires / memo skips attributable to loaded facts.
    kb_cubes_loaded: int = 0
    kb_hits: int = 0
    #: high-water mark of the unjustified-node frontier during the check.
    frontier_peak: int = 0

    def accumulate_search(self, result) -> None:
        """Fold one :class:`~repro.atpg.justify.JustifyResult` into the totals."""
        self.decisions += result.decisions
        self.backtracks += result.backtracks
        self.conflicts += result.conflicts
        self.implications += result.implications
        self.arithmetic_calls += result.arithmetic_calls
        self.solver_cores += result.solver_cores
        self.justify_runs += 1

    @property
    def rule_cache_hit_rate(self) -> float:
        """Fraction of rule evaluations served from the memo cache."""
        total = self.rule_cache_hits + self.rule_cache_misses
        return self.rule_cache_hits / total if total else 0.0

    @property
    def justified_cache_hit_rate(self) -> float:
        """Fraction of justification tests served from the memo cache."""
        total = self.justified_cache_hits + self.justified_cache_misses
        return self.justified_cache_hits / total if total else 0.0


class ResourceMeter:
    """Context manager measuring wall-clock time and peak Python heap usage.

    The paper reports CPU seconds and megabytes on an UltraSparc-5; we report
    wall-clock seconds and the peak `tracemalloc` heap delta, which preserves
    the relative shape across properties (the claim under test is the *low
    memory growth* of the ATPG-based approach).
    """

    def __init__(self, trace_memory: bool = True):
        self.trace_memory = trace_memory
        self.elapsed_seconds = 0.0
        self.peak_memory_mb = 0.0
        self._start: Optional[float] = None
        self._started_tracing = False

    def __enter__(self) -> "ResourceMeter":
        self._start = time.perf_counter()
        if self.trace_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracing = True
            tracemalloc.reset_peak()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed_seconds = time.perf_counter() - (self._start or 0.0)
        if self.trace_memory and tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            self.peak_memory_mb = peak / (1024.0 * 1024.0)
            if self._started_tracing:
                tracemalloc.stop()
