"""Reporting helpers: turning check results into tables, dictionaries and text.

The paper communicates its evaluation as two tables (circuit statistics and
per-property cost).  This module renders :class:`~repro.checker.result.CheckResult`
objects in the same shapes so that the CLI, the examples and the benchmark
harness all share one formatter:

* :func:`result_to_dict` / :func:`results_to_json` -- machine readable output;
* :func:`format_result` -- one readable block per property, including the
  counterexample / witness trace when one exists;
* :func:`format_results_table` -- the Table 2 layout (verdict, CPU seconds,
  peak memory, search statistics) for a batch of results.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.checker.result import CheckResult, CheckStatus, Counterexample


def counterexample_to_dict(counterexample: Counterexample) -> Dict[str, object]:
    """A JSON-friendly description of a trace."""
    return {
        "initial_state": dict(counterexample.initial_state),
        "inputs": [dict(vector) for vector in counterexample.inputs],
        "target_frame": counterexample.target_frame,
        "monitor": counterexample.monitor_name,
        "validated": counterexample.validated,
        "length": counterexample.length,
    }


def statistics_to_dict(statistics) -> Dict[str, object]:
    """The JSON-friendly search/reuse statistics shared by the check report
    and the portfolio engine details (one mapping, so the two cannot drift).
    """
    return {
        "decisions": statistics.decisions,
        "backtracks": statistics.backtracks,
        "conflicts": statistics.conflicts,
        "implications": statistics.implications,
        "arithmetic_calls": statistics.arithmetic_calls,
        "solver_cores": statistics.solver_cores,
        "solver_cores_learned": statistics.solver_cores_learned,
        "solver_core_hits": statistics.solver_core_hits,
        "kb_solver_cores_loaded": statistics.kb_solver_cores_loaded,
        "models_reused": statistics.models_reused,
        "frames_built": statistics.frames_built,
        "compiled_models": statistics.compiled_models,
        "compile_time_ms": round(statistics.compile_time_ms, 3),
        "rule_cache_hit_rate": round(statistics.rule_cache_hit_rate, 4),
        "justified_cache_hit_rate": round(statistics.justified_cache_hit_rate, 4),
        "cubes_learned": statistics.cubes_learned,
        "cubes_lifted": statistics.cubes_lifted,
        "cube_hits": statistics.cube_hits,
        "datapath_cubes_learned": statistics.datapath_cubes_learned,
        "datapath_cube_hits": statistics.datapath_cube_hits,
        "targets_skipped": statistics.targets_skipped,
        "kb_cubes_loaded": statistics.kb_cubes_loaded,
        "kb_hits": statistics.kb_hits,
        "frontier_peak": statistics.frontier_peak,
        "peak_memory_mb": round(statistics.peak_memory_mb, 4),
    }


def result_to_dict(result: CheckResult) -> Dict[str, object]:
    """A JSON-friendly description of one property check."""
    statistics = result.statistics
    payload: Dict[str, object] = {
        "property": result.prop.name,
        "kind": "assertion" if result.prop.is_assertion else "witness",
        "status": result.status.value,
        "frames_explored": result.frames_explored,
        "cpu_seconds": round(statistics.cpu_seconds, 6),
    }
    payload.update(statistics_to_dict(statistics))
    if result.counterexample is not None:
        payload["trace"] = counterexample_to_dict(result.counterexample)
    return payload


def results_to_json(results: Iterable[CheckResult], indent: int = 2) -> str:
    """Serialise a batch of results as a JSON array."""
    return json.dumps([result_to_dict(result) for result in results], indent=indent)


def format_result(result: CheckResult, include_trace: bool = True) -> str:
    """A readable multi-line report for one property."""
    statistics = result.statistics
    lines = [
        "property %s (%s): %s"
        % (
            result.prop.name,
            "assertion" if result.prop.is_assertion else "witness",
            result.status.value,
        ),
        "  frames explored : %d" % (result.frames_explored,),
        "  cpu time        : %.3f s" % (statistics.cpu_seconds,),
        "  peak memory     : %.2f MB" % (statistics.peak_memory_mb,),
        "  decisions       : %d (%d backtracks, %d conflicts)"
        % (statistics.decisions, statistics.backtracks, statistics.conflicts),
        "  implications    : %d (%d arithmetic solver calls)"
        % (statistics.implications, statistics.arithmetic_calls),
    ]
    if include_trace and result.counterexample is not None:
        label = (
            "counterexample" if result.status is CheckStatus.FAILS else "witness trace"
        )
        lines.append("  %s:" % (label,))
        for trace_line in result.counterexample.summary().splitlines():
            lines.append("    " + trace_line)
    return "\n".join(lines)


def format_results_table(
    results: Sequence[CheckResult],
    labels: Optional[Sequence[str]] = None,
    paper_cpu: Optional[Mapping[str, float]] = None,
    paper_memory: Optional[Mapping[str, float]] = None,
) -> str:
    """The Table 2 layout for a batch of results.

    ``labels`` overrides the row labels (default: property names); when the
    paper's published numbers are supplied the corresponding columns are
    appended for side-by-side comparison.
    """
    if labels is not None and len(labels) != len(results):
        raise ValueError("labels must match results one-to-one")
    names = list(labels) if labels is not None else [r.prop.name for r in results]

    with_paper = paper_cpu is not None or paper_memory is not None
    header = "%-22s %-18s %10s %10s %10s %10s" % (
        "property", "verdict", "cpu (s)", "mem (MB)", "decisions", "backtracks",
    )
    if with_paper:
        header += " %12s %12s" % ("paper cpu", "paper mem")
    lines = [header, "-" * len(header)]
    for name, result in zip(names, results):
        statistics = result.statistics
        row = "%-22s %-18s %10.3f %10.2f %10d %10d" % (
            name,
            result.status.value,
            statistics.cpu_seconds,
            statistics.peak_memory_mb,
            statistics.decisions,
            statistics.backtracks,
        )
        if with_paper:
            row += " %12s %12s" % (
                "%.2f" % paper_cpu[name] if paper_cpu and name in paper_cpu else "-",
                "%.2f" % paper_memory[name] if paper_memory and name in paper_memory else "-",
            )
        lines.append(row)
    return "\n".join(lines)
