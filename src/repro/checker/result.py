"""Check results, verdicts and counterexample traces."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.checker.stats import CheckStatistics
from repro.properties.spec import Property


class CheckStatus(enum.Enum):
    """Verdict of a property check."""

    #: The assertion holds for every explored unrolling depth.
    HOLDS = "holds"
    #: A counterexample violating the assertion was found (and validated).
    FAILS = "fails"
    #: A witness sequence satisfying the goal was found (witness properties).
    WITNESS_FOUND = "witness_found"
    #: No witness exists within the explored unrolling depth.
    WITNESS_NOT_FOUND = "witness_not_found"
    #: A resource limit was reached before a conclusion.
    ABORTED = "aborted"

    @property
    def is_conclusive(self) -> bool:
        return self is not CheckStatus.ABORTED


@dataclass
class Counterexample:
    """A concrete trace demonstrating a property violation (or a witness).

    ``inputs`` holds one input vector per time frame; ``initial_state`` the
    register values at frame 0; ``trace`` the full simulated net values per
    frame; ``target_frame`` the frame in which the (inverted) property goal
    is met.
    """

    initial_state: Dict[str, int]
    inputs: List[Dict[str, int]]
    trace: List[Dict[str, int]]
    target_frame: int
    monitor_name: str
    validated: bool = False

    @property
    def length(self) -> int:
        """Number of time frames in the trace."""
        return len(self.inputs)

    def value(self, frame: int, net_name: str) -> int:
        """Value of a net in a given frame of the simulated trace."""
        return self.trace[frame][net_name]

    def summary(self) -> str:
        """A short human-readable description of the trace."""
        lines = ["%d-cycle trace, goal at frame %d" % (self.length, self.target_frame)]
        for frame, vector in enumerate(self.inputs):
            interesting = ", ".join(
                "%s=%d" % (name, value) for name, value in sorted(vector.items())
            )
            lines.append("  frame %d: %s" % (frame, interesting))
        return "\n".join(lines)


@dataclass
class CheckResult:
    """Verdict, trace (when one exists) and statistics of one property check."""

    prop: Property
    status: CheckStatus
    frames_explored: int
    counterexample: Optional[Counterexample] = None
    statistics: CheckStatistics = field(default_factory=CheckStatistics)

    @property
    def holds(self) -> bool:
        """True when the assertion holds (bounded) / the witness search is
        conclusive in the expected direction."""
        return self.status in (CheckStatus.HOLDS, CheckStatus.WITNESS_FOUND)

    def __repr__(self) -> str:
        return "CheckResult(%s: %s, frames=%d, cpu=%.3fs, mem=%.2fMB)" % (
            self.prop.name,
            self.status.value,
            self.frames_explored,
            self.statistics.cpu_seconds,
            self.statistics.peak_memory_mb,
        )
