"""Counterexample / witness trace compaction by loop removal.

The checker already keeps generated sequences short by targeting the
earliest frame that can violate the property, but sequences obtained from
other sources (random simulation, user test benches, deeper-than-necessary
bounds) often wander through the same state more than once.  Any cycle
through a repeated register state can be cut out without changing the
trace's endpoint behaviour; the result is re-simulated and re-checked before
being accepted, so compaction can never produce an invalid trace.

This is the practical use of the execution-loop detection named in the
paper's future work (Section 6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.atpg.statehash import StateHasher, find_first_loop
from repro.checker.result import Counterexample
from repro.netlist.circuit import Circuit
from repro.simulation.simulator import Simulator


@dataclass
class CompactionResult:
    """The outcome of compacting one trace."""

    original_length: int
    compacted_length: int
    loops_removed: int
    counterexample: Counterexample

    @property
    def shortened(self) -> bool:
        """True when at least one loop was removed."""
        return self.compacted_length < self.original_length


def _state_sequence(circuit: Circuit, counterexample: Counterexample) -> List[Dict[str, int]]:
    """Register-state snapshots *before* each frame of the trace (frame 0 is
    the initial state)."""
    register_names = [ff.q.name for ff in circuit.flip_flops]
    simulator = Simulator(circuit, initial_state=counterexample.initial_state)
    states: List[Dict[str, int]] = []
    for vector in counterexample.inputs:
        states.append({name: simulator.register_values()[name] for name in register_names})
        simulator.step(vector)
    return states


def _rebuild(
    circuit: Circuit,
    counterexample: Counterexample,
    inputs: List[Dict[str, int]],
    goal_value: Optional[int],
) -> Optional[Counterexample]:
    """Re-simulate a candidate input sequence; return a validated trace or
    ``None`` when the goal is no longer met at the final frame."""
    simulator = Simulator(circuit, initial_state=counterexample.initial_state)
    trace = [simulator.step(vector) for vector in inputs]
    monitor_value = trace[-1][counterexample.monitor_name]
    expected = goal_value if goal_value is not None else counterexample.trace[
        counterexample.target_frame
    ][counterexample.monitor_name]
    if monitor_value != expected:
        return None
    return Counterexample(
        initial_state=dict(counterexample.initial_state),
        inputs=[dict(vector) for vector in inputs],
        trace=trace,
        target_frame=len(inputs) - 1,
        monitor_name=counterexample.monitor_name,
        validated=True,
    )


def compact_trace(
    circuit: Circuit,
    counterexample: Counterexample,
    max_iterations: int = 64,
) -> CompactionResult:
    """Remove state loops from a trace while preserving its final behaviour.

    The input trace must target its *last* frame (which is how the checker
    and the random-simulation baseline construct traces).  Returns the
    original trace unchanged when no loop can be removed.
    """
    goal_value = counterexample.trace[counterexample.target_frame][
        counterexample.monitor_name
    ]
    best = counterexample
    inputs = [dict(vector) for vector in counterexample.inputs]
    loops_removed = 0

    for _ in range(max_iterations):
        states = _state_sequence(circuit, best)
        loop = find_first_loop(states, StateHasher())
        if loop is None:
            break
        # Cut the input vectors that drive the loop [start, end).
        candidate_inputs = inputs[: loop.start] + inputs[loop.end :]
        if not candidate_inputs:
            break
        candidate = _rebuild(circuit, counterexample, candidate_inputs, goal_value)
        if candidate is None:
            # The loop interacts with the goal (e.g. the monitor depends on a
            # Delayed register outside the hashed state); keep the trace.
            break
        best = candidate
        inputs = [dict(vector) for vector in candidate.inputs]
        loops_removed += 1

    return CompactionResult(
        original_length=counterexample.length,
        compacted_length=best.length,
        loops_removed=loops_removed,
        counterexample=best,
    )
