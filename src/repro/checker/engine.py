"""The top-level assertion checking engine (paper Fig. 1 / Fig. 2 outer loop).

For a target frame ``t`` (growing from the property's warm-up depth to the
configured maximum), the engine:

1. unrolls the design over ``t + 1`` time frames,
2. asserts the environmental constraints in every frame and the inverted
   property goal at frame ``t``,
3. runs the word-level ATPG justifier (with the modular arithmetic solver in
   the loop) to search for an input sequence meeting the goal,
4. on success, extracts and *simulates* the trace to validate it before
   reporting a counterexample / witness,
5. on failure, moves on to the next target frame; when every frame up to the
   bound fails, the assertion holds (bounded) or the witness does not exist
   within the bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.atpg.estg import ExtendedStateTransitionGraph, LearnedCube
from repro.atpg.justify import (
    Justifier,
    JustifierLimits,
    JustifyOutcome,
    LearningContext,
)
from repro.atpg.statehash import property_digest, property_search_digest
from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.checker.incremental import UnrolledModelCache, shared_model_cache
from repro.checker.result import CheckResult, CheckStatus, Counterexample
from repro.checker.stats import CheckStatistics, ResourceMeter
from repro.implication.assignment import ImplicationConflict, RootCause
from repro.netlist.circuit import Circuit
from repro.properties.convert import CompiledProperty, PropertyCompiler
from repro.properties.environment import Environment
from repro.properties.spec import Assertion, Property
from repro.simulation.simulator import Simulator


@dataclass
class CheckerOptions:
    """Configuration of the assertion checker."""

    #: maximum number of time frames explored (bounded check depth).
    max_frames: int = 8
    #: reuse one incrementally extended unrolled model across target frames
    #: and properties (retracting per-bound goals through engine savepoints)
    #: instead of rebuilding the implication network for every bound.
    incremental: bool = True
    #: cross-bound search learning: persist conflict-lifted illegal cubes
    #: and proven-FAIL target frames on the cached model, pruning every
    #: later bound and every property sharing the (circuit, initial state,
    #: environment) cache key.  Sound (prune-only), so verdicts and
    #: counterexamples match the non-learning search; decision counts may
    #: shrink.  Effective only together with ``incremental``.
    learning: bool = True
    #: path of a persistent knowledge base (:mod:`repro.kb`): learned cubes
    #: and proven-FAIL memos are loaded from it before checking and flushed
    #: back on checker teardown, extending the learning above across
    #: *processes*.  ``None`` keeps learned state process-local.  Effective
    #: only together with ``incremental`` and ``learning``.
    kb_path: Optional[str] = None
    #: validate every generated trace by concrete simulation.
    validate_traces: bool = True
    #: run implication on the compiled check kernel: the unrolled network is
    #: lowered once into flat slot-indexed arrays (ternary value lanes,
    #: int-indexed watcher lists, a compiled rule table) instead of the
    #: per-step dict-dispatch interpreter.  Bit-identical by contract --
    #: verdicts, counterexamples, learned cubes and every counter match the
    #: interpreted engine, which stays available (``--no-compiled``) as the
    #: soundness oracle.
    compiled: bool = True
    #: use the legal-assignment-bias decision ordering (ablation switch).
    use_bias: bool = True
    #: re-rank decision candidates by the fire counts of the learned cubes
    #: naming them (hot conflict drivers first).  A deterministic ordering
    #: heuristic, off by default; changes decision order but never verdicts.
    cube_hit_ordering: bool = False
    #: learn illegal states in an extended state transition graph.  This is a
    #: heuristic accelerator; it may prune witness branches, so it is off by
    #: default and mainly used by the ablation benchmarks.
    use_estg: bool = False
    #: extract local FSMs up front and seed the ESTG with their locally
    #: unreachable states (the paper's Section 6 extension).  Implies ESTG use
    #: for the structural store; sound because locally unreachable states can
    #: never occur in any execution from the default initial state.
    use_local_fsm_guidance: bool = False
    #: register width limit for the local FSM extraction.
    fsm_guidance_max_width: int = 4
    #: mass-sample this many random vectors on the bit-parallel kernel and
    #: use the measured signal probabilities as the decision-bias fallback
    #: (0 disables sampling; the rule-based 0.5 fallback is used instead).
    probability_sample_vectors: int = 0
    #: RNG seed for the probability mass sampling.
    probability_sample_seed: int = 2000
    #: measure peak heap usage with tracemalloc (small overhead).
    trace_memory: bool = True
    #: resource limits of the branch-and-bound search.
    limits: JustifierLimits = field(default_factory=JustifierLimits)

    @classmethod
    def from_request(cls, request) -> "CheckerOptions":
        """Adapter over the unified :class:`repro.api.CheckRequest`.

        The request is the single authoritative knob list; this class no
        longer duplicates it -- it just maps the shared fields onto the
        checker's switches.  Duck-typed so :mod:`repro.api` stays the only
        module that imports across layers.
        """
        options = cls(
            incremental=request.incremental,
            learning=request.learning,
            kb_path=request.kb_path,
            use_local_fsm_guidance=request.fsm_guidance,
            compiled=request.compiled,
            cube_hit_ordering=request.cube_hit_ordering,
        )
        if request.max_frames is not None:
            options.max_frames = request.max_frames
        return options


class AssertionChecker:
    """Checks assertion / witness properties on a word-level RTL netlist."""

    def __init__(
        self,
        circuit: Circuit,
        environment: Optional[Environment] = None,
        initial_state: Optional[Mapping[str, int]] = None,
        options: Optional[CheckerOptions] = None,
        model_cache: Optional[UnrolledModelCache] = None,
    ):
        circuit.validate()
        self.circuit = circuit
        self.environment = environment if environment is not None else Environment()
        self.options = options if options is not None else CheckerOptions()
        #: cache of incremental unrolled models (shared across checker
        #: instances by default; inject a private one for isolation).
        self.model_cache = model_cache if model_cache is not None else shared_model_cache()
        self._incremental_model: Optional[UnrolledModel] = None
        self._restore_savepoint = None
        self._counter_marks = (0, 0, 0, 0, 0, 0.0)
        self._learning_marks = None
        #: persistent knowledge base handle (None when not configured).
        self._kb = None
        if (
            self.options.kb_path
            and self.options.incremental
            and self.options.learning
        ):
            from repro.kb import circuit_snapshot, open_knowledge_base

            # Snapshot the circuit's structural fingerprint and net-name set
            # *before* this checker compiles assumption/property monitors
            # into it, so the on-disk key names the bare design.
            circuit_snapshot(circuit)
            self._kb = open_knowledge_base(self.options.kb_path)
        self.compiler = PropertyCompiler(circuit)
        use_estg = self.options.use_estg or self.options.use_local_fsm_guidance
        self.estg = ExtendedStateTransitionGraph(enabled=use_estg)
        self._assumption_nets = [
            self.compiler.compile_condition(expr, name="assume")
            for expr in self.environment.assumptions
        ]
        self._one_hot_nets = [
            self._compile_one_hot(group) for group in self.environment.one_hot_groups
        ]
        self.initial_state = self._derive_initial_state(initial_state)
        self._sampled_probabilities: Optional[Dict[str, float]] = None
        if self.options.probability_sample_vectors > 0:
            from repro.atpg.probability import estimate_signal_probabilities

            # Sample once per checker: the compiled property monitors added
            # later only extend the netlist, so design-net estimates stay
            # valid across every check() call.
            self._sampled_probabilities = estimate_signal_probabilities(
                self.circuit,
                environment=self.environment,
                initial_state=self.initial_state,
                num_vectors=self.options.probability_sample_vectors,
                seed=self.options.probability_sample_seed,
            )
        if self.options.use_local_fsm_guidance:
            self._seed_fsm_guidance()

    # ------------------------------------------------------------------
    def _seed_fsm_guidance(self) -> None:
        """Extract local FSMs and record their unreachable states in the ESTG.

        Reachability is computed from the register value the check actually
        starts from (the derived initial state when one is known, the
        register's ``init_value`` otherwise), so the recorded facts stay
        sound even when an explicit initial state overrides the power-on
        values.  The property-to-constraint conversion adds monitor logic but
        no new registers, so the guidance remains valid for every property
        checked against this circuit.
        """
        from repro.analysis.fsm import extract_local_fsms

        fsms = extract_local_fsms(
            self.circuit, max_width=self.options.fsm_guidance_max_width
        )
        overrides = self.initial_state or {}
        for fsm in fsms:
            start = overrides.get(fsm.register_name, fsm.initial_state)
            if start is None:
                continue
            for state in sorted(fsm.unreachable_states(from_state=start)):
                cube = ExtendedStateTransitionGraph.state_cube(
                    [(fsm.register_name, BV3.from_int(fsm.width, state))]
                )
                self.estg.record_structurally_illegal_state(cube)

    # ------------------------------------------------------------------
    def _derive_initial_state(
        self, explicit: Optional[Mapping[str, int]]
    ) -> Optional[Dict[str, int]]:
        if explicit is not None:
            return dict(explicit)
        if self.environment.initialization is not None:
            return self.environment.initialization.derive_initial_state(self.circuit)
        return None

    def _compile_one_hot(self, group: List[str]):
        from repro.properties.spec import OneHot, Signal

        return self.compiler.compile_condition(
            OneHot(*[Signal(name) for name in group]), name="onehot"
        )

    # ------------------------------------------------------------------
    def check(self, prop: Property, max_frames: Optional[int] = None) -> CheckResult:
        """Check one property and return the verdict with statistics."""
        compiled = self.compiler.compile(prop)
        statistics = CheckStatistics()
        bound = max_frames if max_frames is not None else self.options.max_frames
        aborted = False
        counterexample: Optional[Counterexample] = None

        with ResourceMeter(trace_memory=self.options.trace_memory) as meter:
            try:
                if self.options.incremental:
                    self._incremental_model, reused = self.model_cache.acquire(
                        self.circuit, self.initial_state, self.environment,
                        compiled=self.options.compiled,
                    )
                    if reused:
                        statistics.models_reused += 1
                    else:
                        # Count the skeleton frame built by the cache miss.
                        statistics.frames_built += self._incremental_model.frames_constructed
                        if self._incremental_model.compiled:
                            statistics.compiled_models += 1
                    # Per-check gauges/counters of the shared model.
                    self._incremental_model.engine.frontier_peak = 0
                    if self._kb is not None and self.options.learning:
                        self._kb.attach(
                            self._incremental_model, self.circuit,
                            self.initial_state, self.environment,
                        )
                    self._learning_marks = self._learning_counter_marks()
                start_frame = compiled.warmup_frames
                for target_frame in range(start_frame, bound):
                    statistics.frames_explored = target_frame + 1
                    try:
                        outcome, model, search = self._check_target_frame(
                            compiled, target_frame, statistics
                        )
                        if search is not None:
                            statistics.accumulate_search(search)
                        self._accumulate_engine_counters(statistics, model)
                        if outcome is JustifyOutcome.SUCCESS:
                            counterexample = self._extract_trace(compiled, model, target_frame)
                            if (
                                self.options.validate_traces
                                and counterexample is not None
                                and not counterexample.validated
                            ):
                                # An invalid trace means the search over-approximated;
                                # treat it as inconclusive rather than a real failure.
                                counterexample = None
                                aborted = True
                            break
                        if outcome is JustifyOutcome.ABORT:
                            aborted = True
                            break
                    finally:
                        # Retract this bound's goals (and the search's decision
                        # stack) so the cached base fixpoint is restored exactly.
                        self._retract_goals()
                if self.options.incremental:
                    self._accumulate_learning_counters(statistics)
                    if self._kb is not None and self._incremental_model is not None:
                        # Checker-teardown write-tx: everything this check
                        # learned is on disk before the verdict is returned.
                        flush_hook = getattr(
                            self._incremental_model, "kb_flush_hook", None
                        )
                        if flush_hook is not None:
                            flush_hook()
            except BaseException:
                # An escaping error may have interrupted a structural base
                # mutation (extend/sync); drop this circuit's cached models
                # rather than risk reusing a half-built network.
                if self.options.incremental:
                    self._incremental_model = None
                    self.model_cache.evict(self.circuit)
                raise

        statistics.cpu_seconds = meter.elapsed_seconds
        statistics.peak_memory_mb = meter.peak_memory_mb

        status = self._verdict(prop, counterexample, aborted)
        return CheckResult(
            prop=prop,
            status=status,
            frames_explored=statistics.frames_explored,
            counterexample=counterexample,
            statistics=statistics,
        )

    # ------------------------------------------------------------------
    @property
    def _learning_enabled(self) -> bool:
        """Cross-bound learning needs the persistent incremental model."""
        return self.options.learning and self.options.incremental

    @staticmethod
    def _prop_fingerprint(compiled: CompiledProperty) -> object:
        """A stable identity for learned facts that depend on the goal.

        The key is the *normalized* structural digest of the property
        expression (:func:`~repro.atpg.statehash.property_digest`) plus the
        goal value: any compilation of a logically identical expression
        builds a logically identical monitor, so facts keyed this way
        transfer across ``check()`` calls, checker instances, equivalent
        property spellings and -- via the knowledge base -- processes.
        Learned cubes are ordering-independent *theorems*, so this key
        carries no search configuration.
        """
        return (property_digest(compiled.prop.expr), compiled.goal_value)

    def _search_fingerprint(self, compiled: CompiledProperty) -> object:
        """The proven-FAIL memo key: property spelling plus search config.

        Unlike learned cubes, a FAIL verdict is the outcome of *this*
        bounded search procedure -- the datapath completion heuristics are
        decision-order dependent -- so memoised verdicts may only be reused
        by searches with identical ordering and resource configuration.
        That includes the exact property spelling
        (:func:`~repro.atpg.statehash.property_search_digest`, which keeps
        operand order): a commuted but equivalent expression compiles to a
        differently-shaped monitor and hence a different decision order.
        """
        options = self.options
        limits = options.limits
        # ``options.compiled`` is deliberately absent: the compiled kernel
        # is bit-identical to the interpreter, so memos transfer across the
        # two modes (each cached model still has its own store; the key
        # equality matters for knowledge-base round-trips).
        return (
            (property_search_digest(compiled.prop.expr), compiled.goal_value),
            options.use_bias,
            options.cube_hit_ordering,
            options.probability_sample_vectors,
            options.probability_sample_seed,
            (limits.max_decisions, limits.max_backtracks, limits.max_depth,
             limits.decision_cut_limit, limits.completion_attempts,
             limits.arithmetic_budget),
        )

    def _check_target_frame(
        self, compiled: CompiledProperty, target_frame: int,
        statistics: CheckStatistics,
    ):
        if self.options.incremental:
            return self._check_target_frame_incremental(
                compiled, target_frame, statistics
            )
        num_frames = target_frame + 1
        model = UnrolledModel(
            self.circuit, num_frames, initial_state=self.initial_state,
            compiled=self.options.compiled,
        )
        if model.compiled:
            statistics.compiled_models += 1
        self._counter_marks = (0, 0, 0, 0, 0, 0.0)
        try:
            self._assert_requirements(model, compiled, target_frame)
        except ImplicationConflict:
            return JustifyOutcome.FAIL, model, None
        search = self._run_justifier(model, compiled, None)
        return search.outcome, model, search

    def _check_target_frame_incremental(
        self, compiled: CompiledProperty, target_frame: int,
        statistics: CheckStatistics,
    ):
        """One target frame on the shared incremental model.

        The model is grown (never rebuilt) to ``target_frame + 1`` frames;
        the per-bound environment/goal requirements are asserted on top of an
        engine savepoint that :meth:`_retract_goals` rolls back afterwards,
        restoring the reusable base fixpoint.  With learning enabled, target
        frames already proven FAIL on this model are skipped outright, and
        failed searches extend the proven set.
        """
        model = self._incremental_model
        engine = model.engine
        self._counter_marks = (
            engine.rule_cache_hits,
            engine.rule_cache_misses,
            engine.justified_cache_hits,
            engine.justified_cache_misses,
            model.frames_constructed,
            model.compile_seconds,
        )
        learning_store = model.estg if self._learning_enabled else None
        # The heuristic ESTG stores (use_estg / FSM guidance) may prune
        # unsoundly by design; verdicts reached under them must never enter
        # the shared proven-FAIL memo.
        memo_safe = learning_store is not None and not self.estg.enabled
        search_fp = self._search_fingerprint(compiled)
        if memo_safe and learning_store.is_proven_fail(search_fp, target_frame):
            statistics.targets_skipped += 1
            if (search_fp, target_frame) in learning_store.kb_fail_targets:
                # The skip is owed to a memo loaded from the knowledge base.
                learning_store.kb_hits += 1
            return JustifyOutcome.FAIL, model, None
        model.extend_to(target_frame + 1)
        self._restore_savepoint = engine.savepoint()
        try:
            self._assert_requirements(
                model, compiled, target_frame, learning_store=learning_store
            )
        except ImplicationConflict:
            if memo_safe:
                learning_store.record_proven_fail(search_fp, target_frame)
            return JustifyOutcome.FAIL, model, None
        learning = None
        if learning_store is not None:
            learning = LearningContext(
                estg=learning_store,
                prop_fp=self._prop_fingerprint(compiled),
                target_frame=target_frame,
                base_trail_mark=self._restore_savepoint[0][0],
            )
        search = self._run_justifier(model, compiled, learning)
        if memo_safe and search.outcome is JustifyOutcome.FAIL:
            learning_store.record_proven_fail(search_fp, target_frame)
        return search.outcome, model, search

    def _assert_requirements(
        self,
        model: UnrolledModel,
        compiled: CompiledProperty,
        target_frame: int,
        learning_store=None,
    ) -> None:
        """Assert environment constraints (all frames) and the goal (target).

        With a learning store present the environment is propagated first
        and pending illegal-state candidates get their conflict re-check in
        the goal-free context, so verified cubes hold for *every* property
        sharing this model; the goal is asserted afterwards.
        """
        engine = model.engine
        env_root = RootCause("env")
        for frame in range(target_frame + 1):
            for name, value in self.environment.pinned.items():
                net = self.circuit.net(name)
                engine.assign(
                    model.key(net, frame), BV3.from_int(net.width, value),
                    propagate=False, reason=env_root,
                )
            for net in self._assumption_nets + self._one_hot_nets:
                engine.assign(
                    model.key(net, frame), BV3.from_int(1, 1),
                    propagate=False, reason=env_root,
                )
        if learning_store is not None:
            engine.propagate()
            self._verify_state_candidates(model)
        # The inverted property goal at the target frame.
        engine.assign(
            model.key(compiled.monitor, target_frame),
            BV3.from_int(1, compiled.goal_value),
            propagate=False, reason=RootCause("goal"),
        )
        engine.propagate()

    # ------------------------------------------------------------------
    # Learned-cube verification (the conflict re-check guard)
    # ------------------------------------------------------------------
    def _verify_state_candidates(self, model: UnrolledModel) -> None:
        """Promote pending illegal-state cubes that re-derive a conflict.

        Runs in the environment-only context (goal not yet asserted): a
        cube whose assertion at frame 0 conflicts by pure implication is
        illegal for every property sharing the model.  The conflict's
        antecedents lift the cube down to the registers that participated,
        guarded by a second re-check of the lifted cube.
        """
        store = model.estg
        pending = store.pending_state_candidates()
        if not pending:
            return
        by_name = {ff.q.name: ff.q for ff in model.circuit.flip_flops}
        for candidate in pending:
            literals = []
            resolvable = True
            for name, cube in candidate.state:
                net = by_name.get(name)
                if net is None:
                    resolvable = False
                    break
                literals.append((net, cube))
            if not resolvable:
                candidate.failures = store.candidate_patience
                continue
            promoted = self._recheck_state_cube(model, literals)
            if promoted is None:
                candidate.failures += 1
                continue
            candidate.failures = store.candidate_patience  # settled
            store.record_learned_cube(
                promoted, lifted=len(promoted.literals) < len(literals)
            )

    def _recheck_state_cube(
        self, model: UnrolledModel, literals
    ) -> Optional[LearnedCube]:
        """Assert a state cube at frame 0 and keep it only if it conflicts.

        The antecedent walk runs down to the per-bound savepoint (below the
        environment band), not just to the re-check's own assignments: a
        conflict may lean on values the environment back-implied from later
        frames, and those frames must enter the cone so the cube's window
        check keeps it away from shallower bounds where that environment
        depth is not asserted.
        """
        engine = model.engine
        if self._restore_savepoint is not None:
            walk_mark = self._restore_savepoint[0][0]
        else:
            walk_mark = engine.assignment.trail_length

        def attempt(cubes):
            mark = walk_mark
            roots = {
                model.key(net, 0): RootCause("state", model.key(net, 0), value)
                for net, value in cubes
            }
            engine.push_level()
            try:
                for net, value in cubes:
                    key = model.key(net, 0)
                    engine.assign(key, value, propagate=False, reason=roots[key])
                engine.propagate()
            except ImplicationConflict as exc:
                analysis = engine.analyze_conflict(exc, mark)
                engine.pop_level()
                # A literal whose own assignment contradicted never reached
                # the trail; credit it as a participant explicitly.
                if exc.key in roots:
                    analysis.roots.append(roots[exc.key])
                return analysis
            engine.pop_level()
            return None

        analysis = attempt(literals)
        if analysis is None:
            return None
        chosen, cone = literals, analysis.cone
        if not analysis.opaque:
            participating = {
                root.key for root in analysis.roots if root.kind == "state"
            }
            lifted = [
                (net, value)
                for net, value in literals
                if model.key(net, 0) in participating
            ]
            if lifted and len(lifted) < len(literals):
                # The guard: the lifted cube must still conflict on its own.
                second = attempt(lifted)
                if second is not None:
                    chosen, cone = lifted, second.cone
        frames = [key[1] for key in cone]
        # Propagation only reaches active frames, so the cone bounds the
        # unrolling depth the fact needs; opaque analyses fall back to the
        # current window.
        max_frame = max(frames, default=model.num_frames - 1)
        return LearnedCube(
            literals=tuple(
                (net, 0, value)
                for net, value in sorted(chosen, key=lambda item: item[0].name)
            ),
            shiftable=False,
            min_position=0,
            max_position=max_frame,
            prop_fp=None,
            source="state",
        )

    def _learning_counter_marks(self):
        if not self._learning_enabled or self._incremental_model is None:
            return None
        store = self._incremental_model.estg
        return (
            store.cubes_learned, store.cubes_lifted, store.cube_hits,
            store.datapath_cubes_learned, store.datapath_cube_hits,
            store.kb_hits, store.solver_cores_learned, store.solver_core_hits,
        )

    def _accumulate_learning_counters(self, statistics: CheckStatistics) -> None:
        marks = getattr(self, "_learning_marks", None)
        model = self._incremental_model
        if model is None:
            return
        statistics.frontier_peak = max(
            statistics.frontier_peak, model.engine.frontier_peak
        )
        if marks is None:
            return
        store = model.estg
        statistics.cubes_learned += store.cubes_learned - marks[0]
        statistics.cubes_lifted += store.cubes_lifted - marks[1]
        statistics.cube_hits += store.cube_hits - marks[2]
        statistics.datapath_cubes_learned += store.datapath_cubes_learned - marks[3]
        statistics.datapath_cube_hits += store.datapath_cube_hits - marks[4]
        statistics.kb_hits += store.kb_hits - marks[5]
        statistics.solver_cores_learned += store.solver_cores_learned - marks[6]
        statistics.solver_core_hits += store.solver_core_hits - marks[7]
        # Gauges, not deltas: how many knowledge-base facts the shared model
        # carries (every check on a warm model reports the full count).
        statistics.kb_cubes_loaded = store.kb_cubes_loaded
        statistics.kb_solver_cores_loaded = store.kb_solver_cores_loaded

    def _run_justifier(
        self, model: UnrolledModel, compiled: CompiledProperty,
        learning: Optional[LearningContext],
    ):
        justifier = Justifier(
            model,
            prove_mode=isinstance(compiled.prop, Assertion),
            use_bias=self.options.use_bias,
            limits=self.options.limits,
            estg=self.estg if self.estg.enabled else None,
            sampled_probabilities=self._sampled_probabilities,
            learning=learning,
            cube_hit_ordering=self.options.cube_hit_ordering,
        )
        return justifier.run()

    def _retract_goals(self) -> None:
        """Roll the incremental model back to its pre-goal savepoint.

        Runs in a ``finally`` so even an exception escaping the search
        cannot leave goal assignments inside a cached model.
        """
        if self._restore_savepoint is not None and self._incremental_model is not None:
            self._incremental_model.engine.rollback_to(self._restore_savepoint)
        self._restore_savepoint = None

    def _accumulate_engine_counters(
        self, statistics: CheckStatistics, model: UnrolledModel
    ) -> None:
        engine = model.engine
        (rule_hits, rule_misses, just_hits, just_misses, frames_mark,
         compile_mark) = self._counter_marks
        statistics.rule_cache_hits += engine.rule_cache_hits - rule_hits
        statistics.rule_cache_misses += engine.rule_cache_misses - rule_misses
        statistics.justified_cache_hits += engine.justified_cache_hits - just_hits
        statistics.justified_cache_misses += engine.justified_cache_misses - just_misses
        statistics.frames_built += model.frames_constructed - frames_mark
        statistics.compile_time_ms += (model.compile_seconds - compile_mark) * 1000.0
        statistics.frontier_peak = max(statistics.frontier_peak, engine.frontier_peak)

    # ------------------------------------------------------------------
    def _extract_trace(
        self, compiled: CompiledProperty, model: UnrolledModel, target_frame: int
    ) -> Counterexample:
        inputs = model.input_assignment()
        initial_state = model.initial_state_assignment()
        simulator = Simulator(self.circuit, initial_state=initial_state)
        trace: List[Dict[str, int]] = []
        for vector in inputs:
            trace.append(simulator.step(vector))
        monitor_value = trace[target_frame][compiled.monitor.name]
        env_ok = all(self.environment.satisfied_by(vector) for vector in inputs)
        validated = env_ok and monitor_value == compiled.goal_value
        return Counterexample(
            initial_state=initial_state,
            inputs=inputs,
            trace=trace,
            target_frame=target_frame,
            monitor_name=compiled.monitor.name,
            validated=validated,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _verdict(
        prop: Property, counterexample: Optional[Counterexample], aborted: bool
    ) -> CheckStatus:
        if counterexample is not None:
            return (
                CheckStatus.FAILS if isinstance(prop, Assertion) else CheckStatus.WITNESS_FOUND
            )
        if aborted:
            return CheckStatus.ABORTED
        return (
            CheckStatus.HOLDS if isinstance(prop, Assertion) else CheckStatus.WITNESS_NOT_FOUND
        )
