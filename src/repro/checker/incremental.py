"""Shared cache of incrementally unrolled models.

Building an :class:`~repro.atpg.timeframe.UnrolledModel` is the dominant
fixed cost of a bounded check: every gate becomes one implication node per
frame and the seed implication fixpoint runs over all of them.  The checker
therefore reuses one model per *(circuit, initial state, environment)*
triple:

* across **bounds** -- :meth:`UnrolledModel.extend_to` appends only the new
  frames, so checking up to bound ``k`` builds each frame once instead of
  O(k^2) times;
* across **properties** -- monitor logic compiled for a later property is
  absorbed by :meth:`UnrolledModel.sync_with_circuit`, and the per-bound
  goals are retracted through an engine savepoint after every target frame,
  which restores the cached base fixpoint exactly;
* across **checker instances** -- the cache is a process-wide LRU, so
  portfolio/batch runs that check many properties against the same circuit
  object (the common batch shape) skip the rebuild entirely.

Each cached model also carries its
:class:`~repro.atpg.estg.ExtendedStateTransitionGraph` (``model.estg``): the
conflict-lifted illegal cubes and proven-FAIL target memo learned during one
check persist with the model, so every later bound -- and every property
sharing the (circuit, initial state, environment) key -- starts from what
earlier searches already proved.  Evicting a model drops its in-memory
facts with it; when a persistent knowledge base is attached
(:mod:`repro.kb` sets ``model.kb_flush_hook``) the cache flushes the facts
to disk first, so eviction never loses what a later process could reuse.

The cache key uses the circuit's *identity*: circuits are mutable builder
objects and two structurally equal netlists are still distinct designs.  The
cached model holds a strong reference to its circuit, so an entry's id
cannot be recycled while the entry lives; stale entries are simply evicted
by the LRU bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.atpg.timeframe import UnrolledModel
from repro.netlist.circuit import Circuit
from repro.properties.environment import Environment


def environment_fingerprint(environment: Optional[Environment]) -> Hashable:
    """A hashable digest of an environment's constraint content.

    Environments with equal fingerprints impose identical constraints, so
    their checks can share one unrolled skeleton (the skeleton itself is
    environment-free; the fingerprint guards the shared per-bound goal
    protocol against aliasing between differently constrained runs).
    """
    if environment is None:
        return None
    initialization = environment.initialization
    return (
        tuple(sorted(environment.pinned.items())),
        tuple(tuple(group) for group in environment.one_hot_groups),
        tuple(repr(expr) for expr in environment.assumptions),
        None
        if initialization is None
        else tuple(tuple(sorted(vector.items())) for vector in initialization.vectors),
    )


def _flush_model_kb(model: UnrolledModel) -> None:
    """Run a model's knowledge-base flush hook, if one is attached.

    Learned facts pass their verification guard when *recorded*, so they
    are safe to persist regardless of the engine state the model is being
    dropped in; a failing store must never turn an eviction into an error.
    """
    hook = getattr(model, "kb_flush_hook", None)
    if hook is None:
        return
    try:
        hook()
    except Exception:  # pragma: no cover - defensive
        pass


def initial_state_fingerprint(
    initial_state: Optional[Mapping[str, int]]
) -> Hashable:
    """A hashable digest of a derived initial-state mapping."""
    if initial_state is None:
        return None
    return tuple(sorted(initial_state.items()))


class UnrolledModelCache:
    """Process-wide LRU cache of incremental unrolled models.

    ``max_entries`` bounds memory: each entry pins one circuit plus one
    implication network of ``built_frames`` frames.  The default of 8 covers
    a typical batch (a handful of designs, many properties each) while
    keeping the worst case small.

    Concurrency: the internal lock only protects the cache *dictionary*
    (lookups, insertion, eviction).  The models it hands out are live,
    mutable engines -- checking itself is single-threaded per process, as in
    the rest of the stack (the portfolio layer parallelises with worker
    *processes*, never threads).  Do not drive one cached model from two
    threads.
    """

    def __init__(self, max_entries: int = 8):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple[int, Hashable, Hashable, bool], UnrolledModel]" = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def acquire(
        self,
        circuit: Circuit,
        initial_state: Optional[Mapping[str, int]] = None,
        environment: Optional[Environment] = None,
        compiled: bool = False,
    ) -> Tuple[UnrolledModel, bool]:
        """Return ``(model, reused)`` for the given configuration.

        A cache miss builds a one-frame skeleton (callers grow it with
        :meth:`UnrolledModel.extend_to`); a hit returns the live model after
        absorbing any circuit growth via ``sync_with_circuit``.

        ``compiled`` selects the engine flavour and is part of the cache
        key: a compiled and an interpreted model of the same design are
        distinct entries (each with its own learned store), so an A/B run
        never has one mode warm the other's caches.
        """
        key = (
            id(circuit),
            initial_state_fingerprint(initial_state),
            environment_fingerprint(environment),
            compiled,
        )
        with self._lock:
            model = self._entries.get(key)
            if model is not None and not model.is_clean:
                # A previous check died without retracting its goals (or
                # mid-extension); the model's state is unusable, rebuild.
                del self._entries[key]
                model = None
            if model is not None and model.circuit is circuit:
                self._entries.move_to_end(key)
                self.hits += 1
                reused = True
            else:
                model = None
                reused = False
        if reused:
            model.sync_with_circuit()
            return model, True
        # Build outside the lock: the seed fixpoint is O(circuit) and must
        # not stall other cache users.  A racing duplicate build is benign
        # (last insert wins).
        model = UnrolledModel(
            circuit, 1, initial_state=initial_state, compiled=compiled
        )
        dropped = []
        with self._lock:
            self.misses += 1
            self._entries[key] = model
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                dropped.append(self._entries.popitem(last=False)[1])
        for stale_model in dropped:
            _flush_model_kb(stale_model)
        return model, False

    # ------------------------------------------------------------------
    def evict(self, circuit: Circuit) -> None:
        """Drop every entry for ``circuit`` (flushing attached KB facts)."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == id(circuit)]
            dropped = [self._entries.pop(key) for key in stale]
        for model in dropped:
            _flush_model_kb(model)

    def clear(self) -> None:
        """Drop all entries, flushing attached knowledge-base facts first
        (used by tests and benchmarks)."""
        with self._lock:
            dropped = list(self._entries.values())
            self._entries.clear()
        for model in dropped:
            _flush_model_kb(model)

    def stats(self) -> Dict[str, int]:
        """Cache occupancy and hit counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide cache shared by every :class:`AssertionChecker` whose
#: options enable incremental checking (the default).
_SHARED_CACHE = UnrolledModelCache()


def shared_model_cache() -> UnrolledModelCache:
    """The process-wide :class:`UnrolledModelCache` singleton."""
    return _SHARED_CACHE
