"""The assertion checking framework (Fig. 1 of the paper).

:class:`AssertionChecker` ties everything together: it compiles the property
into monitor logic, unrolls the design over increasing numbers of time
frames, runs the word-level ATPG justification with the modular arithmetic
solver in the loop, validates any generated trace by simulation, and reports
the verdict together with run-time / memory statistics (Table 2).
"""

from repro.checker.engine import AssertionChecker, CheckerOptions
from repro.checker.incremental import UnrolledModelCache, shared_model_cache
from repro.checker.result import CheckResult, CheckStatus, Counterexample
from repro.checker.stats import ResourceMeter, CheckStatistics
from repro.checker.report import (
    format_result,
    format_results_table,
    result_to_dict,
    results_to_json,
)

__all__ = [
    "AssertionChecker",
    "CheckerOptions",
    "UnrolledModelCache",
    "shared_model_cache",
    "CheckResult",
    "CheckStatus",
    "Counterexample",
    "ResourceMeter",
    "CheckStatistics",
    "format_result",
    "format_results_table",
    "result_to_dict",
    "results_to_json",
]
