"""Interval abstraction and cube/range translation (paper Fig. 4, Rules 1-2).

Comparator implication in the paper works on the ``[min, max]`` range of each
input cube: the range is computed by setting all ``x`` bits to 0 (minimum) and
to 1 (maximum), tightened against the comparator semantics, and then mapped
*back* to the three-valued cube using two rules:

* **Rule 1** -- only bits currently ``x`` can receive new implications.
* **Rule 2** -- more significant bits must be implied before less significant
  ones, because only the most significant ``x`` bit splits the cube's value
  set into two *disjoint* sub-ranges.

:func:`range_to_cube` implements exactly that MSB-first fixing procedure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.bitvector.bv3 import BV3, BV3Conflict


@dataclass(frozen=True)
class ValueRange:
    """A closed unsigned integer interval ``[lo, hi]`` of a ``width``-bit value.

    An empty range is represented with ``lo > hi``.
    """

    width: int
    lo: int
    hi: int

    # ------------------------------------------------------------------
    @classmethod
    def full(cls, width: int) -> "ValueRange":
        """The full range ``[0, 2**width - 1]``."""
        return cls(width, 0, (1 << width) - 1)

    @classmethod
    def empty(cls, width: int) -> "ValueRange":
        """An empty range."""
        return cls(width, 1, 0)

    @classmethod
    def point(cls, width: int, value: int) -> "ValueRange":
        """The singleton range ``[value, value]``."""
        value &= (1 << width) - 1
        return cls(width, value, value)

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the range contains no value."""
        return self.lo > self.hi

    def is_point(self) -> bool:
        """True when the range contains exactly one value."""
        return self.lo == self.hi

    def size(self) -> int:
        """Number of values in the range (0 when empty)."""
        return 0 if self.is_empty() else self.hi - self.lo + 1

    def contains(self, value: int) -> bool:
        """True when ``value`` lies in the range."""
        return self.lo <= value <= self.hi

    def intersect(self, other: "ValueRange") -> "ValueRange":
        """Intersection of two ranges over the same width."""
        if self.width != other.width:
            raise ValueError("range width mismatch: %d vs %d" % (self.width, other.width))
        return ValueRange(self.width, max(self.lo, other.lo), min(self.hi, other.hi))

    def clamp_below(self, hi: int) -> "ValueRange":
        """Restrict the range to values ``<= hi``."""
        return ValueRange(self.width, self.lo, min(self.hi, hi))

    def clamp_above(self, lo: int) -> "ValueRange":
        """Restrict the range to values ``>= lo``."""
        return ValueRange(self.width, max(self.lo, lo), self.hi)

    def __str__(self) -> str:
        if self.is_empty():
            return "[empty/%d]" % (self.width,)
        return "[%d, %d]/%d" % (self.lo, self.hi, self.width)


def cube_to_range(cube: BV3) -> ValueRange:
    """The ``[min, max]`` interval spanned by a cube (paper: set x's to 0 / 1).

    Note the resulting interval may be a strict over-approximation of the
    cube's completion set (e.g. ``x0`` spans [0, 2] but only contains 0, 2).
    """
    return ValueRange(cube.width, cube.min_value(), cube.max_value())


def range_to_cube(cube: BV3, target: ValueRange) -> BV3:
    """Refine ``cube`` against the tightened range ``target`` (Rules 1 & 2).

    Walk the unknown bits from most-significant to least-significant.  For
    each ``x`` bit, consider the two sub-cubes obtained by fixing the bit to 0
    and to 1.  If only one of them has a ``[min, max]`` interval intersecting
    ``target``, the bit is implied to that constant and the walk continues;
    if both intersect, the walk stops (Rule 2); if neither does, the
    refinement is contradictory and :class:`BV3Conflict` is raised.

    Parameters
    ----------
    cube:
        The current three-valued value of the signal.
    target:
        The tightened interval the signal's value must lie in.

    Returns
    -------
    BV3
        The refined cube (possibly identical to ``cube`` when no bit could be
        implied).
    """
    if cube.width != target.width:
        raise ValueError("cube/range width mismatch: %d vs %d" % (cube.width, target.width))
    if target.is_empty():
        raise BV3Conflict("empty target range for cube %s" % (cube,))

    current = cube
    for index in reversed(range(cube.width)):
        if current.bit(index) is not None:
            continue  # Rule 1: only x bits can receive implications.
        with_zero = current.set_bit(index, 0)
        with_one = current.set_bit(index, 1)
        zero_ok = _overlaps(with_zero, target)
        one_ok = _overlaps(with_one, target)
        if zero_ok and one_ok:
            break  # Rule 2: cannot decide this bit, stop at the first split.
        if not zero_ok and not one_ok:
            raise BV3Conflict(
                "range %s excludes every completion of cube %s" % (target, cube)
            )
        current = with_zero if zero_ok else with_one
    return current


def _overlaps(cube: BV3, target: ValueRange) -> bool:
    """True when the cube's [min, max] interval intersects ``target``."""
    return not (cube.max_value() < target.lo or cube.min_value() > target.hi)


def tighten_for_compare(
    op: str,
    range_a: ValueRange,
    range_b: ValueRange,
    result: bool,
) -> Tuple[ValueRange, ValueRange]:
    """Tighten two operand ranges given the known result of a comparison.

    ``op`` is one of ``">"``, ``">="``, ``"<"``, ``"<="``, ``"=="``, ``"!="``.
    When ``result`` is ``False`` the complementary relation is applied.  The
    returned ranges may be empty, which signals a conflict to the caller.

    This implements the adjustment step of the paper's Fig. 4: for
    ``a > b == TRUE``, ``min_a`` is raised above ``min_b`` and ``max_b`` is
    lowered below ``max_a``.
    """
    relation = op
    if not result:
        relation = {
            ">": "<=",
            ">=": "<",
            "<": ">=",
            "<=": ">",
            "==": "!=",
            "!=": "==",
        }[op]

    a, b = range_a, range_b
    if relation == ">":
        # a > b: a must exceed b's minimum, b must be below a's maximum.
        a = a.clamp_above(b.lo + 1)
        b = b.clamp_below(a.hi - 1) if a.hi > 0 else ValueRange.empty(b.width)
    elif relation == ">=":
        a = a.clamp_above(b.lo)
        b = b.clamp_below(a.hi)
    elif relation == "<":
        a = a.clamp_below(b.hi - 1) if b.hi > 0 else ValueRange.empty(a.width)
        b = b.clamp_above(a.lo + 1)
    elif relation == "<=":
        a = a.clamp_below(b.hi)
        b = b.clamp_above(a.lo)
    elif relation == "==":
        common = a.intersect(b)
        a, b = common, common
    elif relation == "!=":
        # Only prune when one side is a point exactly at the other's boundary.
        if b.is_point():
            if a.is_point() and a.lo == b.lo:
                a = ValueRange.empty(a.width)
            elif a.lo == b.lo:
                a = ValueRange(a.width, a.lo + 1, a.hi)
            elif a.hi == b.lo:
                a = ValueRange(a.width, a.lo, a.hi - 1)
        if range_a.is_point():
            if b.is_point() and b.lo == range_a.lo:
                b = ValueRange.empty(b.width)
            elif b.lo == range_a.lo:
                b = ValueRange(b.width, b.lo + 1, b.hi)
            elif b.hi == range_a.lo:
                b = ValueRange(b.width, b.lo, b.hi - 1)
    else:
        raise ValueError("unknown comparison operator %r" % (op,))
    return a, b
