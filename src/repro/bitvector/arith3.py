"""Three-valued arithmetic for word-level implication on adders/subtractors.

The paper's Fig. 3 shows the key operation: given a partially known adder
output (``4'b0111``) and one partially known input (``4'b1x1x``), backward
implication learns bits of the other input (``1x0x``) *and* the carry-out
(``1``).  We implement this with a per-bit full-adder constraint network:

each bit position ``i`` relates five three-valued bits
``(a_i, b_i, carry_i, sum_i, carry_{i+1})`` through the full-adder truth
table.  Propagation enumerates the (at most 32) assignments of a cell that
are consistent with the current knowledge and keeps the bits that are forced.
Cells are iterated to a fixpoint, which yields both the forward and backward
implications of the paper in a single uniform procedure.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.bitvector.bv3 import BV3, BV3Conflict, Bit


def _merge_bit(old: Bit, new: Bit) -> Bit:
    """Combine a previously known bit with a newly derived one."""
    if new is None:
        return old
    if old is None:
        return new
    if old != new:
        raise BV3Conflict("bit conflict: %r vs %r" % (old, new))
    return old


def _forced_bits(cell_bits: List[Bit]) -> List[Bit]:
    """Given the current knowledge of ``(a, b, cin, s, cout)`` for one
    full-adder cell, return the bits forced by the full-adder relation.

    Raises :class:`BV3Conflict` when no assignment is consistent.
    """
    candidates: List[Tuple[int, int, int, int, int]] = []
    for a in (0, 1):
        if cell_bits[0] is not None and cell_bits[0] != a:
            continue
        for b in (0, 1):
            if cell_bits[1] is not None and cell_bits[1] != b:
                continue
            for cin in (0, 1):
                if cell_bits[2] is not None and cell_bits[2] != cin:
                    continue
                s = a ^ b ^ cin
                cout = (a + b + cin) >> 1
                if cell_bits[3] is not None and cell_bits[3] != s:
                    continue
                if cell_bits[4] is not None and cell_bits[4] != cout:
                    continue
                candidates.append((a, b, cin, s, cout))
    if not candidates:
        raise BV3Conflict("inconsistent full-adder cell %r" % (cell_bits,))
    forced: List[Bit] = []
    for position in range(5):
        values = {c[position] for c in candidates}
        forced.append(values.pop() if len(values) == 1 else None)
    return forced


def propagate_adder(
    a: BV3,
    b: BV3,
    out: BV3,
    carry_in: Bit = 0,
    carry_out: Bit = None,
) -> Tuple[BV3, BV3, BV3, Bit, Bit]:
    """Propagate ``a + b + carry_in = out`` (mod ``2**width``) to a fixpoint.

    All arguments are three-valued; the return value is the refined
    ``(a, b, out, carry_in, carry_out)`` tuple.  ``carry_out`` is the carry
    out of the most significant bit.  Raises :class:`BV3Conflict` when the
    constraint is unsatisfiable under the given knowledge.
    """
    width = a.width
    if b.width != width or out.width != width:
        raise ValueError("adder operand width mismatch")

    a_bits: List[Bit] = list(a.bits())
    b_bits: List[Bit] = list(b.bits())
    out_bits: List[Bit] = list(out.bits())
    # carries[i] is the carry *into* bit i; carries[width] is the carry out.
    carries: List[Bit] = [None] * (width + 1)
    carries[0] = carry_in
    carries[width] = carry_out

    changed = True
    while changed:
        changed = False
        for i in range(width):
            cell = [a_bits[i], b_bits[i], carries[i], out_bits[i], carries[i + 1]]
            forced = _forced_bits(cell)
            updates = (
                ("a", i, forced[0]),
                ("b", i, forced[1]),
                ("cin", i, forced[2]),
                ("s", i, forced[3]),
                ("cout", i, forced[4]),
            )
            for kind, idx, new_bit in updates:
                if new_bit is None:
                    continue
                if kind == "a" and a_bits[idx] is None:
                    a_bits[idx] = new_bit
                    changed = True
                elif kind == "b" and b_bits[idx] is None:
                    b_bits[idx] = new_bit
                    changed = True
                elif kind == "s" and out_bits[idx] is None:
                    out_bits[idx] = new_bit
                    changed = True
                elif kind == "cin" and carries[idx] is None:
                    carries[idx] = new_bit
                    changed = True
                elif kind == "cout" and carries[idx + 1] is None:
                    carries[idx + 1] = new_bit
                    changed = True

    return (
        BV3.from_bits(a_bits),
        BV3.from_bits(b_bits),
        BV3.from_bits(out_bits),
        carries[0],
        carries[width],
    )


def propagate_subtractor(
    a: BV3,
    b: BV3,
    out: BV3,
) -> Tuple[BV3, BV3, BV3]:
    """Propagate ``a - b = out`` (mod ``2**width``) to a fixpoint.

    Implemented as ``a = out + b``, reusing the adder network, so both forward
    (known ``a``, ``b``) and backward (known ``out`` and one operand)
    directions work.
    """
    new_out, new_b, new_a, _, _ = propagate_adder(out, b, a, carry_in=0)
    return new_a, new_b, new_out


def add3(a: BV3, b: BV3, carry_in: int = 0) -> BV3:
    """Forward-only three-valued addition (sum cube of ``a + b + carry_in``)."""
    _, _, out, _, _ = propagate_adder(a, b, BV3.unknown(a.width), carry_in=carry_in)
    return out


def sub3(a: BV3, b: BV3) -> BV3:
    """Forward-only three-valued subtraction (difference cube of ``a - b``)."""
    _, _, out = _forward_sub(a, b)
    return out


def _forward_sub(a: BV3, b: BV3) -> Tuple[BV3, BV3, BV3]:
    width = a.width
    # a - b == a + ~b + 1 (two's complement).
    not_b = ~b if b.is_fully_known() else BV3(width, (~b.value) & b.known, b.known)
    _, _, out, _, _ = propagate_adder(a, not_b, BV3.unknown(width), carry_in=1)
    return a, b, out


def negate3(a: BV3) -> BV3:
    """Two's-complement negation of a cube (forward only)."""
    width = a.width
    zero = BV3.from_int(width, 0)
    return sub3(zero, a)


def mul3(a: BV3, b: BV3, out_width: Optional[int] = None) -> BV3:
    """Forward three-valued multiplication.

    Only coarse information is propagated: the product is fully known when
    both operands are, known-zero when either operand is known-zero, and the
    low-order bits implied by known-zero low bits of the operands are
    propagated (a multiple of ``2**k`` has ``k`` zero low bits).
    """
    width = out_width if out_width is not None else a.width
    if a.is_fully_known() and b.is_fully_known():
        return BV3.from_int(width, a.to_int() * b.to_int())
    if (a.is_fully_known() and a.to_int() == 0) or (
        b.is_fully_known() and b.to_int() == 0
    ):
        return BV3.from_int(width, 0)
    # Count guaranteed trailing zeros of each operand.
    tz = _known_trailing_zeros(a) + _known_trailing_zeros(b)
    tz = min(tz, width)
    known = (1 << tz) - 1
    return BV3(width, 0, known)


def _known_trailing_zeros(a: BV3) -> int:
    count = 0
    for bit in a.bits():
        if bit == 0:
            count += 1
        else:
            break
    return count
