"""Three-valued bit-vector domain used throughout the word-level engine.

The paper represents every multi-bit signal as a *cube*: a fixed-width
bit-vector in which every bit is ``0``, ``1`` or ``x`` (unknown).  This
package provides:

* :class:`~repro.bitvector.bv3.BV3` -- the cube datatype (immutable),
* :class:`~repro.bitvector.intervals.ValueRange` -- the ``[min, max]``
  interval abstraction used for comparator implication (paper Fig. 4),
* translation between the two abstractions implementing the paper's
  Rule 1 and Rule 2 (:func:`~repro.bitvector.intervals.range_to_cube`),
* three-valued ripple-carry arithmetic used for adder/subtractor
  implication (paper Fig. 3) in :mod:`repro.bitvector.arith3`.
"""

from repro.bitvector.bv3 import BV3, BV3Conflict, Bit
from repro.bitvector.intervals import ValueRange, cube_to_range, range_to_cube
from repro.bitvector.arith3 import (
    add3,
    sub3,
    propagate_adder,
    propagate_subtractor,
    negate3,
)

__all__ = [
    "BV3",
    "BV3Conflict",
    "Bit",
    "ValueRange",
    "cube_to_range",
    "range_to_cube",
    "add3",
    "sub3",
    "negate3",
    "propagate_adder",
    "propagate_subtractor",
]
