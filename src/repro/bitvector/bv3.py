"""Three-valued (0/1/x) fixed-width bit-vectors.

A :class:`BV3` models the *cube* representation the paper uses for every
word-level signal: each bit is either a known constant (``0`` or ``1``) or
unknown (``x``).  Cubes are ordered by information content: refining a cube
means turning ``x`` bits into constants; two cubes *conflict* when they
assign opposite constants to the same bit.

The representation uses two Python integers:

``known``
    bit ``i`` set means bit ``i`` of the vector has a known constant value.
``value``
    the constant values; bits outside ``known`` are always zero
    (class invariant).

All operations are pure -- :class:`BV3` instances are immutable and hashable,
which lets the implication engine store them on the decision trail and
restore previous *partially implied* values on backtrack (Section 3.1 of the
paper emphasises that word-level signals, unlike single bits, can be implied
multiple times).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Union

#: Type alias for a single three-valued bit: ``0``, ``1`` or ``None`` (= x).
Bit = Optional[int]


class BV3Conflict(Exception):
    """Raised when two cubes assign opposite constants to the same bit."""


def _mask(width: int) -> int:
    return (1 << width) - 1


class BV3:
    """An immutable three-valued bit-vector of fixed width.

    Parameters
    ----------
    width:
        Number of bits (must be positive).
    value:
        Integer holding the known bit values.  Bits outside ``known`` are
        ignored (masked away).
    known:
        Bit mask of positions whose value is known.  ``None`` (the default)
        means *all* bits are known, i.e. the vector is a constant.
    """

    __slots__ = ("width", "value", "known")

    def __init__(self, width: int, value: int = 0, known: Optional[int] = None):
        if width <= 0:
            raise ValueError("BV3 width must be positive, got %r" % (width,))
        m = _mask(width)
        if known is None:
            known = m
        known &= m
        object.__setattr__(self, "width", width)
        object.__setattr__(self, "known", known)
        object.__setattr__(self, "value", value & known)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def unknown(cls, width: int) -> "BV3":
        """A cube with every bit unknown (``x...x``)."""
        return cls(width, 0, 0)

    @classmethod
    def from_int(cls, width: int, value: int) -> "BV3":
        """A fully known cube holding ``value`` (wrapped modulo ``2**width``)."""
        return cls(width, value & _mask(width), _mask(width))

    @classmethod
    def from_string(cls, text: str) -> "BV3":
        """Parse a cube written MSB-first, e.g. ``"10xx"`` or ``"4'b10xx"``.

        Underscores are ignored.  An optional Verilog-style ``<width>'b``
        prefix is accepted (the declared width must match the digit count).
        """
        body = text
        if "'" in text:
            width_str, _, body = text.partition("'")
            body = body.lstrip("bB")
            declared = int(width_str)
        else:
            declared = None
        body = body.replace("_", "")
        if not body:
            raise ValueError("empty bit-vector literal: %r" % (text,))
        width = len(body)
        if declared is not None and declared != width:
            raise ValueError(
                "declared width %d does not match %d digits in %r"
                % (declared, width, text)
            )
        value = 0
        known = 0
        for i, ch in enumerate(body):
            bit_pos = width - 1 - i
            if ch == "1":
                value |= 1 << bit_pos
                known |= 1 << bit_pos
            elif ch == "0":
                known |= 1 << bit_pos
            elif ch in ("x", "X", "?"):
                pass
            else:
                raise ValueError("invalid character %r in bit-vector %r" % (ch, text))
        return cls(width, value, known)

    @classmethod
    def from_bits(cls, bits: Sequence[Bit]) -> "BV3":
        """Build a cube from a sequence of bits given LSB-first."""
        width = len(bits)
        value = 0
        known = 0
        for i, b in enumerate(bits):
            if b is None:
                continue
            known |= 1 << i
            if b:
                value |= 1 << i
        return cls(width, value, known)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def mask(self) -> int:
        """All-ones mask for this width."""
        return _mask(self.width)

    def is_fully_known(self) -> bool:
        """True when no bit is ``x``."""
        return self.known == self.mask

    def is_fully_unknown(self) -> bool:
        """True when every bit is ``x``."""
        return self.known == 0

    def num_known(self) -> int:
        """Number of bits with a known constant value."""
        return bin(self.known).count("1")

    def num_unknown(self) -> int:
        """Number of ``x`` bits."""
        return self.width - self.num_known()

    def bit(self, index: int) -> Bit:
        """Return bit ``index`` (LSB = 0) as ``0``, ``1`` or ``None`` for x."""
        if not 0 <= index < self.width:
            raise IndexError("bit index %d out of range for width %d" % (index, self.width))
        if not (self.known >> index) & 1:
            return None
        return (self.value >> index) & 1

    def bits(self) -> Iterator[Bit]:
        """Iterate over bits LSB-first."""
        for i in range(self.width):
            yield self.bit(i)

    def to_int(self) -> int:
        """Return the constant value; raises if any bit is unknown."""
        if not self.is_fully_known():
            raise ValueError("cannot convert %s with unknown bits to int" % (self,))
        return self.value

    def min_value(self) -> int:
        """Smallest (unsigned) completion: all ``x`` bits set to 0."""
        return self.value

    def max_value(self) -> int:
        """Largest (unsigned) completion: all ``x`` bits set to 1."""
        return self.value | (self.mask & ~self.known)

    def num_completions(self) -> int:
        """Number of constant vectors contained in this cube."""
        return 1 << self.num_unknown()

    def contains_int(self, value: int) -> bool:
        """True when constant ``value`` is a completion of this cube."""
        value &= self.mask
        return (value & self.known) == self.value

    def completions(self) -> Iterator[int]:
        """Iterate over every constant completion (exponential -- use for
        small numbers of unknown bits only, e.g. in tests)."""
        unknown_positions = [i for i in range(self.width) if not (self.known >> i) & 1]
        for combo in range(1 << len(unknown_positions)):
            v = self.value
            for j, pos in enumerate(unknown_positions):
                if (combo >> j) & 1:
                    v |= 1 << pos
            yield v

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------
    def set_bit(self, index: int, bit: int) -> "BV3":
        """Return a copy with bit ``index`` set to constant ``bit``.

        Raises :class:`BV3Conflict` if the bit is already known with the
        opposite value.
        """
        current = self.bit(index)
        bit = 1 if bit else 0
        if current is not None:
            if current != bit:
                raise BV3Conflict(
                    "bit %d already %d, cannot set to %d" % (index, current, bit)
                )
            return self
        known = self.known | (1 << index)
        value = self.value | ((1 << index) if bit else 0)
        return BV3(self.width, value, known)

    def intersect(self, other: "BV3") -> "BV3":
        """Cube intersection (meet): combine knowledge from both cubes.

        Raises :class:`BV3Conflict` if the cubes disagree on any known bit.
        """
        self._check_width(other)
        both = self.known & other.known
        if (self.value ^ other.value) & both:
            raise BV3Conflict("conflicting cubes %s and %s" % (self, other))
        known = self.known | other.known
        value = (self.value | other.value) & known
        return BV3(self.width, value, known)

    def compatible(self, other: "BV3") -> bool:
        """True when the two cubes share at least one completion."""
        self._check_width(other)
        both = self.known & other.known
        return not ((self.value ^ other.value) & both)

    def union(self, other: "BV3") -> "BV3":
        """Cube union (join): keep only bits known *and equal* in both.

        This is the operation the paper uses to imply a multiplexor output
        from its (possibly partially known) data inputs.
        """
        self._check_width(other)
        both = self.known & other.known
        agree = both & ~(self.value ^ other.value)
        return BV3(self.width, self.value & agree, agree)

    def covers(self, other: "BV3") -> bool:
        """True when every completion of ``other`` is a completion of self.

        Equivalently: self's known bits are a subset of other's and agree.
        """
        self._check_width(other)
        if self.known & ~other.known:
            return False
        return not ((self.value ^ other.value) & self.known)

    def refines(self, other: "BV3") -> bool:
        """True when self carries at least as much information as ``other``
        and agrees with it (i.e. ``other.covers(self)``)."""
        return other.covers(self)

    def new_information_over(self, other: "BV3") -> bool:
        """True if self knows at least one bit that ``other`` does not."""
        self._check_width(other)
        return bool(self.known & ~other.known)

    # ------------------------------------------------------------------
    # Bitwise three-valued operators (Kleene logic, bit-parallel)
    # ------------------------------------------------------------------
    def __invert__(self) -> "BV3":
        return BV3(self.width, (~self.value) & self.known, self.known)

    def and3(self, other: "BV3") -> "BV3":
        """Bit-parallel three-valued AND."""
        self._check_width(other)
        # A result bit is known-0 if either operand bit is known-0;
        # known-1 if both operand bits are known-1.
        zero_a = self.known & ~self.value
        zero_b = other.known & ~other.value
        one_a = self.known & self.value
        one_b = other.known & other.value
        known_zero = zero_a | zero_b
        known_one = one_a & one_b
        known = known_zero | known_one
        return BV3(self.width, known_one, known)

    def or3(self, other: "BV3") -> "BV3":
        """Bit-parallel three-valued OR."""
        self._check_width(other)
        zero_a = self.known & ~self.value
        zero_b = other.known & ~other.value
        one_a = self.known & self.value
        one_b = other.known & other.value
        known_one = one_a | one_b
        known_zero = zero_a & zero_b
        known = known_zero | known_one
        return BV3(self.width, known_one, known)

    def xor3(self, other: "BV3") -> "BV3":
        """Bit-parallel three-valued XOR (known only where both are known)."""
        self._check_width(other)
        known = self.known & other.known
        value = (self.value ^ other.value) & known
        return BV3(self.width, value, known)

    # ------------------------------------------------------------------
    # Structural helpers
    # ------------------------------------------------------------------
    def slice(self, msb: int, lsb: int) -> "BV3":
        """Extract bits ``[msb:lsb]`` (inclusive, msb >= lsb) as a new cube."""
        if msb < lsb or lsb < 0 or msb >= self.width:
            raise IndexError(
                "invalid slice [%d:%d] of width-%d vector" % (msb, lsb, self.width)
            )
        width = msb - lsb + 1
        m = _mask(width)
        return BV3(width, (self.value >> lsb) & m, (self.known >> lsb) & m)

    def concat(self, low: "BV3") -> "BV3":
        """Concatenate with ``low`` occupying the least-significant bits."""
        width = self.width + low.width
        value = (self.value << low.width) | low.value
        known = (self.known << low.width) | low.known
        return BV3(width, value, known)

    def zero_extend(self, width: int) -> "BV3":
        """Zero-extend to ``width`` bits (new high bits are known 0)."""
        if width < self.width:
            raise ValueError("cannot zero-extend %d-bit vector to %d bits" % (self.width, width))
        if width == self.width:
            return self
        high_known = _mask(width) & ~_mask(self.width)
        return BV3(width, self.value, self.known | high_known)

    def truncate(self, width: int) -> "BV3":
        """Keep only the ``width`` least-significant bits."""
        if width > self.width:
            raise ValueError("cannot truncate %d-bit vector to %d bits" % (self.width, width))
        m = _mask(width)
        return BV3(width, self.value & m, self.known & m)

    def with_unknown_from(self, positions: Iterable[int]) -> "BV3":
        """Return a copy with the given bit positions reset to ``x``."""
        known = self.known
        for p in positions:
            known &= ~(1 << p)
        return BV3(self.width, self.value & known, known)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def _check_width(self, other: "BV3") -> None:
        if self.width != other.width:
            raise ValueError(
                "width mismatch: %d vs %d" % (self.width, other.width)
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BV3):
            return NotImplemented
        return (
            self.width == other.width
            and self.known == other.known
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.width, self.known, self.value))

    def __len__(self) -> int:
        return self.width

    def __str__(self) -> str:
        chars: List[str] = []
        for i in reversed(range(self.width)):
            b = self.bit(i)
            chars.append("x" if b is None else str(b))
        return "%d'b%s" % (self.width, "".join(chars))

    def __repr__(self) -> str:
        return "BV3(%s)" % (str(self),)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("BV3 instances are immutable")


def bv(spec: Union[str, int, BV3], width: Optional[int] = None) -> BV3:
    """Convenience constructor.

    ``bv("10xx")`` parses a cube string, ``bv(5, width=4)`` builds a constant,
    and an existing :class:`BV3` is passed through (optionally width-checked).
    """
    if isinstance(spec, BV3):
        if width is not None and spec.width != width:
            raise ValueError("expected width %d, got %d" % (width, spec.width))
        return spec
    if isinstance(spec, str):
        result = BV3.from_string(spec)
        if width is not None and result.width != width:
            raise ValueError("expected width %d, got %d" % (width, result.width))
        return result
    if isinstance(spec, int):
        if width is None:
            raise ValueError("width is required when building a BV3 from an int")
        return BV3.from_int(width, spec)
    raise TypeError("cannot build BV3 from %r" % (spec,))
