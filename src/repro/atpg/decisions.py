"""Selection of decision candidates (the paper's "cut of critical control signals").

The justification process traverses backward, breadth first, from the
unjustified gates and stops at candidate decision points: control primary
inputs, flip-flop (frame-0) outputs, comparator outputs and multi-fanout
internal control signals.  When the cut grows too large only the candidates
with the highest fanout are kept, as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, List, Mapping, Optional, Sequence, Set

from repro.atpg.probability import (
    legal_assignment_bias,
    legal_one_probabilities,
    legal_one_probabilities_compiled,
)
from repro.atpg.timeframe import UnrolledModel, VarKey
from repro.bitvector import BV3
from repro.implication.assignment import RootCause
from repro.implication.engine import ImplicationNode


@dataclass
class DecisionCandidate:
    """A 1-bit decision point with its ranking information."""

    key: VarKey
    bias: float
    bias_value: int
    probability_one: float
    fanout: int

    def preferred_first_value(self, prove_mode: bool) -> int:
        """First value to try.

        In prove mode (counterexample likely absent) the *complement* of the
        bias value is tried first so conflicts appear early and the decision
        space is trimmed; in witness mode the bias value itself is tried
        first (paper Section 3.2).
        """
        if prove_mode:
            return 1 - self.bias_value
        return self.bias_value

    def root_cause(self, value: int) -> RootCause:
        """The trail root recorded when this candidate is decided to
        ``value`` -- the literal that conflict lifting resolves over."""
        return RootCause("decision", self.key, BV3.from_int(1, value))


def find_decision_candidates(
    model: UnrolledModel,
    unjustified: Sequence[ImplicationNode],
    limit: int = 64,
    prove_mode: bool = True,
    use_bias: bool = True,
    sampled_probabilities: Optional[Mapping[str, float]] = None,
) -> List[DecisionCandidate]:
    """Backward BFS from the unjustified gates to a cut of decision points.

    Returns candidates sorted by decreasing legal assignment bias (or by
    fanout when ``use_bias`` is off, the ablation configuration).

    ``sampled_probabilities`` optionally maps net names to mass-sampled
    signal probabilities (see
    :func:`repro.atpg.probability.estimate_signal_probabilities`).  They
    stand in wherever the backward rules are uninformative: keys the rules
    cannot reach at all, and keys whose rule-derived probability is exactly
    the flat 0.5 default (word-level primitives -- comparators, arithmetic,
    muxes, registers -- all contribute that default).  A 0.5 carries no
    ranking signal either way, so the measured estimate is strictly more
    information there.
    """
    engine = model.engine
    if model.compiled:
        cut = _compiled_cut(model, engine, unjustified)
    else:
        cut = _interpreted_cut(model, engine, unjustified)

    if not cut:
        return []

    # Rank by fanout when trimming an oversized cut (paper Section 3.2).
    fanouts = {key: model.net_of(key).fanout() for key in cut}
    if len(cut) > limit:
        cut = sorted(cut, key=lambda key: -fanouts[key])[:limit]

    if model.compiled:
        probabilities = legal_one_probabilities_compiled(
            engine, unjustified, model.driver_slot
        )
    else:
        probabilities = legal_one_probabilities(engine, unjustified, model.driver_node)
    candidates: List[DecisionCandidate] = []
    for key in cut:
        p1 = probabilities.get(key)
        if sampled_probabilities is not None and (p1 is None or p1 == 0.5):
            sampled = sampled_probabilities.get(model.net_of(key).name)
            if sampled is not None:
                p1 = sampled
        if p1 is None:
            p1 = 0.5
        bias, value = legal_assignment_bias(p1)
        candidates.append(
            DecisionCandidate(
                key=key,
                bias=bias,
                bias_value=value,
                probability_one=p1,
                fanout=fanouts[key],
            )
        )

    if use_bias:
        candidates.sort(key=lambda c: (-c.bias, -c.fanout))
    else:
        candidates.sort(key=lambda c: -c.fanout)
    return candidates


def _interpreted_cut(
    model: UnrolledModel,
    engine,
    unjustified: Sequence[ImplicationNode],
) -> List[VarKey]:
    """Backward BFS over keys (the interpreted oracle path)."""
    visited: Set[Hashable] = set()
    cut: List[VarKey] = []
    queue = deque()

    for node in unjustified:
        for key in node.input_keys:
            if key not in visited:
                visited.add(key)
                queue.append(key)

    while queue:
        key = queue.popleft()
        cube = engine.assignment.get(key)
        undecided = (
            engine.assignment.width(key) == 1 and cube.bit(0) is None
        )
        if undecided and model.is_decision_point(key):
            cut.append(key)
            continue
        driver = model.driver_node.get(key)
        if driver is None:
            # A free key (primary input / initial state).  Wide free keys are
            # datapath variables left to the arithmetic solver; undecided
            # 1-bit free keys are decision points even without special roles.
            if undecided:
                cut.append(key)
            continue
        for upstream_key in driver.input_keys:
            if upstream_key not in visited:
                visited.add(upstream_key)
                queue.append(upstream_key)
    return cut


def _compiled_cut(
    model: UnrolledModel,
    engine,
    unjustified: Sequence[ImplicationNode],
) -> List[VarKey]:
    """The same backward BFS on slot indices (compiled kernel fast path).

    Visits the identical frontier in the identical order -- node pin order
    is preserved by the lowering -- so the returned cut (translated back to
    keys) matches :func:`_interpreted_cut` exactly.
    """
    assignment = engine.assignment
    known = assignment._known
    widths = assignment._slot_widths
    key_of = assignment._key_of
    driver_slot = model.driver_slot
    num_drivers = len(driver_slot)
    visited: Set[int] = set()
    cut_slots: List[int] = []
    queue = deque()

    for node in unjustified:
        for slot in node.in_slots:
            if slot not in visited:
                visited.add(slot)
                queue.append(slot)

    while queue:
        slot = queue.popleft()
        undecided = widths[slot] == 1 and not (known[slot] & 1)
        if undecided and model.is_decision_point_slot(slot):
            cut_slots.append(slot)
            continue
        driver = driver_slot[slot] if slot < num_drivers else None
        if driver is None:
            if undecided:
                cut_slots.append(slot)
            continue
        for upstream in driver.in_slots:
            if upstream not in visited:
                visited.add(upstream)
                queue.append(upstream)
    return [key_of[slot] for slot in cut_slots]
