"""Time-frame expansion of a sequential circuit into an implication network.

The paper creates a combinational model of the sequential constraints by
treating the state elements as buffers between frames and adding new
variables for the inputs of each time frame.  :class:`UnrolledModel` builds
exactly that: every combinational gate becomes one implication node per
frame, and every register becomes a cross-frame node relating its pins in
frame ``t`` to its output in frame ``t + 1``.

Variable keys are ``(net, frame)`` tuples (:data:`VarKey`).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.bitvector import BV3
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.implication.rules import build_rule
from repro.implication.rules_seq import imply_dff
from repro.netlist.circuit import Circuit
from repro.netlist.compare import Comparator
from repro.netlist.nets import Net
from repro.netlist.seq import DFF
from repro.netlist.classify import is_control

#: A variable key in the unrolled model: (net, frame index).
VarKey = Tuple[Net, int]


class UnrolledModel:
    """A circuit unrolled over ``num_frames`` time frames.

    Parameters
    ----------
    circuit:
        The design under verification (validated word-level netlist).
    num_frames:
        Number of time frames (>= 1).  Frame 0 is the initial frame.
    initial_state:
        Optional mapping from register output net (or name) to its known
        initial value.  Registers not mentioned fall back to their
        ``init_value``; a register whose ``init_value`` is ``None`` starts
        fully unknown (its frame-0 output behaves like a pseudo primary
        input).
    free_initial_state:
        When ``True`` no ``init_value`` is applied at all: every register not
        mentioned in ``initial_state`` starts fully unknown at frame 0.  Used
        by analyses that reason about transitions from *arbitrary* states
        (local FSM extraction, inductive-style arguments).
    engine:
        Optionally reuse an existing engine/assignment (used by tests).
    """

    def __init__(
        self,
        circuit: Circuit,
        num_frames: int,
        initial_state: Optional[Mapping[Union[Net, str], int]] = None,
        free_initial_state: bool = False,
        engine: Optional[ImplicationEngine] = None,
    ):
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        self.circuit = circuit
        self.num_frames = num_frames
        self.free_initial_state = free_initial_state
        self.engine = engine if engine is not None else ImplicationEngine()
        self.driver_node: Dict[VarKey, ImplicationNode] = {}
        self.gate_nodes: List[ImplicationNode] = []
        self.register_nodes: List[ImplicationNode] = []
        self._initial_state_cubes: Dict[Net, BV3] = {}

        self._build_nodes()
        self._register_free_keys()
        self._apply_initial_state(initial_state)
        # Seed implication: run every node once so constants, initial-state
        # values and other structurally forced values are established before
        # any requirement is asserted (the paper applies implication of the
        # initial assignments to the whole circuit).
        self.engine.enqueue(self.engine.nodes)
        self.engine.propagate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_nodes(self) -> None:
        for frame in range(self.num_frames):
            for gate in self.circuit.combinational_gates():
                semantics = build_rule(gate)
                keys = [self.key(net, frame) for net in semantics.pins]
                widths = [net.width for net in semantics.pins]
                node = ImplicationNode(
                    "%s@%d" % (gate.name, frame),
                    keys,
                    semantics.imply,
                    num_outputs=semantics.num_outputs,
                    tag=(gate, frame),
                )
                self.engine.add_node(node, widths=widths)
                self.gate_nodes.append(node)
                for key in node.output_keys:
                    self.driver_node[key] = node

        for frame in range(self.num_frames - 1):
            for ff in self.circuit.flip_flops:
                node = self._build_register_node(ff, frame)
                self.engine.add_node(
                    node, widths=[self.net_of(key).width for key in node.keys]
                )
                self.register_nodes.append(node)
                self.driver_node[self.key(ff.q, frame + 1)] = node

    def _build_register_node(self, ff: DFF, frame: int) -> ImplicationNode:
        keys: List[VarKey] = [self.key(ff.d, frame)]
        if ff.enable is not None:
            keys.append(self.key(ff.enable, frame))
        if ff.reset is not None:
            keys.append(self.key(ff.reset, frame))
        if ff.set is not None:
            keys.append(self.key(ff.set, frame))
        keys.append(self.key(ff.q, frame))
        keys.append(self.key(ff.q, frame + 1))
        rule = partial(
            imply_dff,
            ff.enable is not None,
            ff.reset is not None,
            ff.set is not None,
            ff.reset_value,
        )
        return ImplicationNode(
            "%s@%d->%d" % (ff.name, frame, frame + 1),
            keys,
            rule,
            num_outputs=1,
            tag=(ff, frame),
        )

    def _register_free_keys(self) -> None:
        """Register widths for keys with no driving node (PIs, frame-0 state)."""
        for frame in range(self.num_frames):
            for net in self.circuit.inputs:
                self.engine.assignment.register(self.key(net, frame), net.width)
        for ff in self.circuit.flip_flops:
            self.engine.assignment.register(self.key(ff.q, 0), ff.q.width)

    def _apply_initial_state(self, initial_state: Optional[Mapping[Union[Net, str], int]]) -> None:
        explicit: Dict[Net, int] = {}
        if initial_state:
            by_name = {ff.q.name: ff.q for ff in self.circuit.flip_flops}
            for key, value in initial_state.items():
                net = key if isinstance(key, Net) else by_name.get(key)
                if net is None:
                    raise KeyError("no register output named %r" % (key,))
                explicit[net] = value
        for ff in self.circuit.flip_flops:
            if ff.q in explicit:
                cube = BV3.from_int(ff.q.width, explicit[ff.q])
            elif ff.init_value is not None and not self.free_initial_state:
                cube = BV3.from_int(ff.q.width, ff.init_value)
            else:
                continue
            self._initial_state_cubes[ff.q] = cube
            self.engine.assign(self.key(ff.q, 0), cube, propagate=False)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @staticmethod
    def key(net: Net, frame: int) -> VarKey:
        """The variable key of ``net`` in time frame ``frame``."""
        return (net, frame)

    @staticmethod
    def net_of(key: VarKey) -> Net:
        """The net component of a key."""
        return key[0]

    @staticmethod
    def frame_of(key: VarKey) -> int:
        """The frame component of a key."""
        return key[1]

    def value(self, net: Net, frame: int) -> BV3:
        """Current cube of a net in a frame."""
        return self.engine.assignment.get(self.key(net, frame))

    def assign(self, net: Net, frame: int, cube: BV3, propagate: bool = True) -> bool:
        """Refine a net's cube in a frame (convenience wrapper)."""
        return self.engine.assign(self.key(net, frame), cube, propagate=propagate)

    def propagate(self) -> None:
        """Run implication to fixpoint."""
        self.engine.propagate()

    # ------------------------------------------------------------------
    # Classification helpers used by the ATPG
    # ------------------------------------------------------------------
    def is_control_key(self, key: VarKey) -> bool:
        """True when the key refers to a control (1-bit or forced) net."""
        return is_control(self.net_of(key))

    def is_decision_point(self, key: VarKey) -> bool:
        """Candidate decision points per the paper: control primary inputs,
        flip-flop outputs, comparator outputs and multi-fanout control nets."""
        net = self.net_of(key)
        frame = self.frame_of(key)
        if not self.is_control_key(key):
            return False
        if net.is_primary_input():
            return True
        driver = net.driver
        if driver is None:
            return frame == 0  # undriven (pseudo) inputs at frame 0
        if isinstance(driver, DFF):
            return frame == 0
        if isinstance(driver, Comparator):
            return True
        return net.fanout() > 1

    def free_keys(self) -> List[VarKey]:
        """Keys with no driving node: primary inputs in every frame and
        frame-0 register outputs."""
        keys: List[VarKey] = []
        for frame in range(self.num_frames):
            for net in self.circuit.inputs:
                keys.append(self.key(net, frame))
        for ff in self.circuit.flip_flops:
            keys.append(self.key(ff.q, 0))
        return keys

    def state_keys(self, frame: int) -> List[VarKey]:
        """Register output keys for a given frame."""
        return [self.key(ff.q, frame) for ff in self.circuit.flip_flops]

    def input_assignment(self) -> List[Dict[str, int]]:
        """Concrete per-frame input values (x bits filled with 0).

        Used to turn a successful justification into a simulatable test
        sequence.
        """
        frames: List[Dict[str, int]] = []
        for frame in range(self.num_frames):
            values: Dict[str, int] = {}
            for net in self.circuit.inputs:
                cube = self.value(net, frame)
                values[net.name] = cube.min_value()
            frames.append(values)
        return frames

    def initial_state_assignment(self) -> Dict[str, int]:
        """Concrete frame-0 register values (x bits filled with 0)."""
        result: Dict[str, int] = {}
        for ff in self.circuit.flip_flops:
            cube = self.value(ff.q, 0)
            result[ff.q.name] = cube.min_value()
        return result

    def __repr__(self) -> str:
        return "UnrolledModel(%r, frames=%d, nodes=%d)" % (
            self.circuit.name,
            self.num_frames,
            len(self.gate_nodes) + len(self.register_nodes),
        )
