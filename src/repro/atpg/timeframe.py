"""Time-frame expansion of a sequential circuit into an implication network.

The paper creates a combinational model of the sequential constraints by
treating the state elements as buffers between frames and adding new
variables for the inputs of each time frame.  :class:`UnrolledModel` builds
exactly that: every combinational gate becomes one implication node per
frame, and every register becomes a cross-frame node relating its pins in
frame ``t`` to its output in frame ``t + 1``.

The expansion is *incremental*:

* :meth:`UnrolledModel.extend_to` appends only the missing frames to the
  live implication engine instead of rebuilding frames ``0..k`` from
  scratch, so growing the check bound costs O(circuit) per bound instead of
  O(bound x circuit).
* The model distinguishes *built* frames (nodes physically present in the
  engine) from the *active view* ``num_frames``: frames beyond the view stay
  built but inert (their nodes are deactivated), so a model extended for a
  deep bound can be reused for a shallower one -- e.g. for the next property
  in a batch -- without the extra frames constraining the search.
* :meth:`UnrolledModel.sync_with_circuit` picks up gates and registers added
  to the circuit *after* the model was built (property compilation appends
  monitor logic), materialising them in every built frame.

Variable keys are ``(net, frame)`` tuples (:data:`VarKey`).
"""

from __future__ import annotations

import time
from functools import partial
from typing import Dict, List, Mapping, Optional, Set, Tuple, Union

from repro.atpg.estg import ExtendedStateTransitionGraph
from repro.bitvector import BV3
from repro.implication.assignment import RootCause
from repro.implication.compiled import CompiledEngine
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.implication.rules import build_rule
from repro.implication.rules_seq import imply_dff
from repro.netlist.circuit import Circuit
from repro.netlist.compare import Comparator
from repro.netlist.gates import Gate
from repro.netlist.nets import Net
from repro.netlist.seq import DFF
from repro.netlist.classify import is_control

#: A variable key in the unrolled model: (net, frame index).
VarKey = Tuple[Net, int]


class UnrolledModel:
    """A circuit unrolled over ``num_frames`` time frames.

    Parameters
    ----------
    circuit:
        The design under verification (validated word-level netlist).
    num_frames:
        Number of time frames (>= 1).  Frame 0 is the initial frame.
    initial_state:
        Optional mapping from register output net (or name) to its known
        initial value.  Registers not mentioned fall back to their
        ``init_value``; a register whose ``init_value`` is ``None`` starts
        fully unknown (its frame-0 output behaves like a pseudo primary
        input).
    free_initial_state:
        When ``True`` no ``init_value`` is applied at all: every register not
        mentioned in ``initial_state`` starts fully unknown at frame 0.  Used
        by analyses that reason about transitions from *arbitrary* states
        (local FSM extraction, inductive-style arguments).
    engine:
        Optionally reuse an existing engine/assignment (used by tests).
    compiled:
        Build on the slot-indexed compiled kernel
        (:class:`~repro.implication.compiled.CompiledEngine`) instead of
        the interpreted engine.  Lowering happens incrementally while the
        frames are built/extended, so a cached model keeps its compiled
        state across bounds and jobs; the time spent is accumulated in
        :attr:`compile_seconds`.  Ignored when ``engine`` is given (the
        engine's own type wins).
    """

    def __init__(
        self,
        circuit: Circuit,
        num_frames: int,
        initial_state: Optional[Mapping[Union[Net, str], int]] = None,
        free_initial_state: bool = False,
        engine: Optional[ImplicationEngine] = None,
        compiled: bool = False,
    ):
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        self.circuit = circuit
        self.free_initial_state = free_initial_state
        if engine is None:
            engine = CompiledEngine() if compiled else ImplicationEngine()
        self.engine = engine
        #: True when the model runs on the compiled slot-indexed kernel.
        self.compiled = isinstance(engine, CompiledEngine)
        #: wall-clock seconds spent lowering frames onto the compiled
        #: kernel (zero for interpreted models).
        self.compile_seconds = 0.0
        self.driver_node: Dict[VarKey, ImplicationNode] = {}
        #: slot -> driving node (compiled models only; mirrors driver_node).
        self.driver_slot: List[Optional[ImplicationNode]] = []
        #: slot -> memoised is_decision_point verdict (compiled models only;
        #: invalidated when the circuit grows, since fanout can change).
        self._decision_point_slots: List[Optional[bool]] = []
        self.gate_nodes: List[ImplicationNode] = []
        self.register_nodes: List[ImplicationNode] = []
        self._initial_state_cubes: Dict[Net, BV3] = {}
        self._explicit_initial_state = self._resolve_initial_state(initial_state)

        #: active view: frames 0..num_frames-1 take part in checking.
        self.num_frames = 0
        #: frames physically present in the engine (>= ``num_frames``).
        self.built_frames = 0
        #: monotone counter of frame constructions (performance statistic).
        self.frames_constructed = 0

        # Circuit elements materialised so far (prefix of circuit.gates /
        # circuit.inputs, in declaration = uid order).
        self._known_gates: List[Gate] = []
        self._known_ffs: List[DFF] = []
        self._scanned_gates = 0
        self._scanned_inputs = 0

        # Per-frame node lists in canonical order: _frame_gate_nodes[f] holds
        # frame f's combinational nodes (gate-uid order);
        # _frame_register_nodes[f] holds the register nodes crossing frame f
        # into frame f+1 (flip-flop declaration order).
        self._frame_gate_nodes: List[List[ImplicationNode]] = []
        self._frame_register_nodes: List[List[ImplicationNode]] = []
        self._active_nodes_cache: Optional[List[ImplicationNode]] = None
        self._node_order_cache: Optional[Dict[int, int]] = None

        #: persistent search learning attached to the model: the learned-cube
        #: store and the proven-FAIL target memo ride the model through the
        #: :class:`~repro.checker.incremental.UnrolledModelCache`, so facts
        #: learned at one bound prune every later bound and every property
        #: sharing the (circuit, initial state, environment) cache key.  The
        #: heuristic ESTG stores stay disabled here; the checker keeps its
        #: own graph for the ``use_estg`` ablation path.
        self.estg = ExtendedStateTransitionGraph(enabled=False)

        #: persistent knowledge base plumbing (set by
        #: :meth:`repro.kb.store.KnowledgeBase.attach`): a zero-argument
        #: flush callback the model cache runs before dropping the model,
        #: and the (store, model key) pairs already merged into ``estg`` so
        #: repeated checks do not reload.
        self.kb_flush_hook = None
        self.kb_loaded_keys: Set[object] = set()

        #: keys whose base-fixpoint value is *frame-anchored*: derived from
        #: an initial-state cube or through a register crossing node.  Both
        #: kinds of fact break under frame shifting (frame-0 registers are
        #: free, so a register-boundary fact at frame f has no analog at
        #: f=0, and chains push the floor higher).  Learned facts whose
        #: implication cone touches a tainted key are therefore anchored to
        #: absolute frames; purely combinational base facts (constants and
        #: their cones are identical in every frame) stay shift-invariant.
        self.init_tainted: Set[VarKey] = set()
        self._taint_pos = 0

        self._base_level = self.engine.assignment.decision_level
        self._base_savepoint = self.engine.savepoint()
        self._absorb_circuit()
        self.extend_to(num_frames)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _resolve_initial_state(
        self, initial_state: Optional[Mapping[Union[Net, str], int]]
    ) -> Dict[Net, int]:
        explicit: Dict[Net, int] = {}
        if initial_state:
            by_name = {ff.q.name: ff.q for ff in self.circuit.flip_flops}
            for key, value in initial_state.items():
                net = key if isinstance(key, Net) else by_name.get(key)
                if net is None:
                    raise KeyError("no register output named %r" % (key,))
                explicit[net] = value
        return explicit

    def _absorb_circuit(self) -> Tuple[List[Gate], List[DFF], List[Net]]:
        """Scan circuit elements added since the last call (uid order)."""
        new_gates: List[Gate] = []
        new_ffs: List[DFF] = []
        for gate in self.circuit.gates[self._scanned_gates:]:
            if gate.is_sequential():
                new_ffs.append(gate)
            else:
                new_gates.append(gate)
        self._scanned_gates = len(self.circuit.gates)
        new_inputs = list(self.circuit.inputs[self._scanned_inputs:])
        self._scanned_inputs = len(self.circuit.inputs)
        self._known_gates.extend(new_gates)
        self._known_ffs.extend(new_ffs)
        return new_gates, new_ffs, new_inputs

    def _make_gate_node(self, gate: Gate, frame: int) -> ImplicationNode:
        semantics = build_rule(gate)
        keys = [self.key(net, frame) for net in semantics.pins]
        widths = [net.width for net in semantics.pins]
        node = ImplicationNode(
            "%s@%d" % (gate.name, frame),
            keys,
            semantics.imply,
            num_outputs=semantics.num_outputs,
            tag=(gate, frame),
        )
        self.engine.add_node(node, widths=widths)
        self.gate_nodes.append(node)
        for key in node.output_keys:
            self.driver_node[key] = node
        if self.compiled:
            for slot in node.out_slots:
                self._set_driver_slot(slot, node)
        return node

    def _make_register_node(self, ff: DFF, frame: int) -> ImplicationNode:
        node = self._build_register_node(ff, frame)
        self.engine.add_node(
            node, widths=[self.net_of(key).width for key in node.keys]
        )
        self.register_nodes.append(node)
        self.driver_node[self.key(ff.q, frame + 1)] = node
        if self.compiled:
            self._set_driver_slot(node.out_slots[0], node)
        return node

    def _set_driver_slot(self, slot: int, node: ImplicationNode) -> None:
        driver_slot = self.driver_slot
        while len(driver_slot) <= slot:
            driver_slot.append(None)
        driver_slot[slot] = node

    def _build_register_node(self, ff: DFF, frame: int) -> ImplicationNode:
        keys: List[VarKey] = [self.key(ff.d, frame)]
        if ff.enable is not None:
            keys.append(self.key(ff.enable, frame))
        if ff.reset is not None:
            keys.append(self.key(ff.reset, frame))
        if ff.set is not None:
            keys.append(self.key(ff.set, frame))
        keys.append(self.key(ff.q, frame))
        keys.append(self.key(ff.q, frame + 1))
        rule = partial(
            imply_dff,
            ff.enable is not None,
            ff.reset is not None,
            ff.set is not None,
            ff.reset_value,
        )
        return ImplicationNode(
            "%s@%d->%d" % (ff.name, frame, frame + 1),
            keys,
            rule,
            num_outputs=1,
            tag=(ff, frame),
        )

    def _build_frame(self, frame: int) -> None:
        """Materialise one new frame (and the register nodes reaching it).

        Callers are responsible for scheduling the new nodes: extend_to
        enqueues whole frame ranges so re-activated frames catch up too.
        """
        gate_nodes: List[ImplicationNode] = []
        for gate in self._known_gates:
            gate_nodes.append(self._make_gate_node(gate, frame))
        self._frame_gate_nodes.append(gate_nodes)
        self._frame_register_nodes.append([])
        if frame > 0:
            crossing: List[ImplicationNode] = []
            for ff in self._known_ffs:
                crossing.append(self._make_register_node(ff, frame - 1))
            self._frame_register_nodes[frame - 1] = crossing
        # Free keys of this frame: primary inputs (every frame) and register
        # outputs (frame 0 only).
        for net in self.circuit.inputs[: self._scanned_inputs]:
            self.engine.assignment.register(self.key(net, frame), net.width)
        if frame == 0:
            for ff in self._known_ffs:
                self.engine.assignment.register(self.key(ff.q, 0), ff.q.width)
            self._apply_initial_state(self._known_ffs)
        self.built_frames += 1
        self.frames_constructed += 1

    def _apply_initial_state(self, ffs: List[DFF]) -> None:
        """Seed frame-0 register values for the given flip-flops."""
        for ff in ffs:
            if ff.q in self._explicit_initial_state:
                cube = BV3.from_int(ff.q.width, self._explicit_initial_state[ff.q])
            elif ff.init_value is not None and not self.free_initial_state:
                cube = BV3.from_int(ff.q.width, ff.init_value)
            else:
                continue
            self._initial_state_cubes[ff.q] = cube
            key = self.key(ff.q, 0)
            self.engine.assign(
                key, cube, propagate=False, reason=RootCause("base", key, cube)
            )

    # ------------------------------------------------------------------
    # Incremental expansion
    # ------------------------------------------------------------------
    def extend_to(self, num_frames: int) -> None:
        """Resize the active view to ``num_frames``, building missing frames.

        Growing beyond the built depth appends only the new frames' nodes to
        the live engine (the existing seed fixpoint is reused); shrinking
        deactivates the frames beyond the view without removing them, so a
        later deeper check re-activates them for free.  Must be called at the
        model's base decision level whenever the view actually changes.
        """
        if num_frames < 1:
            raise ValueError("num_frames must be >= 1")
        if num_frames == self.num_frames:
            return  # built_frames >= num_frames is an invariant
        self._require_base_level("extend_to")
        old_view = self.num_frames
        if self.built_frames < num_frames:
            started = time.perf_counter()
            while self.built_frames < num_frames:
                self._build_frame(self.built_frames)
            if self.compiled:
                self.compile_seconds += time.perf_counter() - started
        self._set_view(num_frames)
        if old_view < num_frames:
            # Re-activated frames may have missed base-level updates (e.g.
            # monitors synced while they were inert): schedule every node of
            # the newly visible frames, not just the freshly built ones.
            self.engine.enqueue(
                node
                for frame in range(old_view, num_frames)
                for node in self._frame_gate_nodes[frame]
            )
            self.engine.enqueue(
                node
                for frame in range(max(old_view - 1, 0), num_frames - 1)
                for node in self._frame_register_nodes[frame]
            )
            self.engine.propagate()
        self._base_savepoint = self.engine.savepoint()
        self._refresh_init_taint()

    def sync_with_circuit(self) -> bool:
        """Materialise circuit elements added after the model was built.

        Property compilation appends monitor gates (and, for ``Delayed``
        expressions, registers) to the circuit; this method extends every
        built frame with nodes for them so a cached model stays equivalent
        to a freshly built one.  Returns ``True`` when anything was added.
        """
        new_gates, new_ffs, new_inputs = self._absorb_circuit()
        if not (new_gates or new_ffs or new_inputs):
            return False
        self._require_base_level("sync_with_circuit")
        started = time.perf_counter()
        # Fanout of existing nets can change when monitors are appended, so
        # the memoised per-slot decision-point verdicts are stale.
        self._decision_point_slots = []
        new_nodes: List[ImplicationNode] = []
        for frame in range(self.built_frames):
            for net in new_inputs:
                self.engine.assignment.register(self.key(net, frame), net.width)
            frame_nodes = self._frame_gate_nodes[frame]
            active = frame < self.num_frames
            for gate in new_gates:
                node = self._make_gate_node(gate, frame)
                node.active = active
                frame_nodes.append(node)
                if active:
                    new_nodes.append(node)
        for frame in range(self.built_frames - 1):
            active = frame < self.num_frames - 1
            crossing = self._frame_register_nodes[frame]
            for ff in new_ffs:
                node = self._make_register_node(ff, frame)
                node.active = active
                crossing.append(node)
                if active:
                    new_nodes.append(node)
        if new_ffs:
            for ff in new_ffs:
                self.engine.assignment.register(self.key(ff.q, 0), ff.q.width)
            self._apply_initial_state(new_ffs)
        self._active_nodes_cache = None
        self._node_order_cache = None
        if self.compiled:
            self.compile_seconds += time.perf_counter() - started
        self.engine.enqueue(new_nodes)
        self.engine.propagate()
        self._base_savepoint = self.engine.savepoint()
        self._refresh_init_taint()
        return True

    def _set_view(self, num_frames: int) -> None:
        old_view = self.num_frames
        self.num_frames = num_frames
        if old_view != num_frames:
            self._active_nodes_cache = None
            self._node_order_cache = None
        low, high = sorted((old_view, num_frames))
        toggled: List[ImplicationNode] = []
        for frame in range(low, high):
            for node in self._frame_gate_nodes[frame]:
                node.active = frame < num_frames
                toggled.append(node)
        for frame in range(max(low - 1, 0), high):
            if frame < len(self._frame_register_nodes):
                for node in self._frame_register_nodes[frame]:
                    node.active = frame < num_frames - 1
                    toggled.append(node)
        # Activation changes are invisible to the assignment trail, so the
        # unjustified frontier must be told to re-test the toggled nodes.
        self.engine.mark_dirty(toggled)

    @property
    def at_base_level(self) -> bool:
        """True when no decisions/goals are pending on top of the base model."""
        return self.engine.assignment.decision_level == self._base_level

    @property
    def is_clean(self) -> bool:
        """True when the engine is exactly at the last base fixpoint.

        Stricter than :attr:`at_base_level`: goals asserted *at* the base
        level (the incremental checker opens no decision level for them)
        grow the trail past the recorded base savepoint and are detected
        here, so a check that died without retracting cannot leak state
        into a reused model.
        """
        return self.engine.savepoint() == self._base_savepoint

    def _require_base_level(self, operation: str) -> None:
        if self.engine.assignment.decision_level != self._base_level:
            raise RuntimeError(
                "%s requires the model's base decision level %d (current: %d)"
                % (operation, self._base_level, self.engine.assignment.decision_level)
            )

    def active_nodes(self) -> List[ImplicationNode]:
        """Nodes of the active view, in the canonical (fresh-build) order:
        every frame's gate nodes first, then the cross-frame register nodes.
        """
        if self._active_nodes_cache is None:
            nodes: List[ImplicationNode] = []
            for frame in range(self.num_frames):
                nodes.extend(self._frame_gate_nodes[frame])
            for frame in range(self.num_frames - 1):
                nodes.extend(self._frame_register_nodes[frame])
            self._active_nodes_cache = nodes
        return self._active_nodes_cache

    def node_order(self) -> Dict[int, int]:
        """``id(node) -> rank`` over :meth:`active_nodes`.

        The unjustified frontier uses this to report nodes in the canonical
        fresh-build order, keeping incremental searches bit-identical to
        searches over a freshly built model.
        """
        if self._node_order_cache is None:
            self._node_order_cache = {
                id(node): index for index, node in enumerate(self.active_nodes())
            }
        return self._node_order_cache

    def _refresh_init_taint(self) -> None:
        """Absorb new base-fixpoint trail entries into the frame-taint set.

        A key is tainted when its base value is frame-anchored: it was
        seeded from an initial-state cube (``base`` root cause), derived by
        a register crossing node (register-boundary facts have no frame-0
        analog, because frame-0 register outputs are free), or refined by a
        node with a tainted pin.  The scan is incremental over the trail,
        so repeated extensions stay O(new entries); it must only run at the
        base level, where the trail holds exactly the shared base fixpoint.
        """
        assignment = self.engine.assignment
        tainted = self.init_tainted
        if self.compiled:
            # Slot trail entries carry (slot, ..., reason); translating just
            # the tainted keys avoids materialising a BV3 per entry.
            key_of = assignment.key_of
            for index in range(self._taint_pos, assignment.trail_length):
                slot, reason = assignment.trail_slot_reason(index)
                if isinstance(reason, RootCause):
                    if reason.kind == "base":
                        tainted.add(key_of(slot))
                elif reason is not None:
                    tag = reason.tag
                    if (
                        isinstance(tag, tuple) and tag and isinstance(tag[0], DFF)
                    ) or any(k in tainted for k in reason.keys):
                        tainted.add(key_of(slot))
            self._taint_pos = assignment.trail_length
            return
        for index in range(self._taint_pos, assignment.trail_length):
            key, _previous, reason = assignment.trail_entry(index)
            if isinstance(reason, RootCause):
                if reason.kind == "base":
                    tainted.add(key)
            elif reason is not None:
                tag = reason.tag
                if (isinstance(tag, tuple) and tag and isinstance(tag[0], DFF)) or any(
                    k in tainted for k in reason.keys
                ):
                    tainted.add(key)
        self._taint_pos = assignment.trail_length

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @staticmethod
    def key(net: Net, frame: int) -> VarKey:
        """The variable key of ``net`` in time frame ``frame``."""
        return (net, frame)

    @staticmethod
    def net_of(key: VarKey) -> Net:
        """The net component of a key."""
        return key[0]

    @staticmethod
    def frame_of(key: VarKey) -> int:
        """The frame component of a key."""
        return key[1]

    def value(self, net: Net, frame: int) -> BV3:
        """Current cube of a net in a frame."""
        return self.engine.assignment.get(self.key(net, frame))

    def assign(self, net: Net, frame: int, cube: BV3, propagate: bool = True) -> bool:
        """Refine a net's cube in a frame (convenience wrapper)."""
        return self.engine.assign(self.key(net, frame), cube, propagate=propagate)

    def propagate(self) -> None:
        """Run implication to fixpoint."""
        self.engine.propagate()

    # ------------------------------------------------------------------
    # Classification helpers used by the ATPG
    # ------------------------------------------------------------------
    def is_control_key(self, key: VarKey) -> bool:
        """True when the key refers to a control (1-bit or forced) net."""
        return is_control(self.net_of(key))

    def is_decision_point(self, key: VarKey) -> bool:
        """Candidate decision points per the paper: control primary inputs,
        flip-flop outputs, comparator outputs and multi-fanout control nets."""
        net = self.net_of(key)
        frame = self.frame_of(key)
        if not self.is_control_key(key):
            return False
        if net.is_primary_input():
            return True
        driver = net.driver
        if driver is None:
            return frame == 0  # undriven (pseudo) inputs at frame 0
        if isinstance(driver, DFF):
            return frame == 0
        if isinstance(driver, Comparator):
            return True
        return net.fanout() > 1

    def is_decision_point_slot(self, slot: int) -> bool:
        """Memoised per-slot :meth:`is_decision_point` (compiled models).

        The verdict is a pure function of the key while the circuit is
        static; :meth:`sync_with_circuit` drops the memo because appended
        monitors can change net fanout.
        """
        cache = self._decision_point_slots
        while len(cache) <= slot:
            cache.append(None)
        verdict = cache[slot]
        if verdict is None:
            verdict = cache[slot] = self.is_decision_point(
                self.engine.assignment.key_of(slot)
            )
        return verdict

    def free_keys(self) -> List[VarKey]:
        """Keys with no driving node: primary inputs in every frame and
        frame-0 register outputs."""
        keys: List[VarKey] = []
        for frame in range(self.num_frames):
            for net in self.circuit.inputs:
                keys.append(self.key(net, frame))
        for ff in self.circuit.flip_flops:
            keys.append(self.key(ff.q, 0))
        return keys

    def state_keys(self, frame: int) -> List[VarKey]:
        """Register output keys for a given frame."""
        return [self.key(ff.q, frame) for ff in self.circuit.flip_flops]

    def input_assignment(self) -> List[Dict[str, int]]:
        """Concrete per-frame input values (x bits filled with 0).

        Used to turn a successful justification into a simulatable test
        sequence.
        """
        frames: List[Dict[str, int]] = []
        for frame in range(self.num_frames):
            values: Dict[str, int] = {}
            for net in self.circuit.inputs:
                cube = self.value(net, frame)
                values[net.name] = cube.min_value()
            frames.append(values)
        return frames

    def initial_state_assignment(self) -> Dict[str, int]:
        """Concrete frame-0 register values (x bits filled with 0)."""
        result: Dict[str, int] = {}
        for ff in self.circuit.flip_flops:
            cube = self.value(ff.q, 0)
            result[ff.q.name] = cube.min_value()
        return result

    def __repr__(self) -> str:
        return "UnrolledModel(%r, frames=%d/%d built, nodes=%d)" % (
            self.circuit.name,
            self.num_frames,
            self.built_frames,
            len(self.gate_nodes) + len(self.register_nodes),
        )
