"""Word-level ATPG (Section 3 of the paper).

The justification engine makes branch-and-bound decisions on *control*
signals only, guided by the legal-1/legal-0 probabilities and legal
assignment bias of the paper, over a time-frame expanded model of the
circuit.  Datapath value requirements are deliberately left unjustified and
handed to the modular arithmetic constraint solver.
"""

from repro.atpg.timeframe import UnrolledModel, VarKey
from repro.atpg.probability import legal_one_probabilities, legal_assignment_bias
from repro.atpg.decisions import DecisionCandidate, find_decision_candidates
from repro.atpg.estg import ExtendedStateTransitionGraph
from repro.atpg.justify import Justifier, JustifyOutcome, JustifyResult

__all__ = [
    "UnrolledModel",
    "VarKey",
    "legal_one_probabilities",
    "legal_assignment_bias",
    "DecisionCandidate",
    "find_decision_candidates",
    "ExtendedStateTransitionGraph",
    "Justifier",
    "JustifyOutcome",
    "JustifyResult",
]
