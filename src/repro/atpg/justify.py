"""Branch-and-bound justification (the paper's Fig. 2 flow).

The justifier works on an :class:`~repro.atpg.timeframe.UnrolledModel` whose
assignment already carries the property requirements.  It repeatedly:

1. finds the unjustified *control* gates (gates whose pins are all control
   signals and whose required output is not yet implied by their inputs),
2. backward-traverses to a cut of candidate decision points,
3. decides the candidate with the highest legal assignment bias
   (complement-of-bias first in prove mode), runs word-level implication, and
   backtracks on conflicts,
4. when the control constraints are satisfied, checks the remaining datapath
   requirements with the modular arithmetic solver and a bounded completion
   search; if they are infeasible the ATPG backtracks and looks for the next
   control solution.

The outcome is SUCCESS (every requirement justified -- a counterexample /
witness exists), FAIL (the requirements cannot be satisfied -- the assertion
holds for this unrolling), or ABORT (a resource limit was hit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, List, Optional

from repro.atpg.decisions import find_decision_candidates
from repro.atpg.estg import ExtendedStateTransitionGraph
from repro.atpg.timeframe import UnrolledModel
from repro.bitvector import BV3
from repro.implication.assignment import ImplicationConflict
from repro.implication.engine import ImplicationNode
from repro.modsolver.extract import DatapathConstraintExtractor
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor


class JustifyOutcome(enum.Enum):
    """Result of a justification run."""

    SUCCESS = "success"
    FAIL = "fail"
    ABORT = "abort"


@dataclass
class JustifyResult:
    """Outcome plus search statistics."""

    outcome: JustifyOutcome
    decisions: int = 0
    backtracks: int = 0
    conflicts: int = 0
    arithmetic_calls: int = 0
    implications: int = 0

    @property
    def succeeded(self) -> bool:
        return self.outcome is JustifyOutcome.SUCCESS


@dataclass
class JustifierLimits:
    """Resource limits of the branch-and-bound search."""

    max_decisions: int = 200_000
    max_backtracks: int = 50_000
    max_depth: int = 5_000
    decision_cut_limit: int = 64
    completion_attempts: int = 8
    arithmetic_budget: int = 256


class Justifier:
    """Branch-and-bound justification over an unrolled model."""

    def __init__(
        self,
        model: UnrolledModel,
        prove_mode: bool = True,
        use_bias: bool = True,
        limits: Optional[JustifierLimits] = None,
        estg: Optional[ExtendedStateTransitionGraph] = None,
        sampled_probabilities=None,
    ):
        self.model = model
        self.engine = model.engine
        self.prove_mode = prove_mode
        self.use_bias = use_bias
        self.limits = limits if limits is not None else JustifierLimits()
        self.estg = estg
        #: optional net-name -> mass-sampled P(net = 1) table used as the
        #: decision-bias fallback (see repro.atpg.probability).
        self.sampled_probabilities = sampled_probabilities
        self.decisions = 0
        self.backtracks = 0
        self.conflicts = 0
        self.arithmetic_calls = 0
        self._aborted = False

    def _unjustified(self) -> List[ImplicationNode]:
        """Unjustified nodes of the model's *active view*.

        The incremental model may carry built-but-inactive frames beyond the
        current check bound (plus their forward-derived values); restricting
        the scan to ``model.active_nodes()`` keeps the search identical to
        one over a freshly built model of the same bound.
        """
        return self.engine.unjustified_nodes(self.model.active_nodes())

    # ------------------------------------------------------------------
    def run(self) -> JustifyResult:
        """Run the search.  The assignment is left at the solution on SUCCESS
        and restored to its pre-search state otherwise."""
        start_implications = self.engine.implication_count
        try:
            self.engine.propagate()
        except ImplicationConflict:
            self.conflicts += 1
            return self._result(JustifyOutcome.FAIL, start_implications)

        base_level = self.engine.assignment.decision_level
        outcome = self._search(0)
        if outcome is not JustifyOutcome.SUCCESS:
            while self.engine.assignment.decision_level > base_level:
                self.engine.pop_level()
        return self._result(outcome, start_implications)

    def _result(self, outcome: JustifyOutcome, start_implications: int) -> JustifyResult:
        return JustifyResult(
            outcome=outcome,
            decisions=self.decisions,
            backtracks=self.backtracks,
            conflicts=self.conflicts,
            arithmetic_calls=self.arithmetic_calls,
            implications=self.engine.implication_count - start_implications,
        )

    # ------------------------------------------------------------------
    def _search(self, depth: int) -> JustifyOutcome:
        if self.decisions > self.limits.max_decisions or depth > self.limits.max_depth:
            self._aborted = True
            return JustifyOutcome.ABORT
        if self.backtracks > self.limits.max_backtracks:
            self._aborted = True
            return JustifyOutcome.ABORT

        if self.estg is not None:
            if self.estg.is_illegal(self._state_cube(), context=self.model.num_frames):
                return JustifyOutcome.FAIL
            # Structurally illegal states are time-invariant facts (typically
            # seeded from local FSM extraction) and may be tested in *every*
            # frame of the unrolled model.
            if self.estg.structurally_illegal and self._hits_structurally_illegal():
                return JustifyOutcome.FAIL

        unjustified = self._unjustified()
        if not unjustified:
            return JustifyOutcome.SUCCESS

        # Decision candidates are the undecided *control* signals in the
        # backward cone of every unjustified gate (control or datapath).  The
        # paper restricts the branch-and-bound to these signals; the datapath
        # values themselves are never enumerated.
        candidates = find_decision_candidates(
            self.model,
            unjustified,
            limit=self.limits.decision_cut_limit,
            prove_mode=self.prove_mode,
            use_bias=self.use_bias,
            sampled_probabilities=self.sampled_probabilities,
        )
        if not candidates:
            # No control freedom remains: hand the residual requirements to
            # the modular arithmetic constraint solver (plus completion).
            if self._datapath_feasible():
                return JustifyOutcome.SUCCESS
            self._learn_illegal_state()
            return JustifyOutcome.FAIL

        candidate = candidates[0]
        first = candidate.preferred_first_value(self.prove_mode)
        for value in (first, 1 - first):
            self.decisions += 1
            self.engine.push_level()
            try:
                self.engine.assign(candidate.key, BV3.from_int(1, value))
            except ImplicationConflict:
                self.conflicts += 1
                self.engine.pop_level()
                self.backtracks += 1
                continue
            outcome = self._search(depth + 1)
            if outcome is JustifyOutcome.SUCCESS:
                return outcome
            self.engine.pop_level()
            self.backtracks += 1
            if outcome is JustifyOutcome.ABORT:
                return outcome
        self._learn_illegal_state()
        return JustifyOutcome.FAIL

    # ------------------------------------------------------------------
    # Control / datapath split
    # ------------------------------------------------------------------
    def _is_control_node(self, node: ImplicationNode) -> bool:
        return all(
            self.engine.assignment.width(key) == 1 for key in node.input_keys
        )

    def _control_unjustified(self) -> List[ImplicationNode]:
        return [
            node
            for node in self._unjustified()
            if self._is_control_node(node)
        ]

    def _datapath_unjustified(self) -> List[ImplicationNode]:
        return [
            node
            for node in self._unjustified()
            if not self._is_control_node(node)
        ]

    # ------------------------------------------------------------------
    # Datapath phase: modular arithmetic solving + bounded completion
    # ------------------------------------------------------------------
    def _datapath_feasible(self) -> bool:
        unjustified = self._datapath_unjustified()
        if not unjustified:
            return True

        arithmetic_nodes = [
            node
            for node in unjustified
            if isinstance(self._gate_of(node), (Adder, Subtractor, Multiplier, ShiftLeft, ShiftRight))
        ]
        if arithmetic_nodes:
            self.arithmetic_calls += 1
            extractor = DatapathConstraintExtractor(self.engine)
            problem = extractor.extract(arithmetic_nodes)
            if not problem.is_empty():
                solution = problem.solve(budget=self.limits.arithmetic_budget)
                if solution is None:
                    return False
                self.engine.push_level()
                try:
                    for key, value in solution.items():
                        width = self.engine.assignment.width(key)
                        self.engine.assign(key, BV3.from_int(width, value), propagate=False)
                    self.engine.propagate()
                except ImplicationConflict:
                    self.conflicts += 1
                    self.engine.pop_level()
                    return False
                if self._complete_datapath():
                    return True
                self.engine.pop_level()
                return False
        return self._complete_datapath()

    def _complete_datapath(self) -> bool:
        """Greedy completion of the remaining undetermined datapath inputs.

        Repeatedly pick an unjustified node and try a small set of candidate
        completions (min / max of the current cube) for one of its
        undetermined free input keys.  Bounded by ``completion_attempts``.
        """
        for _ in range(self.limits.completion_attempts):
            unjustified = self._unjustified()
            if not unjustified:
                return True
            progressed = False
            for node in unjustified:
                key = self._pick_completion_key(node)
                if key is None:
                    continue
                if self._try_completions(key):
                    progressed = True
                    break
            if not progressed:
                return False
        return not self._unjustified()

    def _pick_completion_key(self, node: ImplicationNode) -> Optional[Hashable]:
        free_keys = []
        other_keys = []
        for key in node.input_keys:
            cube = self.engine.assignment.get(key)
            if cube.is_fully_known():
                continue
            if self.model.driver_node.get(key) is None:
                free_keys.append(key)
            else:
                other_keys.append(key)
        if free_keys:
            return free_keys[0]
        if other_keys:
            return other_keys[0]
        return None

    def _try_completions(self, key: Hashable) -> bool:
        cube = self.engine.assignment.get(key)
        width = self.engine.assignment.width(key)
        candidates = []
        for value in (cube.min_value(), cube.max_value()):
            if value not in candidates:
                candidates.append(value)
        for value in candidates:
            self.engine.push_level()
            try:
                self.engine.assign(key, BV3.from_int(width, value))
                return True
            except ImplicationConflict:
                self.conflicts += 1
                self.engine.pop_level()
        return False

    # ------------------------------------------------------------------
    # ESTG interaction
    # ------------------------------------------------------------------
    def _state_cube(self):
        registers = [
            (ff.q.name, self.model.value(ff.q, 0)) for ff in self.model.circuit.flip_flops
        ]
        registers = [(name, cube) for name, cube in registers if not cube.is_fully_unknown()]
        return ExtendedStateTransitionGraph.state_cube(registers)

    def _hits_structurally_illegal(self) -> bool:
        """True when any frame's implied register values fall inside a
        structurally illegal state cube."""
        for frame in range(self.model.num_frames):
            registers = [
                (ff.q.name, self.model.value(ff.q, frame))
                for ff in self.model.circuit.flip_flops
            ]
            registers = [
                (name, cube) for name, cube in registers if cube.is_fully_known()
            ]
            if not registers:
                continue
            state = ExtendedStateTransitionGraph.state_cube(registers)
            if self.estg.is_structurally_illegal(state):
                return True
        return False

    def _learn_illegal_state(self) -> None:
        if self.estg is None:
            return
        state = self._state_cube()
        # Only record states that are meaningfully constrained and fully
        # derived from implication of the (failed) requirements.
        if state and len(state) <= 8:
            self.estg.record_illegal_state(state, context=self.model.num_frames)

    @staticmethod
    def _gate_of(node: ImplicationNode):
        return node.tag[0] if isinstance(node.tag, tuple) else None
