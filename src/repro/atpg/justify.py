"""Branch-and-bound justification (the paper's Fig. 2 flow).

The justifier works on an :class:`~repro.atpg.timeframe.UnrolledModel` whose
assignment already carries the property requirements.  It repeatedly:

1. finds the unjustified *control* gates (gates whose pins are all control
   signals and whose required output is not yet implied by their inputs),
2. backward-traverses to a cut of candidate decision points,
3. decides the candidate with the highest legal assignment bias
   (complement-of-bias first in prove mode), runs word-level implication, and
   backtracks on conflicts,
4. when the control constraints are satisfied, checks the remaining datapath
   requirements with the modular arithmetic solver and a bounded completion
   search; if they are infeasible the ATPG backtracks and looks for the next
   control solution.  The solver's answers are typed: a *proved* infeasible
   system carries a certificate (the engine keys of the clashing source
   constraints) that is analysed exactly like an implication conflict, so
   datapath refutations feed conflict learning; a budget-exhausted
   ``Unknown`` prunes the leaf only and never produces a learned cube.

The outcome is SUCCESS (every requirement justified -- a counterexample /
witness exists), FAIL (the requirements cannot be satisfied -- the assertion
holds for this unrolling), or ABORT (a resource limit was hit).

Unjustified gates are tracked through the implication engine's *dirty-set
frontier* (see :meth:`~repro.implication.engine.ImplicationEngine.unjustified_frontier`):
each search step re-tests only the nodes whose keys changed, in the model's
canonical order, so searches stay bit-identical to full scans at O(changed)
cost.

When a :class:`LearningContext` is supplied, the search additionally learns
*sound* illegal cubes for the persistent store riding the model:

* every implication conflict is traced back to its external roots
  (:meth:`~repro.implication.engine.ImplicationEngine.analyze_conflict`);
* when both values of a decision fail with fully analysed (proof) subtrees,
  the branch roots are resolved over the decision, lifting the learned cube
  down to the decisions that actually participated in the conflicts;
* cubes whose implication cone stayed clear of the initial state are stored
  target-relative and re-based when the target frame shifts; cones touching
  initial-state values anchor to absolute frames;
* stored cubes are installed as pure constraint nodes at the start of each
  later search (retracted with the per-bound goals), pruning any branch that
  re-enters a combination already proven contradictory.

Pruning is conflict-only -- learned nodes never refine values -- so a search
with learning explores a subset of the non-learning search's branches and
reaches the same verdict and the same counterexample.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.atpg.decisions import DecisionCandidate, find_decision_candidates
from repro.atpg.estg import ExtendedStateTransitionGraph, LearnedCube
from repro.atpg.timeframe import UnrolledModel, VarKey
from repro.bitvector import BV3, BV3Conflict
from repro.implication.assignment import ImplicationConflict, RootCause
from repro.implication.engine import ImplicationNode
from repro.modsolver.extract import ArithmeticProblem, DatapathConstraintExtractor
from repro.modsolver.result import Infeasible, Solution
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor


class JustifyOutcome(enum.Enum):
    """Result of a justification run."""

    SUCCESS = "success"
    FAIL = "fail"
    ABORT = "abort"


@dataclass
class JustifyResult:
    """Outcome plus search statistics."""

    outcome: JustifyOutcome
    decisions: int = 0
    backtracks: int = 0
    conflicts: int = 0
    arithmetic_calls: int = 0
    implications: int = 0
    #: datapath solver calls answered with an infeasibility certificate.
    solver_cores: int = 0

    @property
    def succeeded(self) -> bool:
        return self.outcome is JustifyOutcome.SUCCESS


@dataclass
class JustifierLimits:
    """Resource limits of the branch-and-bound search."""

    max_decisions: int = 200_000
    max_backtracks: int = 50_000
    max_depth: int = 5_000
    decision_cut_limit: int = 64
    completion_attempts: int = 8
    arithmetic_budget: int = 256


@dataclass
class LearningContext:
    """Everything the search needs to consult and grow the learned store.

    ``estg`` is the persistent graph attached to the (cached) unrolled
    model; ``prop_fp`` fingerprints the property being checked (goal value
    included), so goal-dependent facts are only reused for the same
    property; ``base_trail_mark`` bounds conflict analysis at the per-bound
    savepoint, below which lies the shared base fixpoint.
    """

    estg: ExtendedStateTransitionGraph
    prop_fp: object
    target_frame: int
    base_trail_mark: int
    #: learned cubes wider than this are not recorded (wide cubes re-fire
    #: rarely and slow down the constraint scan).
    max_cube_literals: int = 8


@dataclass
class _SubtreeFacts:
    """Conflict antecedents accumulated while a subtree failed.

    Tracks the external roots feeding every conflict in the subtree, the
    frame extent of the implication cones (for re-basing validity),
    whether any cone touched an initial-state-derived value, and whether a
    datapath-solver infeasibility certificate participated (cubes resolved
    from such facts are counted as datapath-derived).
    """

    roots: Set[RootCause] = field(default_factory=set)
    min_frame: int = 0
    max_frame: int = 0
    base: bool = False
    datapath: bool = False

    def merge(self, other: "_SubtreeFacts") -> None:
        self.roots |= other.roots
        self.min_frame = min(self.min_frame, other.min_frame)
        self.max_frame = max(self.max_frame, other.max_frame)
        self.base = self.base or other.base
        self.datapath = self.datapath or other.datapath


def problem_fingerprint(problem: ArithmeticProblem) -> str:
    """Canonical, process-stable fingerprint of an extracted problem.

    Captures everything :meth:`ArithmeticProblem.solve` depends on --
    constraints *in extraction order* (the solver's variable ordering
    follows insertion), constants, provenance tags and the partial-knowledge
    cubes -- with engine keys rendered as ``(net name, frame)``.  Two leaves
    with the same fingerprint would therefore receive the exact same answer
    from the solver, which is what lets the justifier replay a memoised
    infeasibility certificate instead of re-solving.
    """

    def name_of(key) -> str:
        return getattr(key[0], "name", None) or repr(key[0])

    def var(value):
        if isinstance(value, int):
            return ("c", value)
        return ("v", name_of(value), value[1])

    def tags(tag_set):
        # Tags are a frozenset; their order never reaches the solver, so
        # sorting here is free of behavioural consequence.
        return tuple(sorted((name_of(key), key[1]) for key in tag_set))

    linear = tuple(
        (
            width,
            tuple(
                (
                    tuple(
                        (name_of(key), key[1], coeff)
                        for key, coeff in constraint.coefficients.items()
                    ),
                    constraint.rhs,
                    tags(constraint.tags),
                )
                for constraint in problem.linear_by_width[width].constraints
            ),
        )
        for width in sorted(problem.linear_by_width)
    )
    nonlinear = tuple(
        (c.kind, var(c.a), var(c.b), var(c.product), c.width, tags(c.tags))
        for c in problem.nonlinear
    )
    cubes = tuple(
        (name_of(key), key[1], cube.width, cube.known, cube.value)
        for key, cube in problem.cubes.items()
    )
    return repr((linear, nonlinear, cubes))


def _make_cube_rule(required: List[BV3], store: ExtendedStateTransitionGraph,
                    cube: LearnedCube):
    """Build the conflict-only rule of one installed learned cube.

    The rule raises exactly when the current assignment entails every
    literal; it never refines a value, so installed cubes can only remove
    branches that are already contradictory.
    """

    def rule(cubes: List[BV3]) -> List[BV3]:
        for literal, current in zip(required, cubes):
            if not literal.covers(current):
                return list(cubes)
        store.cube_hits += 1
        if cube.source == "datapath":
            store.datapath_cube_hits += 1
        if cube.from_kb:
            store.kb_hits += 1
        cube.hits += 1
        store.touch(cube)
        store.last_fired = cube
        raise BV3Conflict("learned illegal cube (%s)" % cube.source)

    return rule


def _make_packed_cube_rule(required: List[BV3], store: ExtendedStateTransitionGraph,
                           cube: LearnedCube):
    """Compiled-kernel variant of :func:`_make_cube_rule` (a prune *row*).

    The literal cubes are packed once, at install time, into a single
    (known, value) integer pair with per-literal bit offsets; each
    evaluation packs the current cubes the same way and decides the whole
    entailment with two mask operations.  Per disjoint bit range this is
    exactly the per-literal ``covers`` conjunction, so the rule fires under
    the same condition, with the same side effects, as the interpreted one.
    """
    offsets: List[int] = []
    req_known = 0
    req_value = 0
    shift = 0
    for literal in required:
        offsets.append(shift)
        req_known |= literal.known << shift
        req_value |= literal.value << shift
        shift += literal.width

    def rule(cubes: List[BV3]) -> List[BV3]:
        known = 0
        value = 0
        for offset, current in zip(offsets, cubes):
            known |= current.known << offset
            value |= current.value << offset
        if req_known & ~known or (req_value ^ value) & req_known:
            return list(cubes)
        store.cube_hits += 1
        if cube.source == "datapath":
            store.datapath_cube_hits += 1
        if cube.from_kb:
            store.kb_hits += 1
        cube.hits += 1
        store.touch(cube)
        store.last_fired = cube
        raise BV3Conflict("learned illegal cube (%s)" % cube.source)

    return rule


class Justifier:
    """Branch-and-bound justification over an unrolled model."""

    def __init__(
        self,
        model: UnrolledModel,
        prove_mode: bool = True,
        use_bias: bool = True,
        limits: Optional[JustifierLimits] = None,
        estg: Optional[ExtendedStateTransitionGraph] = None,
        sampled_probabilities=None,
        learning: Optional[LearningContext] = None,
        cube_hit_ordering: bool = False,
    ):
        self.model = model
        self.engine = model.engine
        self.prove_mode = prove_mode
        self.use_bias = use_bias
        self.limits = limits if limits is not None else JustifierLimits()
        self.estg = estg
        self.learning = learning
        #: re-rank decision candidates by the fire counts of the learned
        #: cubes naming them (off by default; an ablation heuristic).
        self.cube_hit_ordering = cube_hit_ordering
        #: optional net-name -> mass-sampled P(net = 1) table used as the
        #: decision-bias fallback (see repro.atpg.probability).
        self.sampled_probabilities = sampled_probabilities
        self.decisions = 0
        self.backtracks = 0
        self.conflicts = 0
        self.arithmetic_calls = 0
        self.solver_cores = 0
        self._aborted = False
        #: cubes learned during this search, waiting to be installed as
        #: constraint nodes at the next safe point (between sibling
        #: branches); see :meth:`_flush_pending_cubes`.
        self._pending_cubes: List[Tuple[List[VarKey], List[BV3], LearnedCube]] = []
        #: control/datapath classification per node.  A node's pin widths
        #: never change, so the answer is a per-node constant; the stored
        #: node reference keeps the id stable for the justifier's lifetime
        #: (a retired node's id could otherwise be recycled by a new one).
        self._control_memo: Dict[int, Tuple[ImplicationNode, bool]] = {}

    def _unjustified(self) -> List[ImplicationNode]:
        """Unjustified nodes of the model's *active view*.

        Served by the engine's incrementally maintained dirty-set frontier,
        ordered by the model's canonical node ranking -- the same nodes, in
        the same order, as a full ``unjustified_nodes(active_nodes())``
        scan, at O(changed keys) per step.
        """
        return self.engine.unjustified_frontier(self.model.node_order())

    # ------------------------------------------------------------------
    def run(self) -> JustifyResult:
        """Run the search.  The assignment is left at the solution on SUCCESS
        and restored to its pre-search state otherwise."""
        start_implications = self.engine.implication_count
        if self.learning is not None:
            self._install_learned_cubes()
        try:
            self.engine.propagate()
        except ImplicationConflict:
            self.conflicts += 1
            return self._result(JustifyOutcome.FAIL, start_implications)

        base_level = self.engine.assignment.decision_level
        outcome, _facts = self._search(0)
        if outcome is not JustifyOutcome.SUCCESS:
            while self.engine.assignment.decision_level > base_level:
                self.engine.pop_level()
        return self._result(outcome, start_implications)

    def _result(self, outcome: JustifyOutcome, start_implications: int) -> JustifyResult:
        return JustifyResult(
            outcome=outcome,
            decisions=self.decisions,
            backtracks=self.backtracks,
            conflicts=self.conflicts,
            arithmetic_calls=self.arithmetic_calls,
            implications=self.engine.implication_count - start_implications,
            solver_cores=self.solver_cores,
        )

    # ------------------------------------------------------------------
    # Learned-cube installation (cross-bound reuse)
    # ------------------------------------------------------------------
    def _anchored_literals(
        self, cube: LearnedCube
    ) -> Optional[Tuple[List[VarKey], List[BV3]]]:
        """Re-base a cube at the current target frame as (keys, cubes).

        Returns ``None`` when the cube does not fit the active window.
        """
        anchored = cube.anchor(self.learning.target_frame)
        if anchored is None:
            return None
        keys: List[VarKey] = []
        required: List[BV3] = []
        for net, frame, value in anchored:
            if frame < 0 or frame >= self.model.num_frames:
                return None
            keys.append(self.model.key(net, frame))
            required.append(value)
        return keys, required

    def _materialize_cube(
        self, keys: List[VarKey], required: List[BV3], cube: LearnedCube
    ) -> ImplicationNode:
        """Build and register the prune-only constraint node of one cube."""
        make_rule = (
            _make_packed_cube_rule
            if getattr(self.engine, "is_compiled", False)
            else _make_cube_rule
        )
        node = ImplicationNode(
            "learned:%s@%d" % (cube.source, self.learning.target_frame),
            keys,
            make_rule(required, self.learning.estg, cube),
            num_outputs=0,
            tag=("learned", cube),
        )
        self.engine.add_node(node)
        return node

    def _install_learned_cubes(self) -> None:
        """Materialise applicable learned cubes as constraint nodes.

        The nodes are added above the checker's per-bound savepoint, so goal
        retraction removes them together with the requirements; re-basing
        happens here by anchoring each cube's literal offsets at the current
        target frame.
        """
        context = self.learning
        store = context.estg
        store.last_fired = None
        installed: List[ImplicationNode] = []
        for cube in store.applicable_cubes(context.prop_fp):
            anchored = self._anchored_literals(cube)
            if anchored is None:
                continue
            installed.append(self._materialize_cube(anchored[0], anchored[1], cube))
        if installed:
            self.engine.enqueue(installed)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def _analyze_conflict(
        self, exc: ImplicationConflict, decision_root: Optional[RootCause] = None
    ) -> Optional[_SubtreeFacts]:
        """Trace a conflict to its external roots (None when unanalysable)."""
        context = self.learning
        store = context.estg
        fired = store.last_fired
        store.last_fired = None
        analysis = self.engine.analyze_conflict(exc, context.base_trail_mark)
        if analysis.opaque:
            return None
        roots = set(analysis.roots)
        if decision_root is not None:
            roots.add(decision_root)
        frames = [key[1] for key in analysis.cone]
        init_tainted = self.model.init_tainted
        facts = _SubtreeFacts(
            roots=roots,
            min_frame=min(frames, default=context.target_frame),
            max_frame=max(frames, default=0),
            base=any(key in init_tainted for key in analysis.cone),
        )
        if fired is not None:
            # The conflict came from an installed learned cube: fold the
            # cube's own provenance in, so facts derived from it inherit its
            # property dependence, frame anchoring and datapath origin.
            if fired.prop_fp is not None:
                facts.roots.add(RootCause("goal"))
            if fired.source == "datapath":
                facts.datapath = True
            if fired.shiftable:
                facts.min_frame = min(
                    facts.min_frame, context.target_frame + fired.min_position
                )
            else:
                facts.base = True
                facts.min_frame = min(facts.min_frame, fired.min_position)
                facts.max_frame = max(facts.max_frame, fired.max_position)
        return facts

    def _record_learned_cube(self, facts: _SubtreeFacts, depth: int) -> None:
        """Lift and store the resolved antecedents of a failed subtree."""
        context = self.learning
        decisions = [root for root in facts.roots if root.kind == "decision"]
        if not decisions or len(decisions) > context.max_cube_literals:
            return
        if any(root.kind in ("solver", "completion") for root in facts.roots):
            # Datapath solver choices are heuristic; their failures are not
            # proofs, so nothing may be learned from cones containing them.
            return
        merged: Dict[VarKey, BV3] = {}
        try:
            for root in decisions:
                current = merged.get(root.key)
                merged[root.key] = (
                    root.cube if current is None else current.intersect(root.cube)
                )
        except BV3Conflict:
            return  # contradictory literals: the cube is vacuous
        goal_seen = any(root.kind == "goal" for root in facts.roots)
        shiftable = not facts.base
        target = context.target_frame
        ordered = sorted(merged.items(), key=lambda item: (item[0][0].name, item[0][1]))
        if shiftable:
            literals = tuple(
                (net, frame - target, value) for (net, frame), value in ordered
            )
            min_position = min(
                facts.min_frame - target, min(offset for _, offset, _ in literals)
            )
            max_position = max(facts.max_frame - target, 0)
        else:
            literals = tuple((net, frame, value) for (net, frame), value in ordered)
            min_position = min(facts.min_frame, min(frame for _, frame, _ in literals))
            max_position = max(
                facts.max_frame, max(frame for _, frame, _ in literals)
            )
        cube = LearnedCube(
            literals=literals,
            shiftable=shiftable,
            min_position=min_position,
            max_position=max_position,
            prop_fp=context.prop_fp if goal_seen else None,
            source="datapath" if facts.datapath else "resolution",
        )
        if goal_seen and not shiftable:
            # The goal sits at this search's target frame, but an
            # init-tainted cone pins the cube to absolute frames: the fact
            # only holds for this exact (property, target) pair, so it must
            # never enter the persistent store (re-use at another target
            # would move the goal out from under the proof).  It is still a
            # theorem *within this search*, so queue it for the session.
            self._queue_session_cube(cube)
            return
        if context.estg.record_learned_cube(cube, lifted=len(merged) < depth):
            # New persistent cubes also prune the rest of *this* search.
            self._queue_session_cube(cube)

    def _queue_session_cube(self, cube: LearnedCube) -> None:
        """Anchor a freshly learned cube for installation mid-search."""
        anchored = self._anchored_literals(cube)
        if anchored is not None:
            self._pending_cubes.append((anchored[0], anchored[1], cube))

    def _flush_pending_cubes(self) -> None:
        """Install queued cubes as constraint nodes at the current level.

        Called between sibling branches (after the failed branch's level was
        popped), so the nodes land inside the enclosing decision level and
        are retired automatically when the search backtracks past it.  A
        cube learned in one subtree then prunes every later subtree in
        which its literals become entailed -- the within-search half of the
        conflict-learning win.
        """
        if not self._pending_cubes:
            return
        installed = [
            self._materialize_cube(keys, required, cube)
            for keys, required, cube in self._pending_cubes
        ]
        self._pending_cubes.clear()
        self.engine.enqueue(installed)

    # ------------------------------------------------------------------
    def _search(self, depth: int) -> Tuple[JustifyOutcome, Optional[_SubtreeFacts]]:
        if self.decisions > self.limits.max_decisions or depth > self.limits.max_depth:
            self._aborted = True
            return JustifyOutcome.ABORT, None
        if self.backtracks > self.limits.max_backtracks:
            self._aborted = True
            return JustifyOutcome.ABORT, None

        if self.estg is not None:
            if self.estg.is_illegal(self._state_cube(), context=self.model.num_frames):
                return JustifyOutcome.FAIL, None
            # Structurally illegal states are time-invariant facts (typically
            # seeded from local FSM extraction) and may be tested in *every*
            # frame of the unrolled model.
            if self.estg.structurally_illegal and self._hits_structurally_illegal():
                return JustifyOutcome.FAIL, None

        unjustified = self._unjustified()
        if not unjustified:
            return JustifyOutcome.SUCCESS, None

        # Decision candidates are the undecided *control* signals in the
        # backward cone of every unjustified gate (control or datapath).  The
        # paper restricts the branch-and-bound to these signals; the datapath
        # values themselves are never enumerated.
        candidates = find_decision_candidates(
            self.model,
            unjustified,
            limit=self.limits.decision_cut_limit,
            prove_mode=self.prove_mode,
            use_bias=self.use_bias,
            sampled_probabilities=self.sampled_probabilities,
        )
        if self.cube_hit_ordering and candidates:
            candidates = self._rank_by_cube_hits(candidates)
        if not candidates:
            # No control freedom remains: hand the residual requirements to
            # the modular arithmetic constraint solver (plus completion).
            feasible, leaf_facts = self._datapath_feasible()
            if feasible:
                return JustifyOutcome.SUCCESS, None
            self._learn_illegal_state()
            # Only a solver infeasibility *certificate* yields facts here;
            # budget-exhausted (Unknown) and completion-heuristic leaves
            # return None, which poisons every enclosing resolution so
            # nothing is ever learned from an unproven branch.
            return JustifyOutcome.FAIL, leaf_facts

        learning = self.learning
        candidate = candidates[0]
        first = candidate.preferred_first_value(self.prove_mode)
        facts: Optional[_SubtreeFacts] = (
            _SubtreeFacts(min_frame=self.model.num_frames) if learning is not None else None
        )
        own_roots: List[RootCause] = []
        for value in (first, 1 - first):
            self.decisions += 1
            root: Optional[RootCause] = None
            if learning is not None:
                learning.estg.last_fired = None
                root = candidate.root_cause(value)
                own_roots.append(root)
            self.engine.push_level()
            try:
                self.engine.assign(candidate.key, BV3.from_int(1, value), reason=root)
            except ImplicationConflict as exc:
                self.conflicts += 1
                if facts is not None:
                    branch = self._analyze_conflict(exc, root)
                    if branch is None:
                        facts = None
                    else:
                        facts.merge(branch)
                self.engine.pop_level()
                self.backtracks += 1
                if learning is not None:
                    self._flush_pending_cubes()
                continue
            outcome, branch = self._search(depth + 1)
            if outcome is JustifyOutcome.SUCCESS:
                return outcome, None
            self.engine.pop_level()
            self.backtracks += 1
            if outcome is JustifyOutcome.ABORT:
                return outcome, None
            if learning is not None:
                self._flush_pending_cubes()
            if facts is not None:
                if branch is None:
                    facts = None
                else:
                    facts.merge(branch)
        self._learn_illegal_state()
        if facts is not None:
            # Resolution over this node's decision: both values failed, so
            # the decision itself drops out of the learned antecedents.
            facts.roots.difference_update(own_roots)
            self._record_learned_cube(facts, depth)
        return JustifyOutcome.FAIL, facts

    def _rank_by_cube_hits(
        self, candidates: List[DecisionCandidate]
    ) -> List[DecisionCandidate]:
        """Stable re-rank: candidates named by hot learned cubes come first.

        A net that appears in frequently firing learned cubes is a proven
        conflict driver; deciding it early tends to re-fire those cubes high
        in the tree.  The sort is stable and keyed only on summed cube hit
        counts, so candidates untouched by any cube keep their bias order,
        and a store without fired cubes leaves the ranking unchanged.
        """
        store = self.learning.estg if self.learning is not None else self.estg
        if store is None or not store.learned_cubes:
            return candidates
        hits_by_net: Dict[str, int] = {}
        for cube in store.learned_cubes.values():
            if cube.hits <= 0:
                continue
            for net, _position, _value in cube.literals:
                name = getattr(net, "name", None) or str(net)
                hits_by_net[name] = hits_by_net.get(name, 0) + cube.hits
        if not hits_by_net:
            return candidates
        return sorted(
            candidates,
            key=lambda c: -hits_by_net.get(self.model.net_of(c.key).name, 0),
        )

    # ------------------------------------------------------------------
    # Control / datapath split
    # ------------------------------------------------------------------
    def _is_control_node(self, node: ImplicationNode) -> bool:
        cached = self._control_memo.get(id(node))
        if cached is not None:
            return cached[1]
        result = all(
            self.engine.assignment.width(key) == 1 for key in node.input_keys
        )
        self._control_memo[id(node)] = (node, result)
        return result

    def _control_unjustified(self) -> List[ImplicationNode]:
        return [
            node
            for node in self._unjustified()
            if self._is_control_node(node)
        ]

    def _datapath_unjustified(self) -> List[ImplicationNode]:
        return [
            node
            for node in self._unjustified()
            if not self._is_control_node(node)
        ]

    # ------------------------------------------------------------------
    # Datapath phase: modular arithmetic solving + bounded completion
    # ------------------------------------------------------------------
    def _certificate_facts(self, infeasible: Infeasible) -> Optional[_SubtreeFacts]:
        """Turn a solver infeasibility core into learnable subtree facts.

        The core's tags are implication-engine keys whose implied values
        clash; seeding conflict analysis with them walks the trail back to
        the external roots (decisions, goal, environment) that produced
        those values -- exactly the treatment of an implication conflict,
        so datapath refutations lift into cubes like control conflicts do.
        """
        if self.learning is None:
            return None
        keys = tuple(infeasible.core)
        if not keys:
            return None
        # No installed cube fired for this synthetic conflict; clear any
        # stale marker so its provenance is not wrongly inherited.
        self.learning.estg.last_fired = None
        conflict = ImplicationConflict("datapath infeasibility certificate", keys=keys)
        facts = self._analyze_conflict(conflict)
        if facts is not None:
            facts.datapath = True
        return facts

    def _datapath_feasible(self) -> Tuple[bool, Optional[_SubtreeFacts]]:
        """Solve the residual datapath requirements at a search leaf.

        Returns ``(feasible, facts)``.  ``facts`` is non-``None`` only when
        the modular solver *proved* the extracted system contradictory (an
        :class:`~repro.modsolver.result.Infeasible` certificate): those
        leaves are theorems and participate in conflict learning.  Leaves
        closed by budget exhaustion (``Unknown``), by a conflicting solver
        assignment or by the completion heuristic stay unlearnable.

        On failure the engine is rolled back to the leaf's entry savepoint:
        the completion phase opens one decision level per completed key, so
        a plain ``pop_level`` would leave those levels dangling and the
        enclosing decision's backtrack would undo the wrong level.
        """
        unjustified = self._datapath_unjustified()
        if not unjustified:
            return True, None

        arithmetic_nodes = [
            node
            for node in unjustified
            if isinstance(self._gate_of(node), (Adder, Subtractor, Multiplier, ShiftLeft, ShiftRight))
        ]
        if arithmetic_nodes:
            self.arithmetic_calls += 1
            extractor = DatapathConstraintExtractor(self.engine)
            problem = extractor.extract(arithmetic_nodes)
            if not problem.is_empty():
                store = self.learning.estg if self.learning is not None else None
                fingerprint = None
                if store is not None:
                    fingerprint = problem_fingerprint(problem)
                    memo = store.lookup_solver_core(fingerprint)
                    if memo is not None:
                        # Replay the memoised certificate.  The fingerprint
                        # pins the exact extracted problem, so solve() would
                        # deterministically return this same core; the leaf
                        # takes the identical FAIL path without paying for
                        # the solve.
                        self.solver_cores += 1
                        return False, self._certificate_facts(
                            Infeasible(self._core_keys(memo.core))
                        )
                result = problem.solve(budget=self.limits.arithmetic_budget)
                if isinstance(result, Infeasible):
                    self.solver_cores += 1
                    if store is not None and result.core:
                        store.record_solver_core(
                            fingerprint, self._core_names(result.core)
                        )
                    return False, self._certificate_facts(result)
                if not isinstance(result, Solution):
                    # Unknown: the budget gave out; prune locally only.
                    return False, None
                save = self.engine.savepoint()
                self.engine.push_level()
                try:
                    for key, value in result.assignment.items():
                        width = self.engine.assignment.width(key)
                        cube = BV3.from_int(width, value)
                        self.engine.assign(
                            key, cube, propagate=False,
                            reason=RootCause("solver", key, cube),
                        )
                    self.engine.propagate()
                except ImplicationConflict:
                    self.conflicts += 1
                    self.engine.rollback_to(save)
                    return False, None
                if self._complete_datapath():
                    return True, None
                self.engine.rollback_to(save)
                return False, None
        save = self.engine.savepoint()
        if self._complete_datapath():
            return True, None
        self.engine.rollback_to(save)
        return False, None

    @staticmethod
    def _core_names(core) -> Tuple[Tuple[str, int], ...]:
        """A certificate's engine keys as sorted, storable (name, frame)s."""
        return tuple(sorted((key[0].name, key[1]) for key in core))

    def _core_keys(self, names) -> frozenset:
        """Rebuild engine keys from stored (name, frame) pairs.

        When any name no longer resolves (a stale knowledge-base entry) the
        whole certificate is withheld from conflict analysis -- an
        under-seeded cone would miss antecedents and learn an over-general
        cube.  The empty set makes :meth:`_certificate_facts` learn nothing
        while the leaf still (correctly) fails.
        """
        circuit = self.model.circuit
        keys = []
        for name, frame in names:
            if not circuit.has_net(name):
                return frozenset()
            keys.append(self.model.key(circuit.net(name), frame))
        return frozenset(keys)

    def _complete_datapath(self) -> bool:
        """Greedy completion of the remaining undetermined datapath inputs.

        Repeatedly pick an unjustified node and try a small set of candidate
        completions (min / max of the current cube) for one of its
        undetermined free input keys.  Bounded by ``completion_attempts``.

        Datapath nodes are served first: while any datapath node is
        unjustified, every attempt goes to a datapath key, so the bounded
        budget is not burnt completing control-node keys that ride along in
        the unjustified set (those are handled once the datapath is clear,
        e.g. comparator outputs feeding control with no decision freedom
        left).
        """
        for _ in range(self.limits.completion_attempts):
            unjustified = self._unjustified()
            if not unjustified:
                return True
            datapath = [
                node for node in unjustified if not self._is_control_node(node)
            ]
            progressed = False
            for node in datapath if datapath else unjustified:
                key = self._pick_completion_key(node)
                if key is None:
                    continue
                if self._try_completions(key):
                    progressed = True
                    break
            if not progressed:
                return False
        return not self._unjustified()

    def _pick_completion_key(self, node: ImplicationNode) -> Optional[Hashable]:
        free_keys = []
        other_keys = []
        for key in node.input_keys:
            cube = self.engine.assignment.get(key)
            if cube.is_fully_known():
                continue
            if self.model.driver_node.get(key) is None:
                free_keys.append(key)
            else:
                other_keys.append(key)
        if free_keys:
            return free_keys[0]
        if other_keys:
            return other_keys[0]
        return None

    def _try_completions(self, key: Hashable) -> bool:
        cube = self.engine.assignment.get(key)
        width = self.engine.assignment.width(key)
        candidates = []
        for value in (cube.min_value(), cube.max_value()):
            if value not in candidates:
                candidates.append(value)
        for value in candidates:
            self.engine.push_level()
            try:
                completion = BV3.from_int(width, value)
                self.engine.assign(
                    key, completion, reason=RootCause("completion", key, completion)
                )
                return True
            except ImplicationConflict:
                self.conflicts += 1
                self.engine.pop_level()
        return False

    # ------------------------------------------------------------------
    # ESTG interaction
    # ------------------------------------------------------------------
    def _state_cube(self):
        registers = [
            (ff.q.name, self.model.value(ff.q, 0)) for ff in self.model.circuit.flip_flops
        ]
        registers = [(name, cube) for name, cube in registers if not cube.is_fully_unknown()]
        return ExtendedStateTransitionGraph.state_cube(registers)

    def _hits_structurally_illegal(self) -> bool:
        """True when any frame's implied register values fall inside a
        structurally illegal state cube."""
        for frame in range(self.model.num_frames):
            registers = [
                (ff.q.name, self.model.value(ff.q, frame))
                for ff in self.model.circuit.flip_flops
            ]
            registers = [
                (name, cube) for name, cube in registers if cube.is_fully_known()
            ]
            if not registers:
                continue
            state = ExtendedStateTransitionGraph.state_cube(registers)
            if self.estg.is_structurally_illegal(state):
                return True
        return False

    def _learn_illegal_state(self) -> None:
        # Only record states that are meaningfully constrained and fully
        # derived from implication of the (failed) requirements.
        if self.estg is None and self.learning is None:
            return
        state = self._state_cube()
        if not state or len(state) > 8:
            return
        if self.estg is not None:
            self.estg.record_illegal_state(state, context=self.model.num_frames)
        if self.learning is not None:
            # Queue the cube for the conflict re-check that guards its
            # promotion into the persistent store (see checker engine).
            self.learning.estg.record_state_candidate(state)

    @staticmethod
    def _gate_of(node: ImplicationNode):
        return node.tag[0] if isinstance(node.tag, tuple) else None
