"""State hashing, property digests and execution-loop detection.

The paper's future-work section names two algorithmic extensions: efficient
state hashing for the extended state transition graph, and detection of loops
in execution sequences.  Both are implemented here, together with the
structural property digests the persistent knowledge base keys facts by:

* :class:`StateHasher` canonicalises register-value snapshots (dictionaries or
  :data:`~repro.atpg.estg.StateCube` tuples) into stable 64-bit hashes, so
  visited-state sets can be kept as plain integer sets instead of storing the
  full cubes;
* :func:`property_digest` / :func:`property_search_digest` hash a property
  expression *structurally* (alpha-renamed: the digest depends only on the
  expression's shape and the free design-signal names it binds, never on
  Python ``repr`` details or object identity), so equivalent properties can
  share learned facts across processes;
* :func:`find_first_loop` / :func:`find_loops` locate revisited states in an
  execution sequence -- a witness or counterexample that revisits a state
  contains a removable loop, and a search that revisits a state has exhausted
  the new behaviour reachable along that branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.bitvector import BV3

#: Snapshot forms accepted by the hasher: name->value dicts or cube tuples.
StateLike = Union[Mapping[str, int], Sequence[Tuple[str, BV3]]]

#: 64-bit FNV-1a parameters (stable across processes, unlike ``hash``).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv1a(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def fnv1a(data: bytes) -> int:
    """Public 64-bit FNV-1a over ``data``.

    Every persistent fingerprint in the repo (state hashes, cube
    fingerprints, the knowledge-base keys in :mod:`repro.kb`) goes through
    this one function so the constants live in exactly one place.
    """
    return _fnv1a(data)


class StateHasher:
    """Canonical, process-stable hashing of register-state snapshots.

    Two snapshots hash equally exactly when they bind the same register names
    to the same values (unknown bits included, for cube snapshots).  The
    hasher is deliberately independent of Python's randomised ``hash`` so the
    values can be logged, compared across runs and stored in the ESTG.
    """

    def __init__(self, registers: Optional[Iterable[str]] = None):
        #: optional fixed register order; otherwise names are sorted per call.
        self.registers = list(registers) if registers is not None else None

    # ------------------------------------------------------------------
    def canonical_items(self, state: StateLike) -> List[Tuple[str, str]]:
        """The (name, printable value) pairs in canonical order."""
        if isinstance(state, Mapping):
            items = [(name, str(int(value))) for name, value in state.items()]
        else:
            items = [(name, str(cube)) for name, cube in state]
        if self.registers is not None:
            order = {name: index for index, name in enumerate(self.registers)}
            items = [item for item in items if item[0] in order]
            items.sort(key=lambda item: order[item[0]])
        else:
            items.sort(key=lambda item: item[0])
        return items

    def hash_state(self, state: StateLike) -> int:
        """A stable 64-bit hash of the snapshot."""
        payload = ";".join("%s=%s" % item for item in self.canonical_items(state))
        return _fnv1a(payload.encode("utf-8"))

    def equal(self, first: StateLike, second: StateLike) -> bool:
        """Exact comparison (used to confirm hash matches)."""
        return self.canonical_items(first) == self.canonical_items(second)


def hash_cube_literals(literals: Iterable[Tuple[str, int, BV3]]) -> int:
    """A stable 64-bit fingerprint of learned-cube literals.

    ``literals`` are (signal name, frame position, value cube) triples; the
    fingerprint is order-independent (literals are canonically sorted) and,
    like :meth:`StateHasher.hash_state`, independent of Python's randomised
    ``hash``, so the learned-cube stores of two processes deduplicate
    identically.
    """
    items = sorted(
        "%s@%d=%s" % (name, position, cube) for name, position, cube in literals
    )
    return _fnv1a(";".join(items).encode("utf-8"))


# ----------------------------------------------------------------------
# Structural property digests
# ----------------------------------------------------------------------
#: operators whose operand order does not change the property's meaning;
#: their operands are digest-sorted so ``a == b`` and ``b == a`` share facts.
_COMMUTATIVE_OPS = frozenset({"==", "!=", "&", "|", "^", "+", "*"})


def _canonical_expr(expr, normalize: bool) -> str:
    """Canonical serialisation of a property expression.

    The serialisation is *alpha-renamed* in the sense that it depends only on
    the expression's structure and the design-signal names it binds -- never
    on Python object identities, ``repr`` formatting, or term counts (the
    ``repr`` of ``OneHot``/``AtMostOneHot`` elides its terms, which is why
    fingerprints must not be built from ``repr``).  With ``normalize`` the
    operands of commutative/associative operators are sorted so logically
    identical spellings serialise identically; without it the spelling order
    is preserved (used for search-procedure-sensitive keys, where operand
    order changes monitor structure and hence decision order).
    """
    from repro.properties import spec

    if isinstance(expr, spec.Signal):
        return "s:%s" % expr.name
    if isinstance(expr, spec.Const):
        return "c:%d/%s" % (expr.value, expr.width)
    if isinstance(expr, spec.BinOp):
        parts = [_canonical_expr(expr.lhs, normalize), _canonical_expr(expr.rhs, normalize)]
        if normalize and expr.op in _COMMUTATIVE_OPS:
            parts.sort()
        return "b:%s(%s)" % (expr.op, ",".join(parts))
    if isinstance(expr, spec.Not):
        return "not(%s)" % _canonical_expr(expr.expr, normalize)
    if isinstance(expr, (spec.And, spec.Or, spec.OneHot, spec.AtMostOneHot)):
        tag = type(expr).__name__.lower()
        parts = [_canonical_expr(term, normalize) for term in expr.terms]
        if normalize:
            parts.sort()
        return "%s(%s)" % (tag, ",".join(parts))
    if isinstance(expr, spec.Implies):
        return "imp(%s,%s)" % (
            _canonical_expr(expr.antecedent, normalize),
            _canonical_expr(expr.consequent, normalize),
        )
    if isinstance(expr, spec.Delayed):
        return "d%d/%d(%s)" % (expr.cycles, expr.initial, _canonical_expr(expr.expr, normalize))
    # Forward compatibility: unknown node kinds fall back to their repr,
    # prefixed so they can never collide with the tagged forms above.
    return "x:%s:%r" % (type(expr).__name__, expr)


def property_digest(expr) -> int:
    """Stable 64-bit structural digest of a property expression.

    Commutative operators are operand-sorted, so equivalent spellings of the
    same property (``a == b`` vs ``b == a``, reordered conjunctions) digest
    identically and share *semantic* facts -- learned cubes are theorems
    about the design, valid for any property with the same meaning.  The
    digest is process-stable (pure FNV-1a over a canonical serialisation),
    which is what lets the knowledge base key facts by it on disk.
    """
    return _fnv1a(_canonical_expr(expr, normalize=True).encode("utf-8"))


def property_search_digest(expr) -> int:
    """Stable 64-bit digest of the *exact* spelling of a property expression.

    Unlike :func:`property_digest` this preserves operand order: the spelling
    determines the compiled monitor's structure and therefore the search's
    decision order, and procedure-sensitive facts (the proven-FAIL target
    memo, which must reproduce this search's abort behaviour exactly) may
    only be shared between searches over the identical monitor.
    """
    return _fnv1a(_canonical_expr(expr, normalize=False).encode("utf-8"))


@dataclass
class ExecutionLoop:
    """A detected loop: the state at ``start`` recurs at ``end``."""

    start: int
    end: int

    @property
    def length(self) -> int:
        """Number of cycles the loop spans."""
        return self.end - self.start


def find_first_loop(
    states: Sequence[StateLike], hasher: Optional[StateHasher] = None
) -> Optional[ExecutionLoop]:
    """The first revisit of an earlier state in the sequence, if any.

    Hash collisions are resolved by exact comparison, so a reported loop is
    always a true revisit.
    """
    hasher = hasher if hasher is not None else StateHasher()
    seen: Dict[int, List[int]] = {}
    for index, state in enumerate(states):
        code = hasher.hash_state(state)
        for earlier in seen.get(code, []):
            if hasher.equal(states[earlier], state):
                return ExecutionLoop(start=earlier, end=index)
        seen.setdefault(code, []).append(index)
    return None


def find_loops(
    states: Sequence[StateLike], hasher: Optional[StateHasher] = None
) -> List[ExecutionLoop]:
    """Every (earlier, later) pair of identical states, in discovery order."""
    hasher = hasher if hasher is not None else StateHasher()
    seen: Dict[int, List[int]] = {}
    loops: List[ExecutionLoop] = []
    for index, state in enumerate(states):
        code = hasher.hash_state(state)
        for earlier in seen.get(code, []):
            if hasher.equal(states[earlier], state):
                loops.append(ExecutionLoop(start=earlier, end=index))
        seen.setdefault(code, []).append(index)
    return loops


def loop_free_length(states: Sequence[StateLike], hasher: Optional[StateHasher] = None) -> int:
    """Length of the longest loop-free prefix of the sequence.

    A bounded search never needs to unroll further than the number of
    distinct reachable states, so this is also a cheap lower-bound estimate
    of the useful unrolling depth for witness generation.
    """
    loop = find_first_loop(states, hasher)
    return len(states) if loop is None else loop.end
