"""Extended State Transition Graph (ESTG) learning.

The paper records, in an extended state transition graph, abstract state
transitions that were found illegal or hard to reach during the search, and
reuses that information in subsequent ATPG runs to prune the decision space.

Our ESTG stores several kinds of facts:

* *illegal state cubes* -- partial states proven unreachable / unjustifiable;
  any search branch whose current state cube is covered by an illegal cube
  can be pruned immediately (the original per-run heuristic store);
* *transition records* -- (state, next-state, status) triples with a visit
  count, used for diagnostics and to bias away from hard-to-reach transitions;
* *learned cubes* (:class:`LearnedCube`) -- conflict-lifted combinations of
  search decisions (and re-check-verified illegal state cubes) proven
  contradictory by implication; they are sound theorems about the model and
  prune the search as constraint nodes;
* a *proven-FAIL target memo* -- (property, target frame) pairs whose whole
  justification search failed, so re-checking the same target at a deeper
  bound can skip the search entirely.

The heuristic stores persist across the per-target-frame runs of one
property check; the learned cubes and the target memo additionally persist
across *bounds*, *properties* and *checker instances* when the graph rides a
cached :class:`~repro.atpg.timeframe.UnrolledModel` (see
:mod:`repro.checker.incremental`), which is where the cross-bound speed-up
materialises.  With a knowledge base attached (:mod:`repro.kb`) they also
persist across *processes*: cubes and memos are flushed to a sqlite store on
checker teardown and merged back into the graph of any later model with the
same structural fingerprint (see ``docs/knowledge-base.md``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.atpg.statehash import hash_cube_literals
from repro.bitvector import BV3


#: An abstract state: a tuple of (register name, cube) pairs.
StateCube = Tuple[Tuple[str, BV3], ...]

#: One learned-cube literal: (net, frame position, required value cube).
#: For shiftable cubes the frame position is an offset relative to the
#: target frame (<= 0); for absolute cubes it is the frame index itself.
CubeLiteral = Tuple[object, int, BV3]


@dataclass
class TransitionRecord:
    """Statistics about one observed abstract state transition."""

    source: StateCube
    target: StateCube
    status: str
    visits: int = 1


@dataclass
class LearnedCube:
    """A conflict-lifted combination of assignments proven contradictory.

    The cube asserts that the conjunction of its literals (under the model's
    environment, and -- when ``prop_fp`` is set -- the property goal at the
    target frame) cannot be extended to a justification.  ``shiftable``
    cubes index their literals relative to the target frame and are *re-based*
    when the target moves: a fact derived at bound ``k`` whose implication
    cone stayed clear of the initial state holds at every later bound with
    all frames shifted by the bound difference.  Non-shiftable cubes (their
    derivation touched initial-state values) keep absolute frame indices.
    """

    literals: Tuple[CubeLiteral, ...]
    #: literal positions are target-relative offsets (True) or absolute
    #: frame indices (False).
    shiftable: bool
    #: lowest frame touched by the derivation cone, in the same indexing as
    #: the literals; anchoring the cube must keep it >= 0.
    min_position: int
    #: highest frame touched by the derivation cone (same indexing).
    max_position: int
    #: property fingerprint when the goal participated in the derivation;
    #: ``None`` marks a property-independent fact.
    prop_fp: Optional[object] = None
    #: how the cube was derived: "resolution" (subtree conflict resolution),
    #: "conflict" (single implication conflict), "state" (re-check-verified
    #: illegal state cube) or "datapath" (a modular-solver infeasibility
    #: certificate participated in the derivation).
    source: str = "resolution"
    hits: int = 0
    #: store fingerprint, set on recording (None for session-only cubes);
    #: lets a constraint-node fire refresh the cube's LRU position.
    fingerprint: Optional[int] = None
    #: True for cubes installed from the persistent knowledge base rather
    #: than learned in this process; their fires count as ``kb_hits``.
    from_kb: bool = False

    def anchor(self, target_frame: int) -> Optional[List[Tuple[object, int, BV3]]]:
        """The literals re-based to ``target_frame`` ((net, frame, cube)).

        Returns ``None`` when the cube does not apply at this target (its
        derivation cone would leave the unrolled window).
        """
        if self.shiftable:
            if target_frame + self.min_position < 0:
                return None
            return [
                (net, target_frame + offset, cube) for net, offset, cube in self.literals
            ]
        if self.max_position > target_frame:
            return None
        return [(net, position, cube) for net, position, cube in self.literals]


@dataclass
class SolverCore:
    """A memoised datapath-solver infeasibility certificate.

    Keyed (in :attr:`ExtendedStateTransitionGraph.solver_cores`) by the
    canonical fingerprint of the extracted :class:`~repro.modsolver.extract.ArithmeticProblem`
    (see :func:`repro.atpg.justify.problem_fingerprint`).  ``core`` holds
    the certificate's engine keys as ``(net name, frame)`` pairs -- the
    name-based form both serialises to the knowledge base and rebuilds
    into live keys on any model of the same circuit.
    """

    core: Tuple[Tuple[str, int], ...]
    hits: int = 0
    #: True for cores installed from the persistent knowledge base; their
    #: replays count as ``kb_hits``.
    from_kb: bool = False


@dataclass
class StateCubeCandidate:
    """An illegal-state cube awaiting its conflict re-check.

    Recorded by the justifier when a search subtree fails; promoted to a
    :class:`LearnedCube` only once asserting the (lifted) cube at frame 0
    re-derives a conflict by pure implication -- the soundness guard.
    ``failures`` counts re-checks that found no conflict; candidates go
    dormant after a few misses (deeper unrollings can change propagation
    reach, so one miss is not final) to keep the guard cheap.
    """

    state: StateCube
    failures: int = 0


class ExtendedStateTransitionGraph:
    """Learned illegal states, learned cubes and transition statistics.

    ``enabled`` gates the original heuristic stores (illegal states and
    transitions).  The learned-cube store and the proven-FAIL target memo
    are sound and controlled separately by the checker's ``learning``
    option, so a graph attached to a cached model can carry them even when
    the heuristic ESTG pruning is off.
    """

    def __init__(self, enabled: bool = True, max_entries: int = 4096,
                 max_learned_cubes: int = 256):
        self.enabled = enabled
        self.max_entries = max_entries
        #: learned (context, state-cube) pairs; see :meth:`record_illegal_state`.
        self.illegal_states: List[Tuple[Optional[object], StateCube]] = []
        #: States proven unreachable by *structural* analysis (e.g. local FSM
        #: extraction).  Unlike :attr:`illegal_states`, which records initial
        #: states from which one particular requirement could not be
        #: justified, these cubes are time-invariant facts about the design
        #: and may be used to prune the search in every time frame.
        self.structurally_illegal: List[StateCube] = []
        self.transitions: Dict[Tuple[StateCube, StateCube], TransitionRecord] = {}
        self.prune_hits = 0
        self.recorded_illegal = 0
        # --- persistent cross-bound learning ---------------------------
        self.max_learned_cubes = max_learned_cubes
        #: fingerprint -> learned cube, in recency order (LRU eviction).
        self.learned_cubes: "OrderedDict[int, LearnedCube]" = OrderedDict()
        #: (property fingerprint, target frame) pairs whose justification
        #: search was proven to FAIL on this model.
        self.proven_fail_targets: Set[Tuple[object, int]] = set()
        #: illegal-state cubes awaiting their re-check (fingerprint -> cand).
        self.state_candidates: "OrderedDict[int, StateCubeCandidate]" = OrderedDict()
        self.max_state_candidates = 64
        #: candidates stop re-checking after this many missed contexts.
        self.candidate_patience = 2
        self.cubes_learned = 0
        self.cubes_lifted = 0
        self.cube_hits = 0
        #: cubes whose derivation used a datapath infeasibility certificate,
        #: and the constraint-node fires attributable to them.
        self.datapath_cubes_learned = 0
        self.datapath_cube_hits = 0
        #: cubes merged in from the persistent knowledge base (see
        #: :mod:`repro.kb`) and the constraint-node fires / memo skips
        #: attributable to knowledge-base facts.
        self.kb_cubes_loaded = 0
        self.kb_hits = 0
        #: proven-FAIL memo entries that came from the knowledge base, so
        #: memo skips can be attributed to it.
        self.kb_fail_targets: Set[Tuple[object, int]] = set()
        #: the installed cube that raised the most recent conflict, consumed
        #: by conflict analysis so derived facts inherit its provenance.
        self.last_fired: Optional[LearnedCube] = None
        #: datapath infeasibility certificates memoised by canonical problem
        #: fingerprint; an LRU like the learned cubes.  A hit replays the
        #: stored certificate instead of re-running the modular solver.
        self.max_solver_cores = 128
        self.solver_cores: "OrderedDict[str, SolverCore]" = OrderedDict()
        self.solver_cores_learned = 0
        self.solver_core_hits = 0
        self.kb_solver_cores_loaded = 0

    # ------------------------------------------------------------------
    @staticmethod
    def state_cube(register_values: Sequence[Tuple[str, BV3]]) -> StateCube:
        """Normalise a state description into a hashable cube tuple."""
        return tuple(sorted(register_values, key=lambda item: item[0]))

    # ------------------------------------------------------------------
    def record_illegal_state(self, state: StateCube, context: Optional[object] = None) -> None:
        """Record a (partial) state from which a requirement could not be
        justified.

        ``context`` identifies the search the fact was learned in (the
        justifier passes the unrolling depth): a state that cannot justify a
        goal placed ``k`` frames away may well justify the same goal placed
        further out, so learned facts are only reused within the same context.
        Structural facts that hold in every context belong in
        :meth:`record_structurally_illegal_state` instead.
        """
        if not self.enabled or not state:
            return
        if len(self.illegal_states) >= self.max_entries:
            return
        entry = (context, state)
        if any(
            existing_context == context and self._covers(existing, state)
            for existing_context, existing in self.illegal_states
        ):
            return
        # Drop existing entries that the new, more general cube covers.
        self.illegal_states = [
            (existing_context, existing)
            for existing_context, existing in self.illegal_states
            if existing_context != context or not self._covers(state, existing)
        ]
        self.illegal_states.append(entry)
        self.recorded_illegal += 1

    def is_illegal(self, state: StateCube, context: Optional[object] = None) -> bool:
        """True when the state is covered by a cube learned in ``context``."""
        if not self.enabled:
            return False
        for illegal_context, illegal in self.illegal_states:
            if illegal_context == context and self._covers(illegal, state):
                self.prune_hits += 1
                return True
        return False

    def record_structurally_illegal_state(self, state: StateCube) -> None:
        """Record a state proven unreachable regardless of the property.

        These facts typically come from :func:`repro.analysis.fsm.extract_local_fsms`
        (the paper's Section 6 extension: local state transition graphs guide
        the justification away from illegal states).
        """
        if not self.enabled or not state:
            return
        if len(self.structurally_illegal) >= self.max_entries:
            return
        if any(self._covers(existing, state) for existing in self.structurally_illegal):
            return
        self.structurally_illegal = [
            existing
            for existing in self.structurally_illegal
            if not self._covers(state, existing)
        ]
        self.structurally_illegal.append(state)

    def is_structurally_illegal(self, state: StateCube) -> bool:
        """True when the state is covered by a structurally illegal cube."""
        if not self.enabled:
            return False
        for illegal in self.structurally_illegal:
            if self._covers(illegal, state):
                self.prune_hits += 1
                return True
        return False

    def record_transition(self, source: StateCube, target: StateCube, status: str) -> None:
        """Record an observed transition attempt and its outcome."""
        if not self.enabled:
            return
        key = (source, target)
        record = self.transitions.get(key)
        if record is None:
            if len(self.transitions) >= self.max_entries:
                return
            self.transitions[key] = TransitionRecord(source, target, status)
        else:
            record.visits += 1
            record.status = status

    # ------------------------------------------------------------------
    # Persistent cross-bound learning
    # ------------------------------------------------------------------
    def record_learned_cube(self, cube: LearnedCube, lifted: bool = False) -> bool:
        """Insert a learned cube, deduplicating by literal fingerprint.

        Returns ``True`` when the cube is new.  The store is an LRU bounded
        by ``max_learned_cubes``; re-recording (or hitting -- see
        :meth:`touch`) an existing cube refreshes its position.
        """
        # The shiftability/property scope is folded into the FNV-1a input
        # (not via built-in hash(), which is per-process randomized), so
        # fingerprints stay stable across processes like hash_cube_literals
        # promises.
        fingerprint = hash_cube_literals(
            [(self._literal_name(net), position, value)
             for net, position, value in cube.literals]
            + [("\x00scope=%r/%r" % (cube.shiftable, cube.prop_fp), 0, "")]
        )
        existing = self.learned_cubes.get(fingerprint)
        if existing is not None:
            self.learned_cubes.move_to_end(fingerprint)
            return False
        cube.fingerprint = fingerprint
        self.learned_cubes[fingerprint] = cube
        self.cubes_learned += 1
        if cube.source == "datapath":
            self.datapath_cubes_learned += 1
        if lifted:
            self.cubes_lifted += 1
        while len(self.learned_cubes) > self.max_learned_cubes:
            self.learned_cubes.popitem(last=False)
        return True

    def touch(self, cube: LearnedCube) -> None:
        """Refresh a stored cube's LRU position (called when it fires).

        A firing cube prunes exactly the re-derivation that would re-record
        it, so without this the hottest cubes would be the first evicted at
        capacity.
        """
        if cube.fingerprint is not None and cube.fingerprint in self.learned_cubes:
            self.learned_cubes.move_to_end(cube.fingerprint)

    def adopt_kb_cube(self, cube: LearnedCube, fingerprint: int) -> bool:
        """Install a cube loaded from the persistent knowledge base.

        Unlike :meth:`record_learned_cube` this neither counts as learning
        nor recomputes the fingerprint (the store saved the one computed at
        recording time, so re-derived cubes deduplicate against loaded
        ones).  Merge semantics: an already-present cube keeps its identity
        but takes the maximum of the two hit counters.  Returns ``True``
        when the cube was newly installed, ``False`` on merge or when the
        store is at capacity (the load never evicts live cubes).
        """
        existing = self.learned_cubes.get(fingerprint)
        if existing is not None:
            existing.hits = max(existing.hits, cube.hits)
            return False
        if len(self.learned_cubes) >= self.max_learned_cubes:
            return False
        cube.fingerprint = fingerprint
        cube.from_kb = True
        self.learned_cubes[fingerprint] = cube
        self.kb_cubes_loaded += 1
        return True

    def record_solver_core(
        self, fingerprint: str, core: Tuple[Tuple[str, int], ...]
    ) -> bool:
        """Memoise a fresh infeasibility certificate (LRU, deduplicated).

        Returns ``True`` when the fingerprint was new; re-recording an
        existing one only refreshes its LRU position.
        """
        existing = self.solver_cores.get(fingerprint)
        if existing is not None:
            self.solver_cores.move_to_end(fingerprint)
            return False
        self.solver_cores[fingerprint] = SolverCore(core=tuple(core))
        self.solver_cores_learned += 1
        while len(self.solver_cores) > self.max_solver_cores:
            self.solver_cores.popitem(last=False)
        return True

    def lookup_solver_core(self, fingerprint: str) -> Optional[SolverCore]:
        """The memoised certificate for a problem fingerprint, if any.

        A hit refreshes the entry's LRU position and books the hit counters
        (including knowledge-base attribution for loaded cores).
        """
        entry = self.solver_cores.get(fingerprint)
        if entry is None:
            return None
        self.solver_cores.move_to_end(fingerprint)
        entry.hits += 1
        self.solver_core_hits += 1
        if entry.from_kb:
            self.kb_hits += 1
        return entry

    def adopt_kb_solver_core(
        self, fingerprint: str, core: Tuple[Tuple[str, int], ...], hits: int = 0
    ) -> bool:
        """Install a solver core loaded from the persistent knowledge base.

        Mirrors :meth:`adopt_kb_cube`: no learning counters, merge keeps
        the maximum hit count, and the load never evicts live entries.
        """
        existing = self.solver_cores.get(fingerprint)
        if existing is not None:
            existing.hits = max(existing.hits, hits)
            return False
        if len(self.solver_cores) >= self.max_solver_cores:
            return False
        self.solver_cores[fingerprint] = SolverCore(
            core=tuple(core), hits=hits, from_kb=True
        )
        self.kb_solver_cores_loaded += 1
        return True

    def adopt_kb_fail(self, prop_fp: object, target_frame: int) -> bool:
        """Install a proven-FAIL memo entry loaded from the knowledge base.

        Returns ``True`` when the pair was new; loaded pairs are also
        remembered in :attr:`kb_fail_targets` so memo skips they cause are
        attributed to the knowledge base (``kb_hits``).
        """
        pair = (prop_fp, target_frame)
        self.kb_fail_targets.add(pair)
        if pair in self.proven_fail_targets:
            return False
        self.proven_fail_targets.add(pair)
        return True

    @staticmethod
    def _literal_name(net: object) -> str:
        name = getattr(net, "name", None)
        return name if name is not None else repr(net)

    def applicable_cubes(self, prop_fp: object) -> Iterator[LearnedCube]:
        """Learned cubes usable for a search of property ``prop_fp``.

        Property-independent cubes apply everywhere; property-tagged cubes
        only to the same property.  Anchoring to a target frame (and the
        window check) is the caller's job via :meth:`LearnedCube.anchor`.
        """
        for cube in self.learned_cubes.values():
            if cube.prop_fp is None or cube.prop_fp == prop_fp:
                yield cube

    def record_proven_fail(self, prop_fp: object, target_frame: int) -> None:
        """Memoise a justification search that FAILed (no abort)."""
        self.proven_fail_targets.add((prop_fp, target_frame))

    def is_proven_fail(self, prop_fp: object, target_frame: int) -> bool:
        """True when this (property, target) search is already proven FAIL."""
        return (prop_fp, target_frame) in self.proven_fail_targets

    # ------------------------------------------------------------------
    def record_state_candidate(self, state: StateCube) -> None:
        """Queue an illegal-state cube for its conflict re-check."""
        if not state:
            return
        fingerprint = hash_cube_literals(
            [(name, 0, cube) for name, cube in state]
        )
        candidate = self.state_candidates.get(fingerprint)
        if candidate is not None:
            self.state_candidates.move_to_end(fingerprint)
            return
        self.state_candidates[fingerprint] = StateCubeCandidate(state=state)
        while len(self.state_candidates) > self.max_state_candidates:
            self.state_candidates.popitem(last=False)

    def pending_state_candidates(self) -> List[StateCubeCandidate]:
        """Candidates still worth re-checking."""
        return [
            candidate
            for candidate in self.state_candidates.values()
            if candidate.failures < self.candidate_patience
        ]

    # ------------------------------------------------------------------
    @staticmethod
    def _covers(general: StateCube, specific: StateCube) -> bool:
        """True when every register constraint of ``general`` covers the
        corresponding constraint of ``specific``."""
        specific_map = dict(specific)
        for name, cube in general:
            other = specific_map.get(name)
            if other is None:
                return False
            if not cube.covers(other):
                return False
        return True

    def stats(self) -> Dict[str, int]:
        """Counters for reporting and the ablation bench."""
        return {
            "illegal_states": len(self.illegal_states),
            "structurally_illegal": len(self.structurally_illegal),
            "recorded_illegal": self.recorded_illegal,
            "transitions": len(self.transitions),
            "prune_hits": self.prune_hits,
            "learned_cubes": len(self.learned_cubes),
            "cubes_learned": self.cubes_learned,
            "cubes_lifted": self.cubes_lifted,
            "cube_hits": self.cube_hits,
            "datapath_cubes_learned": self.datapath_cubes_learned,
            "datapath_cube_hits": self.datapath_cube_hits,
            "proven_fail_targets": len(self.proven_fail_targets),
            "kb_cubes_loaded": self.kb_cubes_loaded,
            "kb_hits": self.kb_hits,
            "solver_cores": len(self.solver_cores),
            "solver_cores_learned": self.solver_cores_learned,
            "solver_core_hits": self.solver_core_hits,
            "kb_solver_cores_loaded": self.kb_solver_cores_loaded,
        }

    def __repr__(self) -> str:
        return "ExtendedStateTransitionGraph(%d illegal, %d learned cubes, %d transitions)" % (
            len(self.illegal_states),
            len(self.learned_cubes),
            len(self.transitions),
        )
