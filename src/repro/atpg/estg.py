"""Extended State Transition Graph (ESTG) learning.

The paper records, in an extended state transition graph, abstract state
transitions that were found illegal or hard to reach during the search, and
reuses that information in subsequent ATPG runs to prune the decision space.

Our ESTG stores two kinds of facts over the abstract state (the tuple of
control-register cubes):

* *illegal state cubes* -- partial states proven unreachable / unjustifiable;
  any search branch whose current state cube is covered by an illegal cube
  can be pruned immediately;
* *transition records* -- (state, next-state, status) triples with a visit
  count, used for diagnostics and to bias away from hard-to-reach transitions.

The graph persists across the per-target-frame runs of one property check
and across properties on the same circuit when the caller reuses it, which
is where the speed-up materialises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bitvector import BV3


#: An abstract state: a tuple of (register name, cube) pairs.
StateCube = Tuple[Tuple[str, BV3], ...]


@dataclass
class TransitionRecord:
    """Statistics about one observed abstract state transition."""

    source: StateCube
    target: StateCube
    status: str
    visits: int = 1


class ExtendedStateTransitionGraph:
    """Learned illegal states and transition statistics."""

    def __init__(self, enabled: bool = True, max_entries: int = 4096):
        self.enabled = enabled
        self.max_entries = max_entries
        #: learned (context, state-cube) pairs; see :meth:`record_illegal_state`.
        self.illegal_states: List[Tuple[Optional[object], StateCube]] = []
        #: States proven unreachable by *structural* analysis (e.g. local FSM
        #: extraction).  Unlike :attr:`illegal_states`, which records initial
        #: states from which one particular requirement could not be
        #: justified, these cubes are time-invariant facts about the design
        #: and may be used to prune the search in every time frame.
        self.structurally_illegal: List[StateCube] = []
        self.transitions: Dict[Tuple[StateCube, StateCube], TransitionRecord] = {}
        self.prune_hits = 0
        self.recorded_illegal = 0

    # ------------------------------------------------------------------
    @staticmethod
    def state_cube(register_values: Sequence[Tuple[str, BV3]]) -> StateCube:
        """Normalise a state description into a hashable cube tuple."""
        return tuple(sorted(register_values, key=lambda item: item[0]))

    # ------------------------------------------------------------------
    def record_illegal_state(self, state: StateCube, context: Optional[object] = None) -> None:
        """Record a (partial) state from which a requirement could not be
        justified.

        ``context`` identifies the search the fact was learned in (the
        justifier passes the unrolling depth): a state that cannot justify a
        goal placed ``k`` frames away may well justify the same goal placed
        further out, so learned facts are only reused within the same context.
        Structural facts that hold in every context belong in
        :meth:`record_structurally_illegal_state` instead.
        """
        if not self.enabled or not state:
            return
        if len(self.illegal_states) >= self.max_entries:
            return
        entry = (context, state)
        if any(
            existing_context == context and self._covers(existing, state)
            for existing_context, existing in self.illegal_states
        ):
            return
        # Drop existing entries that the new, more general cube covers.
        self.illegal_states = [
            (existing_context, existing)
            for existing_context, existing in self.illegal_states
            if existing_context != context or not self._covers(state, existing)
        ]
        self.illegal_states.append(entry)
        self.recorded_illegal += 1

    def is_illegal(self, state: StateCube, context: Optional[object] = None) -> bool:
        """True when the state is covered by a cube learned in ``context``."""
        if not self.enabled:
            return False
        for illegal_context, illegal in self.illegal_states:
            if illegal_context == context and self._covers(illegal, state):
                self.prune_hits += 1
                return True
        return False

    def record_structurally_illegal_state(self, state: StateCube) -> None:
        """Record a state proven unreachable regardless of the property.

        These facts typically come from :func:`repro.analysis.fsm.extract_local_fsms`
        (the paper's Section 6 extension: local state transition graphs guide
        the justification away from illegal states).
        """
        if not self.enabled or not state:
            return
        if len(self.structurally_illegal) >= self.max_entries:
            return
        if any(self._covers(existing, state) for existing in self.structurally_illegal):
            return
        self.structurally_illegal = [
            existing
            for existing in self.structurally_illegal
            if not self._covers(state, existing)
        ]
        self.structurally_illegal.append(state)

    def is_structurally_illegal(self, state: StateCube) -> bool:
        """True when the state is covered by a structurally illegal cube."""
        if not self.enabled:
            return False
        for illegal in self.structurally_illegal:
            if self._covers(illegal, state):
                self.prune_hits += 1
                return True
        return False

    def record_transition(self, source: StateCube, target: StateCube, status: str) -> None:
        """Record an observed transition attempt and its outcome."""
        if not self.enabled:
            return
        key = (source, target)
        record = self.transitions.get(key)
        if record is None:
            if len(self.transitions) >= self.max_entries:
                return
            self.transitions[key] = TransitionRecord(source, target, status)
        else:
            record.visits += 1
            record.status = status

    # ------------------------------------------------------------------
    @staticmethod
    def _covers(general: StateCube, specific: StateCube) -> bool:
        """True when every register constraint of ``general`` covers the
        corresponding constraint of ``specific``."""
        specific_map = dict(specific)
        for name, cube in general:
            other = specific_map.get(name)
            if other is None:
                return False
            if not cube.covers(other):
                return False
        return True

    def stats(self) -> Dict[str, int]:
        """Counters for reporting and the ablation bench."""
        return {
            "illegal_states": len(self.illegal_states),
            "structurally_illegal": len(self.structurally_illegal),
            "recorded_illegal": self.recorded_illegal,
            "transitions": len(self.transitions),
            "prune_hits": self.prune_hits,
        }

    def __repr__(self) -> str:
        return "ExtendedStateTransitionGraph(%d illegal, %d transitions)" % (
            len(self.illegal_states),
            len(self.transitions),
        )
