"""Legal-1 / legal-0 probabilities and the legal assignment bias.

These implement Definitions 1-2 and Rules 3-5 of the paper.  The legal-1
probability of a signal is the probability of it being assigned 1 among the
assignments that satisfy the (unjustified) output requirement of the gate it
feeds; the legal assignment bias ``max(p1, p0) / min(p1, p0)`` ranks decision
candidates so that the most constrained candidate is decided first.

:func:`estimate_signal_probabilities` complements the rule-based propagation
with *measured* signal probabilities: it mass-samples random stimulus on the
bit-parallel compiled kernel (:mod:`repro.sim`) and counts, per 1-bit net,
the fraction of lanes in which the net was 1.  The decision ranking
substitutes these estimates wherever the backward rules are uninformative --
keys they cannot reach, and keys whose rule-derived probability is the flat
0.5 default that word-level primitives contribute (see
:func:`repro.atpg.decisions.find_decision_candidates`).
"""

from __future__ import annotations

import random
from collections import deque
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.netlist.circuit import Circuit
from repro.netlist.gates import AndGate, NandGate, NorGate, NotGate, OrGate
from repro.netlist.mux import Mux
from repro.netlist.seq import DFF
from repro.properties.environment import Environment


def legal_one_probabilities(
    engine: ImplicationEngine,
    unjustified: Sequence[ImplicationNode],
    driver_node: Dict[Hashable, ImplicationNode],
    max_depth: int = 64,
) -> Dict[Hashable, float]:
    """Backward-propagate legal-1 probabilities from unjustified gates.

    Returns a mapping from 1-bit keys to their legal-1 probability.  Keys fed
    by several unjustified cones receive the average over their fanout
    branches (Rule 5), which we realise by averaging every probability
    contribution a key receives.
    """
    contributions: Dict[Hashable, List[float]] = {}
    queue = deque()

    for node in unjustified:
        for key in node.output_keys:
            required = engine.assignment.get(key)
            if required.width != 1 or required.bit(0) is None:
                continue
            # Rule 3: a required constant fixes the probability to 0 or 1.
            probability = 1.0 if required.bit(0) == 1 else 0.0
            queue.append((node, key, probability, 0))

    while queue:
        node, output_key, output_p1, depth = queue.popleft()
        if depth > max_depth:
            continue
        gate = node.tag[0] if isinstance(node.tag, tuple) else None
        input_p1 = _input_probability(gate, node, engine, output_p1)
        if input_p1 is None:
            continue
        for key in node.input_keys:
            if engine.assignment.width(key) != 1:
                continue
            current = engine.assignment.get(key)
            if current.bit(0) is not None:
                continue  # already decided; nothing to bias
            contributions.setdefault(key, []).append(input_p1)
            upstream = driver_node.get(key)
            if upstream is not None and upstream is not node:
                queue.append((upstream, key, input_p1, depth + 1))

    return {
        key: sum(values) / len(values) for key, values in contributions.items()
    }


def _input_probability(
    gate, node: ImplicationNode, engine: ImplicationEngine, p1: float
) -> Optional[float]:
    """Rule 4: the legal-1 probability of the unknown inputs of one gate."""
    unknown = 0
    for key in node.input_keys:
        if engine.assignment.width(key) == 1 and engine.assignment.get(key).bit(0) is None:
            unknown += 1
    if unknown == 0:
        return None
    return _gate_input_probability(gate, unknown, p1)


def _gate_input_probability(gate, n: int, p1: float) -> float:
    """The Rule 4 formula proper, shared verbatim by the interpreted walk
    and the compiled slot walk so both produce bit-identical floats."""
    p0 = 1.0 - p1
    if isinstance(gate, NotGate):
        return p0
    if isinstance(gate, (AndGate, NandGate)):
        if isinstance(gate, NandGate):
            p1, p0 = p0, p1
        # AND output 1 forces all inputs to 1; output 0 leaves 2^n - 1 legal
        # assignments of which 2^(n-1) - 1 set a given input to 1.
        ratio = ((1 << (n - 1)) - 1) / ((1 << n) - 1) if n >= 1 else 0.0
        return p1 * 1.0 + p0 * ratio
    if isinstance(gate, (OrGate, NorGate)):
        if isinstance(gate, NorGate):
            p1, p0 = p0, p1
        ratio = (1 << (n - 1)) / ((1 << n) - 1) if n >= 1 else 0.0
        return p1 * ratio + p0 * 0.0
    if isinstance(gate, (Mux, DFF)):
        return 0.5
    # Default for comparators, arithmetic and other word-level primitives.
    return 0.5


def legal_one_probabilities_compiled(
    engine: "ImplicationEngine",
    unjustified: Sequence[ImplicationNode],
    driver_slot: Sequence[Optional[ImplicationNode]],
    max_depth: int = 64,
) -> Dict[Hashable, float]:
    """Slot-indexed :func:`legal_one_probabilities` for the compiled kernel.

    Same BFS in the same order over the same nodes -- contributions are
    appended in an identical sequence and averaged with the identical
    ``sum(values) / len(values)`` expression, so the resulting floats (and
    therefore every downstream decision ranking) match the interpreted walk
    bit for bit.
    """
    assignment = engine.assignment
    known = assignment._known
    value = assignment._value
    widths = assignment._slot_widths
    key_of = assignment._key_of
    num_drivers = len(driver_slot)
    contributions: Dict[int, List[float]] = {}
    queue = deque()

    for node in unjustified:
        for slot in node.out_slots:
            if widths[slot] != 1 or not (known[slot] & 1):
                continue
            # Rule 3: a required constant fixes the probability to 0 or 1.
            probability = 1.0 if (value[slot] & 1) else 0.0
            queue.append((node, probability, 0))

    while queue:
        node, output_p1, depth = queue.popleft()
        if depth > max_depth:
            continue
        gate = node.tag[0] if isinstance(node.tag, tuple) else None
        unknown = 0
        for slot in node.in_slots:
            if widths[slot] == 1 and not (known[slot] & 1):
                unknown += 1
        if unknown == 0:
            continue
        input_p1 = _gate_input_probability(gate, unknown, output_p1)
        for slot in node.in_slots:
            if widths[slot] != 1 or (known[slot] & 1):
                continue  # wide, or already decided; nothing to bias
            contributions.setdefault(slot, []).append(input_p1)
            upstream = driver_slot[slot] if slot < num_drivers else None
            if upstream is not None and upstream is not node:
                queue.append((upstream, input_p1, depth + 1))

    return {
        key_of[slot]: sum(values) / len(values)
        for slot, values in contributions.items()
    }


def estimate_signal_probabilities(
    circuit: Circuit,
    environment: Optional[Environment] = None,
    initial_state: Optional[Mapping[str, int]] = None,
    num_vectors: int = 2048,
    cycles_per_run: int = 8,
    sim_width: int = 256,
    seed: int = 2000,
) -> Dict[str, float]:
    """Measured P(net = 1) for every 1-bit net, by kernel mass sampling.

    Simulates at least ``num_vectors`` environment-respecting random vectors
    on the bit-parallel kernel (``sim_width`` lanes at a time, in independent
    runs of ``cycles_per_run`` cycles from the initial state) and counts the
    per-lane 1s of every single-bit net.  Deterministic for a given seed.
    """
    from repro.sim import BitParallelSim, RandomLaneSampler, compile_circuit

    plan = compile_circuit(circuit)
    sampler = RandomLaneSampler(circuit, environment)
    rng = random.Random(seed)
    sim = BitParallelSim(plan, lanes=sim_width, initial_state=initial_state)
    sim.step(sampler.sample(rng, sim_width))
    # Undriven-and-unread nets never receive a value; everything else does.
    targets = [
        (net.name, plan.slot(net.name))
        for net in circuit.nets
        if net.width == 1 and sim.values[plan.slot(net.name)] is not None
    ]
    ones: Dict[str, int] = {name: 0 for name, _slot in targets}
    sampled = sim_width
    values = sim.values
    for name, slot in targets:
        ones[name] += values[slot][0].bit_count()
    cycle = 1
    while sampled < num_vectors:
        if cycle % cycles_per_run == 0:
            sim.reset(initial_state)
        sim.step(sampler.sample(rng, sim_width))
        cycle += 1
        sampled += sim_width
        values = sim.values
        for name, slot in targets:
            ones[name] += values[slot][0].bit_count()
    return {name: count / sampled for name, count in ones.items()}


def legal_assignment_bias(p1: float) -> Tuple[float, int]:
    """Definition 2: the bias value and the biased assignment.

    Returns ``(bias, value)`` where ``value`` is the more likely legal
    assignment (1 when ``p1 >= 0.5``).  The bias is always >= 1; a larger
    bias means the candidate is more strongly constrained toward ``value``.
    """
    epsilon = 1e-9
    if p1 >= 0.5:
        return (p1 / max(1.0 - p1, epsilon), 1)
    return ((1.0 - p1) / max(p1, epsilon), 0)
