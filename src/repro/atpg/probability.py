"""Legal-1 / legal-0 probabilities and the legal assignment bias.

These implement Definitions 1-2 and Rules 3-5 of the paper.  The legal-1
probability of a signal is the probability of it being assigned 1 among the
assignments that satisfy the (unjustified) output requirement of the gate it
feeds; the legal assignment bias ``max(p1, p0) / min(p1, p0)`` ranks decision
candidates so that the most constrained candidate is decided first.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.netlist.gates import AndGate, NandGate, NorGate, NotGate, OrGate
from repro.netlist.mux import Mux
from repro.netlist.seq import DFF


def legal_one_probabilities(
    engine: ImplicationEngine,
    unjustified: Sequence[ImplicationNode],
    driver_node: Dict[Hashable, ImplicationNode],
    max_depth: int = 64,
) -> Dict[Hashable, float]:
    """Backward-propagate legal-1 probabilities from unjustified gates.

    Returns a mapping from 1-bit keys to their legal-1 probability.  Keys fed
    by several unjustified cones receive the average over their fanout
    branches (Rule 5), which we realise by averaging every probability
    contribution a key receives.
    """
    contributions: Dict[Hashable, List[float]] = {}
    queue = deque()

    for node in unjustified:
        for key in node.output_keys:
            required = engine.assignment.get(key)
            if required.width != 1 or required.bit(0) is None:
                continue
            # Rule 3: a required constant fixes the probability to 0 or 1.
            probability = 1.0 if required.bit(0) == 1 else 0.0
            queue.append((node, key, probability, 0))

    while queue:
        node, output_key, output_p1, depth = queue.popleft()
        if depth > max_depth:
            continue
        gate = node.tag[0] if isinstance(node.tag, tuple) else None
        input_p1 = _input_probability(gate, node, engine, output_p1)
        if input_p1 is None:
            continue
        for key in node.input_keys:
            if engine.assignment.width(key) != 1:
                continue
            current = engine.assignment.get(key)
            if current.bit(0) is not None:
                continue  # already decided; nothing to bias
            contributions.setdefault(key, []).append(input_p1)
            upstream = driver_node.get(key)
            if upstream is not None and upstream is not node:
                queue.append((upstream, key, input_p1, depth + 1))

    return {
        key: sum(values) / len(values) for key, values in contributions.items()
    }


def _input_probability(
    gate, node: ImplicationNode, engine: ImplicationEngine, p1: float
) -> Optional[float]:
    """Rule 4: the legal-1 probability of the unknown inputs of one gate."""
    p0 = 1.0 - p1
    unknown = 0
    for key in node.input_keys:
        if engine.assignment.width(key) == 1 and engine.assignment.get(key).bit(0) is None:
            unknown += 1
    if unknown == 0:
        return None
    n = unknown

    if isinstance(gate, NotGate):
        return p0
    if isinstance(gate, (AndGate, NandGate)):
        if isinstance(gate, NandGate):
            p1, p0 = p0, p1
        # AND output 1 forces all inputs to 1; output 0 leaves 2^n - 1 legal
        # assignments of which 2^(n-1) - 1 set a given input to 1.
        ratio = ((1 << (n - 1)) - 1) / ((1 << n) - 1) if n >= 1 else 0.0
        return p1 * 1.0 + p0 * ratio
    if isinstance(gate, (OrGate, NorGate)):
        if isinstance(gate, NorGate):
            p1, p0 = p0, p1
        ratio = (1 << (n - 1)) / ((1 << n) - 1) if n >= 1 else 0.0
        return p1 * ratio + p0 * 0.0
    if isinstance(gate, (Mux, DFF)):
        return 0.5
    # Default for comparators, arithmetic and other word-level primitives.
    return 0.5


def legal_assignment_bias(p1: float) -> Tuple[float, int]:
    """Definition 2: the bias value and the biased assignment.

    Returns ``(bias, value)`` where ``value`` is the more likely legal
    assignment (1 when ``p1 >= 0.5``).  The bias is always >= 1; a larger
    bias means the candidate is more strongly constrained toward ``value``.
    """
    epsilon = 1e-9
    if p1 >= 0.5:
        return (p1 / max(1.0 - p1, epsilon), 1)
    return ((1.0 - p1) / max(p1, epsilon), 0)
