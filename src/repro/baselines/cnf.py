"""CNF formulas and Tseitin encoding helpers for the bit-level baseline."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class CNFFormula:
    """A CNF formula over positive integer variables (DIMACS-style literals)."""

    def __init__(self):
        self.num_variables = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_variable(self) -> int:
        """Allocate a fresh variable and return its (positive) literal."""
        self.num_variables += 1
        return self.num_variables

    def new_variables(self, count: int) -> List[int]:
        """Allocate ``count`` fresh variables."""
        return [self.new_variable() for _ in range(count)]

    def add_clause(self, *literals: int) -> None:
        """Add one clause (a disjunction of non-zero literals)."""
        if not literals:
            raise ValueError("empty clause added (formula is trivially UNSAT)")
        if any(lit == 0 for lit in literals):
            raise ValueError("0 is not a valid literal")
        self.clauses.append(tuple(literals))

    def add_unit(self, literal: int) -> None:
        """Constrain a single literal to be true."""
        self.add_clause(literal)

    def __len__(self) -> int:
        return len(self.clauses)

    def memory_estimate_bytes(self) -> int:
        """Rough memory footprint of the clause database (for the comparison
        against the ATPG engine's memory usage)."""
        return sum(8 * (len(clause) + 2) for clause in self.clauses)

    def __repr__(self) -> str:
        return "CNFFormula(%d vars, %d clauses)" % (self.num_variables, len(self.clauses))


class TseitinEncoder:
    """Gate-level Tseitin encodings into a :class:`CNFFormula`."""

    def __init__(self, formula: Optional[CNFFormula] = None):
        self.formula = formula if formula is not None else CNFFormula()
        self._true_literal: Optional[int] = None

    # ------------------------------------------------------------------
    def constant(self, value: bool) -> int:
        """A literal that is constrained to the given Boolean constant."""
        if self._true_literal is None:
            self._true_literal = self.formula.new_variable()
            self.formula.add_unit(self._true_literal)
        return self._true_literal if value else -self._true_literal

    def and_gate(self, inputs: Sequence[int]) -> int:
        """``out <-> AND(inputs)``."""
        out = self.formula.new_variable()
        for lit in inputs:
            self.formula.add_clause(-out, lit)
        self.formula.add_clause(out, *[-lit for lit in inputs])
        return out

    def or_gate(self, inputs: Sequence[int]) -> int:
        """``out <-> OR(inputs)``."""
        out = self.formula.new_variable()
        for lit in inputs:
            self.formula.add_clause(out, -lit)
        self.formula.add_clause(-out, *list(inputs))
        return out

    def xor_gate(self, a: int, b: int) -> int:
        """``out <-> a XOR b``."""
        out = self.formula.new_variable()
        self.formula.add_clause(-out, a, b)
        self.formula.add_clause(-out, -a, -b)
        self.formula.add_clause(out, -a, b)
        self.formula.add_clause(out, a, -b)
        return out

    def not_gate(self, a: int) -> int:
        """Negation is free: just flip the literal."""
        return -a

    def equal_gate(self, a: int, b: int) -> int:
        """``out <-> (a == b)``."""
        return self.not_gate(self.xor_gate(a, b))

    def mux_gate(self, select: int, when_zero: int, when_one: int) -> int:
        """``out <-> select ? when_one : when_zero``."""
        out = self.formula.new_variable()
        self.formula.add_clause(-out, -select, when_one)
        self.formula.add_clause(-out, select, when_zero)
        self.formula.add_clause(out, -select, -when_one)
        self.formula.add_clause(out, select, -when_zero)
        return out

    def full_adder(self, a: int, b: int, carry_in: int) -> Tuple[int, int]:
        """Returns ``(sum, carry_out)`` literals of a full adder."""
        axb = self.xor_gate(a, b)
        total = self.xor_gate(axb, carry_in)
        carry = self.or_gate(
            [self.and_gate([a, b]), self.and_gate([axb, carry_in])]
        )
        return total, carry

    def assert_equal(self, a: int, b: int) -> None:
        """Constrain two literals to be equal."""
        self.formula.add_clause(-a, b)
        self.formula.add_clause(a, -b)

    # ------------------------------------------------------------------
    # Word-level helpers (little-endian literal vectors)
    # ------------------------------------------------------------------
    def word_and(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.and_gate([x, y]) for x, y in zip(a, b)]

    def word_or(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.or_gate([x, y]) for x, y in zip(a, b)]

    def word_xor(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        return [self.xor_gate(x, y) for x, y in zip(a, b)]

    def word_not(self, a: Sequence[int]) -> List[int]:
        return [self.not_gate(x) for x in a]

    def word_constant(self, value: int, width: int) -> List[int]:
        return [self.constant(bool((value >> i) & 1)) for i in range(width)]

    def word_add(self, a: Sequence[int], b: Sequence[int], carry_in: Optional[int] = None) -> Tuple[List[int], int]:
        """Ripple-carry addition; returns (sum bits, carry out)."""
        carry = carry_in if carry_in is not None else self.constant(False)
        out: List[int] = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def word_sub(self, a: Sequence[int], b: Sequence[int]) -> List[int]:
        """``a - b`` as ``a + ~b + 1``."""
        result, _ = self.word_add(a, self.word_not(b), carry_in=self.constant(True))
        return result

    def word_mul(self, a: Sequence[int], b: Sequence[int], out_width: int) -> List[int]:
        """Shift-and-add multiplication truncated to ``out_width`` bits."""
        accumulator = self.word_constant(0, out_width)
        for shift, control in enumerate(b):
            if shift >= out_width:
                break
            shifted = self.word_constant(0, shift) + list(a)
            shifted = shifted[:out_width]
            while len(shifted) < out_width:
                shifted.append(self.constant(False))
            gated = [self.and_gate([bit, control]) for bit in shifted]
            accumulator, _ = self.word_add(accumulator, gated)
        return accumulator

    def word_equal(self, a: Sequence[int], b: Sequence[int]) -> int:
        bits = [self.equal_gate(x, y) for x, y in zip(a, b)]
        return self.and_gate(bits) if len(bits) > 1 else bits[0]

    def word_less_than(self, a: Sequence[int], b: Sequence[int]) -> int:
        """Unsigned ``a < b`` via subtraction borrow."""
        # a < b  <=>  carry out of (a + ~b + 1) is 0.
        _, carry = self.word_add(a, self.word_not(b), carry_in=self.constant(True))
        return self.not_gate(carry)

    def word_mux(self, select: int, when_zero: Sequence[int], when_one: Sequence[int]) -> List[int]:
        return [self.mux_gate(select, z, o) for z, o in zip(when_zero, when_one)]

    def word_assert_equal(self, a: Sequence[int], b: Sequence[int]) -> None:
        for x, y in zip(a, b):
            self.assert_equal(x, y)
