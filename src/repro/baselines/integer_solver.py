"""A rational (non-modular) linear solver -- the false-negative baseline.

Section 4 of the paper argues that solving datapath constraints over the
integers / rationals instead of modulo ``2**n`` misses solutions that only
exist because of bit-vector wrap-around, producing *false negatives* (missed
counterexamples).  This baseline solves ``A·x = b`` by fraction-exact
Gaussian elimination and only accepts solutions whose components are integers
inside the representable range; the false-negative benchmark counts how often
it disagrees with the modular solver.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Hashable, List, Optional, Sequence

from repro.modsolver.linear import ModularLinearSystem


class RationalLinearSolver:
    """Solves linear systems over the rationals and filters to in-range integers."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width

    # ------------------------------------------------------------------
    def solve_system(self, system: ModularLinearSystem) -> Optional[Dict[Hashable, int]]:
        """Solve the same system the modular solver would, non-modularly.

        Returns an assignment only when the *rational* solution is unique,
        integral and within ``[0, 2**width)`` for every variable -- the
        behaviour of a solver that ignores modulation.  Returns ``None``
        otherwise (which is where the false negatives come from).
        """
        variables = list(system.variables)
        rows = [
            [Fraction(c.coefficients.get(var, 0)) for var in variables]
            for c in system.constraints
        ]
        rhs = [Fraction(c.rhs) for c in system.constraints]
        solution = self._gaussian_elimination(rows, rhs, len(variables))
        if solution is None:
            return None
        result: Dict[Hashable, int] = {}
        for var, value in zip(variables, solution):
            if value.denominator != 1:
                return None
            integer = int(value)
            if not 0 <= integer < (1 << self.width):
                return None
            result[var] = integer
        return result

    def solve_matrix(
        self, rows: Sequence[Sequence[int]], rhs: Sequence[int]
    ) -> Optional[List[int]]:
        """Matrix-form convenience wrapper mirroring the modular solver.

        The coefficients are used *as given* (signed, un-modulated) -- that is
        the whole point of this baseline.  Routing them through the modular
        system first would silently reduce them modulo ``2**width`` and make
        the baseline behave like the modular solver.
        """
        if not rows:
            return []
        num_vars = len(rows[0])
        fraction_rows = [[Fraction(value) for value in row] for row in rows]
        fraction_rhs = [Fraction(value) for value in rhs]
        solution = self._gaussian_elimination(fraction_rows, fraction_rhs, num_vars)
        if solution is None:
            return None
        result: List[int] = []
        for value in solution:
            if value.denominator != 1:
                return None
            integer = int(value)
            if not 0 <= integer < (1 << self.width):
                return None
            result.append(integer)
        return result

    # ------------------------------------------------------------------
    @staticmethod
    def _gaussian_elimination(
        rows: List[List[Fraction]], rhs: List[Fraction], num_vars: int
    ) -> Optional[List[Fraction]]:
        """Exact Gaussian elimination; ``None`` when there is no unique,
        consistent solution."""
        matrix = [row + [b] for row, b in zip(rows, rhs)]
        pivot_row = 0
        pivot_columns: List[int] = []
        for col in range(num_vars):
            pivot = None
            for r in range(pivot_row, len(matrix)):
                if matrix[r][col] != 0:
                    pivot = r
                    break
            if pivot is None:
                continue
            matrix[pivot_row], matrix[pivot] = matrix[pivot], matrix[pivot_row]
            factor = matrix[pivot_row][col]
            matrix[pivot_row] = [value / factor for value in matrix[pivot_row]]
            for r in range(len(matrix)):
                if r != pivot_row and matrix[r][col] != 0:
                    scale = matrix[r][col]
                    matrix[r] = [
                        value - scale * pivot_value
                        for value, pivot_value in zip(matrix[r], matrix[pivot_row])
                    ]
            pivot_columns.append(col)
            pivot_row += 1
        # Inconsistent rows => no solution at all.
        for r in range(pivot_row, len(matrix)):
            if matrix[r][num_vars] != 0 and all(v == 0 for v in matrix[r][:num_vars]):
                return None
        # Under-determined systems: fix the free variables at zero (a solver
        # that reasons integrally would have to pick *some* value; zero keeps
        # the comparison deterministic).
        solution = [Fraction(0)] * num_vars
        for row_index, col in enumerate(pivot_columns):
            value = matrix[row_index][num_vars]
            for other in range(col + 1, num_vars):
                value -= matrix[row_index][other] * solution[other]
            solution[col] = value
        return solution
