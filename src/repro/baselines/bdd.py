"""A reduced ordered binary decision diagram (ROBDD) package.

The paper positions its word-level ATPG approach against BDD-based symbolic
model checking (McMillan's SMV, VIS): BDDs can represent huge state sets
compactly, but their size -- and therefore the memory footprint of the model
checker -- can explode with the number of registers.  To make that comparison
measurable inside this reproduction, this module implements a small but
complete ROBDD manager:

* hash-consed nodes with a unique table (canonical form),
* the ``ite`` (if-then-else) operator with a computed table, from which all
  Boolean connectives are derived,
* existential quantification over variable sets (for image computation),
* cofactor/restrict and variable renaming (next-state to current-state),
* node counting and peak-size tracking, the statistics the scalability
  benchmark reports.

Variables are identified by integer *levels*: smaller level = closer to the
root.  The manager never garbage-collects; peak node count is exactly what
the benchmark wants to observe.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

#: Node indices of the two terminal nodes.
FALSE = 0
TRUE = 1


class BddLimitExceeded(RuntimeError):
    """Raised when the manager grows beyond its configured node budget."""


class BddManager:
    """Hash-consed ROBDD node store and Boolean operations.

    ``max_nodes`` bounds the total number of decision nodes ever allocated;
    exceeding it raises :class:`BddLimitExceeded`, which the symbolic checker
    turns into an ABORTED verdict (the "memory explosion" outcome the
    scalability benchmark is designed to expose).
    """

    def __init__(self, num_variables: int = 0, max_nodes: Optional[int] = None):
        #: node table: index -> (level, low, high); entries 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._quantify_cache: Dict[Tuple[int, FrozenSet[int]], int] = {}
        self._rename_cache: Dict[Tuple[int, Tuple[Tuple[int, int], ...]], int] = {}
        self.num_variables = num_variables
        self.max_nodes = max_nodes

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def new_variable(self) -> int:
        """Allocate a fresh variable level and return its node."""
        level = self.num_variables
        self.num_variables += 1
        return self.variable(level)

    def variable(self, level: int) -> int:
        """The BDD of the single variable at ``level``."""
        if level < 0:
            raise ValueError("variable level must be non-negative")
        self.num_variables = max(self.num_variables, level + 1)
        return self._make_node(level, FALSE, TRUE)

    def _make_node(self, level: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (level, low, high)
        existing = self._unique.get(key)
        if existing is not None:
            return existing
        if self.max_nodes is not None and len(self._nodes) - 2 >= self.max_nodes:
            raise BddLimitExceeded(
                "BDD grew beyond %d nodes" % (self.max_nodes,)
            )
        index = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = index
        return index

    def level_of(self, node: int) -> int:
        """The decision level of a node (terminals sort below everything)."""
        if node in (FALSE, TRUE):
            return self.num_variables + 1
        return self._nodes[node][0]

    def cofactors(self, node: int, level: int) -> Tuple[int, int]:
        """(low, high) cofactors of ``node`` with respect to ``level``."""
        if node in (FALSE, TRUE) or self._nodes[node][0] != level:
            return node, node
        _, low, high = self._nodes[node]
        return low, high

    # ------------------------------------------------------------------
    # Core operator
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h``."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))
        f_low, f_high = self.cofactors(f, level)
        g_low, g_high = self.cofactors(g, level)
        h_low, h_high = self.cofactors(h, level)
        low = self.ite(f_low, g_low, h_low)
        high = self.ite(f_high, g_high, h_high)
        result = self._make_node(level, low, high)
        self._ite_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------
    def not_(self, f: int) -> int:
        """Negation."""
        return self.ite(f, FALSE, TRUE)

    def and_(self, f: int, g: int) -> int:
        """Conjunction."""
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        """Disjunction."""
        return self.ite(f, TRUE, g)

    def xor(self, f: int, g: int) -> int:
        """Exclusive or."""
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        """Equivalence."""
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        """Implication ``f -> g``."""
        return self.ite(f, g, TRUE)

    def and_all(self, terms: Iterable[int]) -> int:
        """Conjunction of many terms."""
        result = TRUE
        for term in terms:
            result = self.and_(result, term)
            if result == FALSE:
                return FALSE
        return result

    def or_all(self, terms: Iterable[int]) -> int:
        """Disjunction of many terms."""
        result = FALSE
        for term in terms:
            result = self.or_(result, term)
            if result == TRUE:
                return TRUE
        return result

    def constant(self, value: bool) -> int:
        """The terminal node for a Boolean constant."""
        return TRUE if value else FALSE

    # ------------------------------------------------------------------
    # Quantification, restriction, renaming
    # ------------------------------------------------------------------
    def restrict(self, f: int, level: int, value: bool) -> int:
        """Cofactor of ``f`` with the variable at ``level`` fixed."""
        if f in (FALSE, TRUE):
            return f
        node_level, low, high = self._nodes[f]
        if node_level > level:
            return f
        if node_level == level:
            return high if value else low
        new_low = self.restrict(low, level, value)
        new_high = self.restrict(high, level, value)
        return self._make_node(node_level, new_low, new_high)

    def exists(self, f: int, levels: Iterable[int]) -> int:
        """Existential quantification over the given variable levels."""
        level_set = frozenset(levels)
        if not level_set:
            return f
        return self._exists(f, level_set)

    def _exists(self, f: int, levels: FrozenSet[int]) -> int:
        if f in (FALSE, TRUE):
            return f
        key = (f, levels)
        cached = self._quantify_cache.get(key)
        if cached is not None:
            return cached
        node_level, low, high = self._nodes[f]
        low_result = self._exists(low, levels)
        high_result = self._exists(high, levels)
        if node_level in levels:
            result = self.or_(low_result, high_result)
        else:
            result = self._make_node(node_level, low_result, high_result)
        self._quantify_cache[key] = result
        return result

    def rename(self, f: int, mapping: Dict[int, int]) -> int:
        """Rename variable levels according to ``mapping``.

        The mapping must be monotone (it may not change the relative order of
        the variables appearing in ``f``); the next-state to current-state
        renaming used by image computation satisfies this when the two rails
        are interleaved.
        """
        if not mapping:
            return f
        items = tuple(sorted(mapping.items()))
        for (src_a, dst_a), (src_b, dst_b) in zip(items, items[1:]):
            if not (src_a < src_b and dst_a < dst_b):
                raise ValueError("rename mapping must preserve variable order")
        return self._rename(f, items)

    def _rename(self, f: int, items: Tuple[Tuple[int, int], ...]) -> int:
        if f in (FALSE, TRUE):
            return f
        key = (f, items)
        cached = self._rename_cache.get(key)
        if cached is not None:
            return cached
        node_level, low, high = self._nodes[f]
        new_level = dict(items).get(node_level, node_level)
        result = self._make_node(
            new_level, self._rename(low, items), self._rename(high, items)
        )
        self._rename_cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def node_count(self, f: int) -> int:
        """Number of distinct decision nodes reachable from ``f``."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in (FALSE, TRUE) or node in seen:
                continue
            seen.add(node)
            _, low, high = self._nodes[node]
            stack.extend((low, high))
        return len(seen)

    @property
    def total_nodes(self) -> int:
        """Total nodes ever created (the peak memory proxy)."""
        return len(self._nodes) - 2

    def is_tautology(self, f: int) -> bool:
        """True when ``f`` is the constant TRUE."""
        return f == TRUE

    def is_contradiction(self, f: int) -> bool:
        """True when ``f`` is the constant FALSE."""
        return f == FALSE

    def satisfy_one(self, f: int) -> Optional[Dict[int, bool]]:
        """One satisfying assignment (level -> value), or ``None``."""
        if f == FALSE:
            return None
        assignment: Dict[int, bool] = {}
        node = f
        while node != TRUE:
            level, low, high = self._nodes[node]
            if high != FALSE:
                assignment[level] = True
                node = high
            else:
                assignment[level] = False
                node = low
        return assignment

    def count_solutions(self, f: int, num_variables: Optional[int] = None) -> int:
        """Number of satisfying assignments over ``num_variables`` variables."""
        total_vars = num_variables if num_variables is not None else self.num_variables
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1 << total_vars
            cached = cache.get(node)
            if cached is not None:
                return cached
            level, low, high = self._nodes[node]
            # Each cofactor's count already assumes all variables are free;
            # fixing this node's variable halves each contribution.
            result = (count(low) + count(high)) // 2
            cache[node] = result
            return result

        return count(f)

    def __repr__(self) -> str:
        return "BddManager(%d variables, %d nodes)" % (self.num_variables, self.total_nodes)
