"""A SAT-based bounded model checker (bit-level baseline).

This follows the approach the paper cites as the SAT alternative (Biere et
al., DAC 1999): unroll the design over ``k`` frames, bit-blast it into CNF,
constrain the negated property at the last frame and call a SAT solver.  It
is used by the scalability benchmark to compare clause-database size / memory
and run time against the word-level ATPG engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.baselines.bitblast import CircuitBitBlaster
from repro.baselines.dpll import DPLLSolver, SATResult
from repro.checker.result import CheckStatus
from repro.checker.stats import ResourceMeter
from repro.netlist.circuit import Circuit
from repro.properties.convert import PropertyCompiler
from repro.properties.environment import Environment
from repro.properties.spec import Assertion, OneHot, Property, Signal


@dataclass
class SATCheckResult:
    """Verdict and cost statistics of the SAT baseline."""

    prop: Property
    status: CheckStatus
    frames_explored: int
    cpu_seconds: float = 0.0
    peak_memory_mb: float = 0.0
    clauses: int = 0
    variables: int = 0
    decisions: int = 0
    trace_inputs: Optional[List[Dict[str, int]]] = None
    #: compiled property monitor net name / goal value, so callers can replay
    #: ``trace_inputs`` through the concrete simulator and validate the trace.
    monitor_name: Optional[str] = None
    goal_value: int = 0


class SATBoundedChecker:
    """Bounded model checking via bit-blasting + DPLL."""

    def __init__(
        self,
        circuit: Circuit,
        environment: Optional[Environment] = None,
        initial_state: Optional[Mapping[str, int]] = None,
        max_frames: int = 8,
        max_decisions: int = 2_000_000,
    ):
        circuit.validate()
        self.circuit = circuit
        self.environment = environment if environment is not None else Environment()
        self.initial_state = dict(initial_state or {})
        self.max_frames = max_frames
        self.max_decisions = max_decisions
        self.compiler = PropertyCompiler(circuit)
        self._assumption_nets = [
            self.compiler.compile_condition(expr, name="sat_assume")
            for expr in self.environment.assumptions
        ]
        self._one_hot_nets = [
            self.compiler.compile_condition(
                OneHot(*[Signal(name) for name in group]), name="sat_onehot"
            )
            for group in self.environment.one_hot_groups
        ]

    # ------------------------------------------------------------------
    def check(self, prop: Property, max_frames: Optional[int] = None) -> SATCheckResult:
        """Check one property with increasing unrolling depth."""
        compiled = self.compiler.compile(prop)
        bound = max_frames if max_frames is not None else self.max_frames
        total_clauses = 0
        total_variables = 0
        total_decisions = 0
        trace_inputs: Optional[List[Dict[str, int]]] = None
        status = CheckStatus.HOLDS if isinstance(prop, Assertion) else CheckStatus.WITNESS_NOT_FOUND
        frames_explored = 0

        with ResourceMeter() as meter:
            for target_frame in range(compiled.warmup_frames, bound):
                frames_explored = target_frame + 1
                blaster = CircuitBitBlaster(
                    self.circuit, target_frame + 1, initial_state=self.initial_state
                )
                self._constrain_environment(blaster, target_frame + 1)
                blaster.constrain_bit(compiled.monitor, target_frame, compiled.goal_value)

                solver = DPLLSolver(blaster.formula, max_decisions=self.max_decisions)
                answer = solver.solve()
                total_clauses = max(total_clauses, len(blaster.formula))
                total_variables = max(total_variables, blaster.formula.num_variables)
                total_decisions += solver.stats.decisions

                if answer is SATResult.SAT:
                    trace_inputs = self._extract_inputs(blaster, solver, target_frame + 1)
                    status = (
                        CheckStatus.FAILS
                        if isinstance(prop, Assertion)
                        else CheckStatus.WITNESS_FOUND
                    )
                    break
                if answer is SATResult.UNKNOWN:
                    status = CheckStatus.ABORTED
                    break

        return SATCheckResult(
            prop=prop,
            status=status,
            frames_explored=frames_explored,
            cpu_seconds=meter.elapsed_seconds,
            peak_memory_mb=meter.peak_memory_mb,
            clauses=total_clauses,
            variables=total_variables,
            decisions=total_decisions,
            trace_inputs=trace_inputs,
            monitor_name=compiled.monitor.name,
            goal_value=compiled.goal_value,
        )

    # ------------------------------------------------------------------
    def _constrain_environment(self, blaster: CircuitBitBlaster, num_frames: int) -> None:
        for frame in range(num_frames):
            for name, value in self.environment.pinned.items():
                blaster.constrain_value(self.circuit.net(name), frame, value)
            for net in self._assumption_nets + self._one_hot_nets:
                blaster.constrain_bit(net, frame, 1)

    def _extract_inputs(
        self, blaster: CircuitBitBlaster, solver: DPLLSolver, num_frames: int
    ) -> List[Dict[str, int]]:
        inputs: List[Dict[str, int]] = []
        for frame in range(num_frames):
            vector = {
                net.name: blaster.model_value(solver, net, frame)
                for net in self.circuit.inputs
            }
            inputs.append(vector)
        return inputs
