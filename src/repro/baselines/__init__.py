"""Baseline engines used by the ablation and scalability benchmarks.

The paper argues that (a) the word-level ATPG approach is far less memory
hungry than BDD-based symbolic model checking, (b) modular rather than
integral arithmetic reasoning avoids false negatives, and (c) deterministic
constraint solving finds the corner cases random simulation misses.  To turn
those claims into measurable experiments we provide:

* :mod:`repro.baselines.bdd` / :mod:`repro.baselines.bdd_checker` -- an ROBDD
  manager and a symbolic reachability checker, the state-set technique the
  paper's scalability argument is made against;
* :mod:`repro.baselines.cnf` / :mod:`repro.baselines.dpll` /
  :mod:`repro.baselines.sat_checker` -- a bit-blasting bounded model checker
  in the style of Biere et al. (SAT-BMC), the bit-level alternative the paper
  cites;
* :mod:`repro.baselines.integer_solver` -- a rational (non-modular) linear
  solver that misses wrap-around solutions, demonstrating the false-negative
  effect of Section 4;
* :mod:`repro.baselines.random_sim` -- the plain random-simulation flow the
  paper's introduction motivates against (corner cases need lucky stimulus).
"""

from repro.baselines.cnf import CNFFormula, TseitinEncoder
from repro.baselines.dpll import DPLLSolver, SATResult
from repro.baselines.bitblast import CircuitBitBlaster
from repro.baselines.sat_checker import SATBoundedChecker
from repro.baselines.integer_solver import RationalLinearSolver
from repro.baselines.random_sim import RandomSimulationChecker, RandomSimulationOptions
from repro.baselines.bdd import BddManager
from repro.baselines.bdd_checker import BddSymbolicChecker, BddCheckResult

__all__ = [
    "CNFFormula",
    "TseitinEncoder",
    "DPLLSolver",
    "SATResult",
    "CircuitBitBlaster",
    "SATBoundedChecker",
    "RationalLinearSolver",
    "RandomSimulationChecker",
    "RandomSimulationOptions",
    "BddManager",
    "BddSymbolicChecker",
    "BddCheckResult",
]
