"""BDD-based symbolic reachability checking (the paper's comparison target).

The paper's scalability argument is made against BDD-based symbolic model
checking: "the set of reachable states may grow exponentially as the number
of registers increases" and "the BDD techniques may still suffer from the
memory explosion problem".  This module provides that baseline so the
benchmark harness can measure it:

1. every net bit of the design is turned into a BDD over the current-state
   and input variables (a direct bit-level symbolic simulation of the
   word-level netlist),
2. the transition relation ``TR = AND_i (next_i <-> f_i)`` is built over an
   interleaved current/next variable order,
3. reachable states are computed by a breadth-first fixed point with image
   computation (relational product), and
4. a safety property fails iff a reachable state admits an input valuation
   that drives the compiled property monitor low (witnesses dually).

The checker reports peak BDD node counts along with run time and memory, so
the scalability benchmark can show the growth the paper talks about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.baselines.bdd import FALSE, TRUE, BddLimitExceeded, BddManager
from repro.checker.result import CheckStatus
from repro.checker.stats import ResourceMeter
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.circuit import Circuit
from repro.netlist.compare import Comparator
from repro.netlist.gates import (
    AndGate,
    BufGate,
    ConcatGate,
    ConstGate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    SliceGate,
    XnorGate,
    XorGate,
    ZeroExtendGate,
)
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.seq import DFF
from repro.netlist.tristate import BusResolver, TristateBuffer
from repro.properties.convert import PropertyCompiler
from repro.properties.environment import Environment
from repro.properties.spec import Assertion, OneHot, Property, Signal


@dataclass
class BddCheckResult:
    """Verdict and cost statistics of the BDD symbolic baseline."""

    prop: Property
    status: CheckStatus
    iterations: int
    cpu_seconds: float = 0.0
    peak_memory_mb: float = 0.0
    #: total BDD nodes allocated by the manager (the memory-explosion proxy).
    peak_nodes: int = 0
    #: nodes in the final reachable-set BDD.
    reachable_nodes: int = 0
    #: number of reachable states (over the state variables).
    reachable_states: Optional[int] = None


class BddSymbolicChecker:
    """Safety/reachability checking by BDD-based symbolic traversal."""

    def __init__(
        self,
        circuit: Circuit,
        environment: Optional[Environment] = None,
        initial_state: Optional[Mapping[str, int]] = None,
        max_iterations: int = 256,
        node_limit: int = 2_000_000,
    ):
        circuit.validate()
        self.circuit = circuit
        self.environment = environment if environment is not None else Environment()
        self.initial_state = dict(initial_state or {})
        self.max_iterations = max_iterations
        self.node_limit = node_limit
        self.compiler = PropertyCompiler(circuit)
        self._assumption_nets = [
            self.compiler.compile_condition(expr, name="bdd_assume")
            for expr in self.environment.assumptions
        ]
        self._one_hot_nets = [
            self.compiler.compile_condition(
                OneHot(*[Signal(name) for name in group]), name="bdd_onehot"
            )
            for group in self.environment.one_hot_groups
        ]

    # ------------------------------------------------------------------
    # Variable allocation and symbolic simulation
    # ------------------------------------------------------------------
    def _allocate_variables(self, manager: BddManager) -> None:
        """Interleave current/next state bits, then the input bits."""
        self._current_levels: List[int] = []
        self._next_levels: List[int] = []
        self._state_bits: List[Tuple[DFF, int]] = []
        level = 0
        for ff in self.circuit.flip_flops:
            for bit in range(ff.q.width):
                self._current_levels.append(level)
                self._next_levels.append(level + 1)
                self._state_bits.append((ff, bit))
                level += 2
        self._input_levels: Dict[Tuple[Net, int], int] = {}
        for net in self.circuit.inputs:
            for bit in range(net.width):
                self._input_levels[(net, bit)] = level
                level += 1
        manager.num_variables = level

    def _leaf_functions(self, manager: BddManager) -> Dict[Net, List[int]]:
        functions: Dict[Net, List[int]] = {}
        for index, (ff, bit) in enumerate(self._state_bits):
            functions.setdefault(ff.q, [FALSE] * ff.q.width)
            functions[ff.q][bit] = manager.variable(self._current_levels[index])
        for net in self.circuit.inputs:
            functions[net] = [
                manager.variable(self._input_levels[(net, bit)]) for bit in range(net.width)
            ]
        return functions

    def _symbolic_simulate(self, manager: BddManager) -> Dict[Net, List[int]]:
        """One BDD per net bit, over current-state and input variables."""
        functions = self._leaf_functions(manager)
        for gate in self.circuit.topological_order():
            self._evaluate_gate(manager, functions, gate)
        return functions

    # ------------------------------------------------------------------
    def _evaluate_gate(self, manager: BddManager, functions, gate) -> None:
        m = manager
        ins = [functions[net] for net in gate.inputs]

        if isinstance(gate, ConstGate):
            functions[gate.output] = [
                TRUE if (gate.value >> bit) & 1 else FALSE for bit in range(gate.output.width)
            ]
        elif isinstance(gate, BufGate):
            functions[gate.output] = list(ins[0])
        elif isinstance(gate, NotGate):
            functions[gate.output] = [m.not_(bit) for bit in ins[0]]
        elif isinstance(gate, (AndGate, NandGate)):
            result = list(ins[0])
            for operand in ins[1:]:
                result = [m.and_(a, b) for a, b in zip(result, operand)]
            if isinstance(gate, NandGate):
                result = [m.not_(bit) for bit in result]
            functions[gate.output] = result
        elif isinstance(gate, (OrGate, NorGate)):
            result = list(ins[0])
            for operand in ins[1:]:
                result = [m.or_(a, b) for a, b in zip(result, operand)]
            if isinstance(gate, NorGate):
                result = [m.not_(bit) for bit in result]
            functions[gate.output] = result
        elif isinstance(gate, (XorGate, XnorGate)):
            result = list(ins[0])
            for operand in ins[1:]:
                result = [m.xor(a, b) for a, b in zip(result, operand)]
            if isinstance(gate, XnorGate):
                result = [m.not_(bit) for bit in result]
            functions[gate.output] = result
        elif isinstance(gate, ReduceAnd):
            functions[gate.output] = [m.and_all(ins[0])]
        elif isinstance(gate, ReduceOr):
            functions[gate.output] = [m.or_all(ins[0])]
        elif isinstance(gate, ReduceXor):
            parity = FALSE
            for bit in ins[0]:
                parity = m.xor(parity, bit)
            functions[gate.output] = [parity]
        elif isinstance(gate, SliceGate):
            functions[gate.output] = list(ins[0][gate.lsb : gate.msb + 1])
        elif isinstance(gate, ConcatGate):
            bits: List[int] = []
            for operand in reversed(ins):
                bits.extend(operand)
            functions[gate.output] = bits
        elif isinstance(gate, ZeroExtendGate):
            padding = [FALSE] * (gate.output.width - len(ins[0]))
            functions[gate.output] = list(ins[0]) + padding
        elif isinstance(gate, Adder):
            carry = (
                functions[gate.carry_in][0] if gate.carry_in is not None else FALSE
            )
            total, carry_out = self._word_add(m, functions[gate.a], functions[gate.b], carry)
            functions[gate.output] = total
            if gate.carry_out is not None:
                functions[gate.carry_out] = [carry_out]
        elif isinstance(gate, Subtractor):
            negated = [m.not_(bit) for bit in functions[gate.b]]
            total, _ = self._word_add(m, functions[gate.a], negated, TRUE)
            functions[gate.output] = total
        elif isinstance(gate, Multiplier):
            functions[gate.output] = self._word_mul(
                m, functions[gate.a], functions[gate.b], gate.output.width
            )
        elif isinstance(gate, (ShiftLeft, ShiftRight)):
            functions[gate.output] = self._word_shift(m, gate, functions)
        elif isinstance(gate, Comparator):
            functions[gate.output] = [self._comparator_bit(m, gate, functions)]
        elif isinstance(gate, Mux):
            functions[gate.output] = self._word_mux_tree(m, gate, functions)
        elif isinstance(gate, TristateBuffer):
            functions[gate.output] = list(functions[gate.data])
        elif isinstance(gate, BusResolver):
            width = gate.output.width
            result = [FALSE] * width
            for data, enable in gate.drivers:
                enable_bit = functions[enable][0]
                result = [
                    m.or_(acc, m.and_(bit, enable_bit))
                    for acc, bit in zip(result, functions[data])
                ]
            functions[gate.output] = result
        elif isinstance(gate, DFF):
            pass  # handled by the transition relation
        else:
            raise TypeError("BDD checker has no encoding for %s" % (type(gate).__name__,))

    # ------------------------------------------------------------------
    @staticmethod
    def _word_add(manager: BddManager, a: List[int], b: List[int], carry: int):
        total: List[int] = []
        for bit_a, bit_b in zip(a, b):
            partial = manager.xor(bit_a, bit_b)
            total.append(manager.xor(partial, carry))
            carry = manager.or_(
                manager.and_(bit_a, bit_b), manager.and_(partial, carry)
            )
        return total, carry

    def _word_mul(self, manager: BddManager, a: List[int], b: List[int], width: int):
        result = [FALSE] * width
        for shift, control in enumerate(b):
            if shift >= width:
                break
            addend = [FALSE] * shift + [
                manager.and_(bit, control) for bit in a[: width - shift]
            ]
            result, _ = self._word_add(manager, result, addend, FALSE)
        return result

    def _word_shift(self, manager: BddManager, gate, functions) -> List[int]:
        a = functions[gate.a]
        width = gate.output.width
        if gate.amount is None:
            amount = gate.constant
            bits = []
            for i in range(width):
                src = i - amount if isinstance(gate, ShiftLeft) else i + amount
                bits.append(a[src] if 0 <= src < len(a) else FALSE)
            return bits
        current = list(a)
        for stage, control in enumerate(functions[gate.amount]):
            shift = 1 << stage
            if shift >= width * 2:
                break
            shifted = []
            for i in range(width):
                src = i - shift if isinstance(gate, ShiftLeft) else i + shift
                shifted.append(current[src] if 0 <= src < width else FALSE)
            current = [
                manager.ite(control, s, c) for c, s in zip(current, shifted)
            ]
        return current

    def _comparator_bit(self, manager: BddManager, gate: Comparator, functions) -> int:
        a = functions[gate.a]
        b = functions[gate.b]
        equal = TRUE
        less = FALSE
        for bit_a, bit_b in zip(reversed(a), reversed(b)):
            bit_less = manager.and_(manager.not_(bit_a), bit_b)
            less = manager.or_(less, manager.and_(equal, bit_less))
            equal = manager.and_(equal, manager.xnor(bit_a, bit_b))
        if gate.op == "==":
            return equal
        if gate.op == "!=":
            return manager.not_(equal)
        if gate.op == "<":
            return less
        if gate.op == ">=":
            return manager.not_(less)
        if gate.op == ">":
            return manager.and_(manager.not_(less), manager.not_(equal))
        return manager.or_(less, equal)  # "<="

    def _word_mux_tree(self, manager: BddManager, gate: Mux, functions) -> List[int]:
        select_bits = functions[gate.select]
        data = [functions[net] for net in gate.data]
        padded = list(data)
        target = 1 << len(select_bits)
        while len(padded) < target:
            padded.append(data[-1])
        level = padded
        for control in select_bits:
            next_level = []
            for i in range(0, len(level), 2):
                pair = level[i + 1] if i + 1 < len(level) else level[i]
                next_level.append(
                    [manager.ite(control, hi, lo) for lo, hi in zip(level[i], pair)]
                )
            level = next_level
        return level[0]

    # ------------------------------------------------------------------
    # Transition relation, initial states and environment
    # ------------------------------------------------------------------
    def _next_state_functions(self, manager: BddManager, functions) -> List[int]:
        next_functions: List[int] = []
        for index, (ff, bit) in enumerate(self._state_bits):
            value = functions[ff.d][bit]
            current = manager.variable(self._current_levels[index])
            if ff.enable is not None:
                enable = functions[ff.enable][0]
                value = manager.ite(enable, value, current)
            if ff.set is not None:
                value = manager.ite(functions[ff.set][0], TRUE, value)
            if ff.reset is not None:
                reset_bit = TRUE if (ff.reset_value >> bit) & 1 else FALSE
                value = manager.ite(functions[ff.reset][0], reset_bit, value)
            next_functions.append(value)
        return next_functions

    def _transition_relation(self, manager: BddManager, next_functions: List[int]) -> int:
        relation = TRUE
        for index, function in enumerate(next_functions):
            next_var = manager.variable(self._next_levels[index])
            relation = manager.and_(relation, manager.xnor(next_var, function))
        return relation

    def _initial_states(self, manager: BddManager) -> int:
        init = TRUE
        for index, (ff, bit) in enumerate(self._state_bits):
            value = self.initial_state.get(ff.q.name, ff.init_value)
            if value is None:
                continue  # unknown power-up: both values allowed
            var = manager.variable(self._current_levels[index])
            literal = var if (value >> bit) & 1 else manager.not_(var)
            init = manager.and_(init, literal)
        return init

    def _environment_constraint(self, manager: BddManager, functions) -> int:
        constraint = TRUE
        for name, value in self.environment.pinned.items():
            net = self.circuit.net(name)
            for bit, function in enumerate(functions[net]):
                desired = (value >> bit) & 1
                literal = function if desired else manager.not_(function)
                constraint = manager.and_(constraint, literal)
        for net in self._assumption_nets + self._one_hot_nets:
            constraint = manager.and_(constraint, functions[net][0])
        return constraint

    # ------------------------------------------------------------------
    def check(self, prop: Property, max_iterations: Optional[int] = None) -> BddCheckResult:
        """Compute the reachable states and evaluate the property on them."""
        compiled = self.compiler.compile(prop)
        bound = max_iterations if max_iterations is not None else self.max_iterations

        with ResourceMeter() as meter:
            manager = BddManager(max_nodes=self.node_limit)
            reachable = FALSE
            status = CheckStatus.ABORTED
            iterations = 0
            try:
                self._allocate_variables(manager)
                functions = self._symbolic_simulate(manager)
                next_functions = self._next_state_functions(manager, functions)
                environment = self._environment_constraint(manager, functions)
                relation = manager.and_(
                    self._transition_relation(manager, next_functions), environment
                )
                monitor = functions[compiled.monitor][0]
                goal = monitor if compiled.goal_value else manager.not_(monitor)
                goal = manager.and_(goal, environment)

                quantified = list(self._input_levels.values()) + self._current_levels
                rename_map = {
                    next_level: current_level
                    for next_level, current_level in zip(
                        self._next_levels, self._current_levels
                    )
                }

                reachable = self._initial_states(manager)
                frontier = reachable
                found = manager.and_(reachable, goal) != FALSE

                while not found and iterations < bound:
                    iterations += 1
                    image = manager.exists(
                        manager.and_(relation, frontier), quantified
                    )
                    image = manager.rename(image, rename_map)
                    new_states = manager.and_(image, manager.not_(reachable))
                    if new_states == FALSE:
                        status = (
                            CheckStatus.HOLDS
                            if isinstance(prop, Assertion)
                            else CheckStatus.WITNESS_NOT_FOUND
                        )
                        break
                    reachable = manager.or_(reachable, new_states)
                    frontier = new_states
                    if manager.and_(new_states, goal) != FALSE:
                        found = True
                if found:
                    status = (
                        CheckStatus.FAILS
                        if isinstance(prop, Assertion)
                        else CheckStatus.WITNESS_FOUND
                    )
            except BddLimitExceeded:
                status = CheckStatus.ABORTED

        num_state_bits = len(self._state_bits)
        try:
            state_only = manager.exists(reachable, list(self._input_levels.values()))
            reachable_count = (
                manager.count_solutions(state_only, manager.num_variables)
                >> (manager.num_variables - num_state_bits)
                if num_state_bits <= manager.num_variables
                else None
            )
        except BddLimitExceeded:
            reachable_count = None
        return BddCheckResult(
            prop=prop,
            status=status,
            iterations=iterations,
            cpu_seconds=meter.elapsed_seconds,
            peak_memory_mb=meter.peak_memory_mb,
            peak_nodes=manager.total_nodes,
            reachable_nodes=manager.node_count(reachable),
            reachable_states=reachable_count,
        )
