"""Random-simulation baseline (the verification flow the paper improves on).

The introduction of the paper motivates deterministic engines by the
weakness of (pseudo-)random simulation: corner-case behaviours need an
exhaustive or lucky stimulus, so coverage saturates and tricky bugs are
missed.  This baseline implements exactly that flow -- drive the design with
random input vectors that respect the environment, watch the compiled
property monitor -- so the benchmark harness can measure how often random
simulation finds the counterexamples / witnesses that the word-level ATPG
engine generates deterministically.

Two backends implement the same search:

* ``bitparallel`` (default) compiles the circuit once and simulates
  ``sim_width`` independent runs per batch on the bit-parallel kernel, one
  run per bit lane -- this is the mass-sampling hot path;
* ``interpreted`` is the original vector-at-a-time loop on the reference
  :class:`~repro.simulation.simulator.Simulator`, kept as the oracle the
  kernel is cross-checked against.

Both backends draw all randomness from the per-check RNG (seeded from the
per-job derived seed), so CI runs are bit-for-bit reproducible.  A hit found
by the bit-parallel backend is re-simulated through the interpreted oracle
to produce (and independently validate) the reported counterexample trace.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.checker.result import CheckResult, CheckStatus, Counterexample
from repro.checker.stats import CheckStatistics, ResourceMeter
from repro.netlist.circuit import Circuit
from repro.properties.convert import PropertyCompiler
from repro.properties.environment import Environment
from repro.properties.spec import Assertion, Property
from repro.sim import BitParallelSim, RandomLaneSampler, compile_circuit
from repro.simulation.simulator import Simulator


@dataclass
class RandomSimulationOptions:
    """Configuration of the random simulation baseline."""

    #: number of independent simulation runs (each from the initial state).
    num_runs: int = 64
    #: number of clock cycles per run.
    cycles_per_run: int = 16
    #: RNG seed for reproducible experiments.
    seed: int = 2000
    #: maximum retries per cycle to find an input vector satisfying the
    #: environment constraints (rejection sampling, interpreted backend only).
    environment_retries: int = 32
    #: measure peak heap usage with tracemalloc.
    trace_memory: bool = True
    #: simulation backend: ``bitparallel`` (compiled kernel, default) or
    #: ``interpreted`` (the reference oracle).
    backend: str = "bitparallel"
    #: lanes per bit-parallel batch (K); each lane is an independent run.
    sim_width: int = 64


class RandomSimulationChecker:
    """Checks properties by random simulation of the compiled monitor.

    The API mirrors :class:`~repro.checker.engine.AssertionChecker` so the
    two engines are interchangeable in the benchmark harness.  For an
    :class:`~repro.properties.spec.Assertion` the checker searches for a cycle
    where the monitor is low (a counterexample); for a witness it searches
    for a cycle where the monitor is high.  Not finding one is *inconclusive*
    (unlike the ATPG engine, random simulation can never prove absence), which
    is reported as ``HOLDS`` / ``WITNESS_NOT_FOUND`` purely for comparability.
    """

    def __init__(
        self,
        circuit: Circuit,
        environment: Optional[Environment] = None,
        initial_state: Optional[Mapping[str, int]] = None,
        options: Optional[RandomSimulationOptions] = None,
    ):
        circuit.validate()
        self.circuit = circuit
        self.environment = environment if environment is not None else Environment()
        self.options = options if options is not None else RandomSimulationOptions()
        if self.options.backend not in ("bitparallel", "interpreted"):
            raise ValueError(
                "unknown random-simulation backend %r" % (self.options.backend,)
            )
        self.initial_state = dict(initial_state) if initial_state else None
        self.compiler = PropertyCompiler(circuit)
        #: total vectors simulated by the last :meth:`check` call.
        self.vectors_simulated = 0

    # ------------------------------------------------------------------
    def check(
        self,
        prop: Property,
        num_runs: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> CheckResult:
        """Simulate random stimulus and report whether the goal was hit.

        ``seed`` overrides :attr:`RandomSimulationOptions.seed` for this call
        only; callers that fan checks out (the portfolio batch runner, CI)
        thread an explicit per-job seed through here so every run is
        reproducible.  All randomness -- including the bit-parallel lane
        stimulus -- is drawn from this one RNG.
        """
        compiled = self.compiler.compile(prop)
        goal_value = compiled.goal_value
        rng = random.Random(self.options.seed if seed is None else seed)
        runs = num_runs if num_runs is not None else self.options.num_runs
        statistics = CheckStatistics()
        self.vectors_simulated = 0

        with ResourceMeter(trace_memory=self.options.trace_memory) as meter:
            if self.options.backend == "bitparallel":
                counterexample = self._check_bitparallel(
                    compiled.monitor.name, goal_value, rng, runs
                )
            else:
                counterexample = None
                for _ in range(runs):
                    counterexample = self._simulate_one_run(
                        compiled.monitor.name, goal_value, rng
                    )
                    if counterexample is not None:
                        break

        statistics.cpu_seconds = meter.elapsed_seconds
        statistics.peak_memory_mb = meter.peak_memory_mb
        statistics.frames_explored = self.vectors_simulated

        if counterexample is not None and not counterexample.validated:
            # The oracle replay refuted the kernel's hit: the verdict cannot
            # be trusted (same demotion the ATPG and SAT engines apply to
            # traces that fail concrete validation).
            return CheckResult(
                prop=prop,
                status=CheckStatus.ABORTED,
                frames_explored=self.vectors_simulated,
                counterexample=None,
                statistics=statistics,
            )
        if counterexample is not None:
            status = (
                CheckStatus.FAILS if isinstance(prop, Assertion) else CheckStatus.WITNESS_FOUND
            )
        else:
            status = (
                CheckStatus.HOLDS
                if isinstance(prop, Assertion)
                else CheckStatus.WITNESS_NOT_FOUND
            )
        return CheckResult(
            prop=prop,
            status=status,
            frames_explored=self.vectors_simulated,
            counterexample=counterexample,
            statistics=statistics,
        )

    # ------------------------------------------------------------------
    # Bit-parallel backend: one independent run per lane.
    # ------------------------------------------------------------------
    def _check_bitparallel(
        self, monitor_name: str, goal_value: int, rng: random.Random, runs: int
    ) -> Optional[Counterexample]:
        plan = compile_circuit(self.circuit)
        sampler = RandomLaneSampler(self.circuit, self.environment)
        remaining = runs
        sim: Optional[BitParallelSim] = None
        while remaining > 0:
            lanes = min(self.options.sim_width, remaining)
            remaining -= lanes
            if sim is None or sim.lanes != lanes:
                sim = BitParallelSim(plan, lanes=lanes, initial_state=self.initial_state)
            else:
                sim.reset(self.initial_state)
            hit = self._simulate_batch(sim, sampler, monitor_name, goal_value, rng)
            if hit is not None:
                return hit
        return None

    def _simulate_batch(
        self,
        sim: BitParallelSim,
        sampler: RandomLaneSampler,
        monitor_name: str,
        goal_value: int,
        rng: random.Random,
    ) -> Optional[Counterexample]:
        lanes = sim.lanes
        inputs_per_cycle: List[Dict[str, List[int]]] = []
        for cycle in range(self.options.cycles_per_run):
            stimulus = sampler.sample(rng, lanes)
            inputs_per_cycle.append(stimulus)
            sim.step(stimulus)
            self.vectors_simulated += lanes
            monitor = sim.peek(monitor_name)[0]
            hits = monitor if goal_value else (monitor ^ sim.full)
            if hits:
                lane = (hits & -hits).bit_length() - 1
                return self._replay_lane(
                    sampler, inputs_per_cycle, lane, cycle, monitor_name, goal_value
                )
        return None

    def _replay_lane(
        self,
        sampler: RandomLaneSampler,
        inputs_per_cycle: List[Dict[str, List[int]]],
        lane: int,
        target_frame: int,
        monitor_name: str,
        goal_value: int,
    ) -> Counterexample:
        """Re-simulate one hit lane through the interpreted oracle.

        This produces the full per-net trace for the report and doubles as an
        independent validation of the kernel's verdict.
        """
        inputs = [
            sampler.scalar_vector(stimulus, lane) for stimulus in inputs_per_cycle
        ]
        simulator = Simulator(self.circuit, initial_state=self.initial_state)
        initial_state = simulator.register_values()
        trace = [simulator.step(vector) for vector in inputs]
        return Counterexample(
            initial_state=initial_state,
            inputs=inputs,
            trace=trace,
            target_frame=target_frame,
            monitor_name=monitor_name,
            validated=trace[target_frame][monitor_name] == goal_value,
        )

    # ------------------------------------------------------------------
    # Interpreted backend (the reference oracle).
    # ------------------------------------------------------------------
    def _simulate_one_run(
        self, monitor_name: str, goal_value: int, rng: random.Random
    ) -> Optional[Counterexample]:
        simulator = Simulator(self.circuit, initial_state=self.initial_state)
        initial_state = simulator.register_values()
        inputs: List[Dict[str, int]] = []
        trace: List[Dict[str, int]] = []
        for cycle in range(self.options.cycles_per_run):
            vector = self._random_vector(rng)
            inputs.append(vector)
            values = simulator.step(vector)
            trace.append(values)
            self.vectors_simulated += 1
            if values[monitor_name] == goal_value:
                return Counterexample(
                    initial_state=initial_state,
                    inputs=inputs,
                    trace=trace,
                    target_frame=cycle,
                    monitor_name=monitor_name,
                    validated=True,
                )
        return None

    def _random_vector(self, rng: random.Random) -> Dict[str, int]:
        """One random input vector respecting the environment (by rejection).

        ``rng`` is always the per-check RNG derived from the per-job seed --
        never the process-global :mod:`random` state -- so batch runs stay
        reproducible (enforced repo-wide by ``tests/test_reproducibility.py``).
        """
        pinned = self.environment.pinned
        for _ in range(self.options.environment_retries):
            vector: Dict[str, int] = {}
            for net in self.circuit.inputs:
                if net.name in pinned:
                    vector[net.name] = pinned[net.name]
                else:
                    vector[net.name] = rng.randrange(1 << net.width)
            if self.environment.satisfied_by(vector):
                return vector
        # Fall back to a vector that at least honours one-hot groups.
        vector = {net.name: 0 for net in self.circuit.inputs}
        vector.update(pinned)
        for group in self.environment.one_hot_groups:
            if group:
                vector[group[rng.randrange(len(group))]] = 1
        return vector
