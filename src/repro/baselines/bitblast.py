"""Bit-blasting of word-level circuits into CNF (the bit-level baseline)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.baselines.cnf import TseitinEncoder
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.compare import Comparator
from repro.netlist.circuit import Circuit
from repro.netlist.gates import (
    AndGate,
    BufGate,
    ConcatGate,
    ConstGate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    SliceGate,
    XnorGate,
    XorGate,
    ZeroExtendGate,
)
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.seq import DFF
from repro.netlist.tristate import BusResolver, TristateBuffer


class CircuitBitBlaster:
    """Unrolls a circuit over time frames and encodes it into CNF.

    Net bits are mapped to CNF variables per ``(net, frame)``; registers link
    consecutive frames.  The encoding covers every primitive the netlist
    package offers, so any design accepted by the word-level checker can also
    be checked by the SAT baseline.
    """

    def __init__(self, circuit: Circuit, num_frames: int, initial_state: Optional[Mapping[str, int]] = None):
        self.circuit = circuit
        self.num_frames = num_frames
        self.initial_state = dict(initial_state or {})
        self.encoder = TseitinEncoder()
        self.formula = self.encoder.formula
        self._bits: Dict[Tuple[Net, int], List[int]] = {}
        self._encode()

    # ------------------------------------------------------------------
    def bits(self, net: Net, frame: int) -> List[int]:
        """CNF literals (LSB first) of a net in a frame."""
        return self._bits[(net, frame)]

    def constrain_value(self, net: Net, frame: int, value: int) -> None:
        """Force a net to a constant value in one frame."""
        for index, literal in enumerate(self.bits(net, frame)):
            desired = (value >> index) & 1
            self.formula.add_unit(literal if desired else -literal)

    def constrain_bit(self, net: Net, frame: int, value: int) -> None:
        """Force a 1-bit net to a constant in one frame."""
        self.constrain_value(net, frame, value & 1)

    def model_value(self, solver, net: Net, frame: int) -> int:
        """Read a net's value out of a SAT model."""
        value = 0
        for index, literal in enumerate(self.bits(net, frame)):
            bit = solver.value(abs(literal))
            if bit is None:
                bit = False
            if literal < 0:
                bit = not bit
            if bit:
                value |= 1 << index
        return value

    # ------------------------------------------------------------------
    def _encode(self) -> None:
        # Allocate literals for every frame's free nets (inputs and register
        # outputs); derived nets get literals as their drivers are encoded.
        for frame in range(self.num_frames):
            for net in self.circuit.inputs:
                self._bits[(net, frame)] = self.formula.new_variables(net.width)
            for ff in self.circuit.flip_flops:
                self._bits[(ff.q, frame)] = self.formula.new_variables(ff.q.width)

        # Initial state constraints at frame 0.
        for ff in self.circuit.flip_flops:
            value = self.initial_state.get(ff.q.name, ff.init_value)
            if value is None:
                continue
            for index, literal in enumerate(self._bits[(ff.q, 0)]):
                desired = (value >> index) & 1
                self.formula.add_unit(literal if desired else -literal)

        # Combinational logic per frame, then the register transition relation.
        order = self.circuit.topological_order()
        for frame in range(self.num_frames):
            for gate in order:
                self._encode_gate(gate, frame)
        for frame in range(self.num_frames - 1):
            for ff in self.circuit.flip_flops:
                self._encode_register(ff, frame)

    def _net_bits(self, net: Net, frame: int) -> List[int]:
        bits = self._bits.get((net, frame))
        if bits is None:
            raise KeyError("net %s has no encoding in frame %d" % (net, frame))
        return bits

    def _set_bits(self, net: Net, frame: int, bits: List[int]) -> None:
        self._bits[(net, frame)] = bits

    # ------------------------------------------------------------------
    def _encode_gate(self, gate, frame: int) -> None:
        enc = self.encoder
        ins = [self._net_bits(net, frame) for net in gate.inputs]

        if isinstance(gate, ConstGate):
            self._set_bits(gate.output, frame, enc.word_constant(gate.value, gate.output.width))
        elif isinstance(gate, (BufGate,)):
            self._set_bits(gate.output, frame, list(ins[0]))
        elif isinstance(gate, NotGate):
            self._set_bits(gate.output, frame, enc.word_not(ins[0]))
        elif isinstance(gate, (AndGate, NandGate)):
            result = ins[0]
            for operand in ins[1:]:
                result = enc.word_and(result, operand)
            if isinstance(gate, NandGate):
                result = enc.word_not(result)
            self._set_bits(gate.output, frame, result)
        elif isinstance(gate, (OrGate, NorGate)):
            result = ins[0]
            for operand in ins[1:]:
                result = enc.word_or(result, operand)
            if isinstance(gate, NorGate):
                result = enc.word_not(result)
            self._set_bits(gate.output, frame, result)
        elif isinstance(gate, (XorGate, XnorGate)):
            result = ins[0]
            for operand in ins[1:]:
                result = enc.word_xor(result, operand)
            if isinstance(gate, XnorGate):
                result = enc.word_not(result)
            self._set_bits(gate.output, frame, result)
        elif isinstance(gate, ReduceAnd):
            self._set_bits(gate.output, frame, [enc.and_gate(ins[0])])
        elif isinstance(gate, ReduceOr):
            self._set_bits(gate.output, frame, [enc.or_gate(ins[0])])
        elif isinstance(gate, ReduceXor):
            parity = ins[0][0]
            for literal in ins[0][1:]:
                parity = enc.xor_gate(parity, literal)
            self._set_bits(gate.output, frame, [parity])
        elif isinstance(gate, SliceGate):
            self._set_bits(gate.output, frame, list(ins[0][gate.lsb : gate.msb + 1]))
        elif isinstance(gate, ConcatGate):
            bits: List[int] = []
            for operand in reversed(ins):  # least significant part last in inputs
                bits.extend(operand)
            self._set_bits(gate.output, frame, bits)
        elif isinstance(gate, ZeroExtendGate):
            padding = [enc.constant(False)] * (gate.output.width - len(ins[0]))
            self._set_bits(gate.output, frame, list(ins[0]) + padding)
        elif isinstance(gate, Adder):
            carry_in = None
            if gate.carry_in is not None:
                carry_in = self._net_bits(gate.carry_in, frame)[0]
            total, carry = enc.word_add(
                self._net_bits(gate.a, frame), self._net_bits(gate.b, frame), carry_in
            )
            self._set_bits(gate.output, frame, total)
            if gate.carry_out is not None:
                self._set_bits(gate.carry_out, frame, [carry])
        elif isinstance(gate, Subtractor):
            self._set_bits(
                gate.output,
                frame,
                enc.word_sub(self._net_bits(gate.a, frame), self._net_bits(gate.b, frame)),
            )
        elif isinstance(gate, Multiplier):
            self._set_bits(
                gate.output,
                frame,
                enc.word_mul(
                    self._net_bits(gate.a, frame),
                    self._net_bits(gate.b, frame),
                    gate.output.width,
                ),
            )
        elif isinstance(gate, (ShiftLeft, ShiftRight)):
            self._encode_shift(gate, frame)
        elif isinstance(gate, Comparator):
            self._encode_comparator(gate, frame)
        elif isinstance(gate, Mux):
            self._encode_mux(gate, frame)
        elif isinstance(gate, TristateBuffer):
            self._set_bits(gate.output, frame, list(self._net_bits(gate.data, frame)))
        elif isinstance(gate, BusResolver):
            self._encode_bus(gate, frame)
        elif isinstance(gate, DFF):
            pass  # handled by _encode_register
        else:
            raise TypeError("bit-blaster has no encoding for %s" % (type(gate).__name__,))

    def _encode_shift(self, gate, frame: int) -> None:
        enc = self.encoder
        a = self._net_bits(gate.a, frame)
        width = gate.output.width
        if gate.amount is None:
            amount = gate.constant
            bits = []
            for i in range(width):
                src = i - amount if isinstance(gate, ShiftLeft) else i + amount
                bits.append(a[src] if 0 <= src < len(a) else enc.constant(False))
            self._set_bits(gate.output, frame, bits)
            return
        # Variable shift: barrel of muxes over the amount bits.
        amount_bits = self._net_bits(gate.amount, frame)
        current = list(a)
        for stage, control in enumerate(amount_bits):
            shift = 1 << stage
            if shift >= width * 2:
                break
            shifted = []
            for i in range(width):
                src = i - shift if isinstance(gate, ShiftLeft) else i + shift
                shifted.append(current[src] if 0 <= src < width else enc.constant(False))
            current = enc.word_mux(control, current, shifted)
        self._set_bits(gate.output, frame, current)

    def _encode_comparator(self, gate: Comparator, frame: int) -> None:
        enc = self.encoder
        a = self._net_bits(gate.a, frame)
        b = self._net_bits(gate.b, frame)
        if gate.op == "==":
            bit = enc.word_equal(a, b)
        elif gate.op == "!=":
            bit = enc.not_gate(enc.word_equal(a, b))
        elif gate.op == "<":
            bit = enc.word_less_than(a, b)
        elif gate.op == ">=":
            bit = enc.not_gate(enc.word_less_than(a, b))
        elif gate.op == ">":
            bit = enc.word_less_than(b, a)
        else:  # "<="
            bit = enc.not_gate(enc.word_less_than(b, a))
        self._set_bits(gate.output, frame, [bit])

    def _encode_mux(self, gate: Mux, frame: int) -> None:
        enc = self.encoder
        select_bits = self._net_bits(gate.select, frame)
        data = [self._net_bits(net, frame) for net in gate.data]
        # Binary selection tree over the select bits, clamping out-of-range
        # selects onto the last input (matching Mux.evaluate).
        padded = list(data)
        target = 1 << len(select_bits)
        while len(padded) < target:
            padded.append(data[-1])
        level = padded
        for stage, control in enumerate(select_bits):
            next_level = []
            for i in range(0, len(level), 2):
                pair = level[i + 1] if i + 1 < len(level) else level[i]
                next_level.append(enc.word_mux(control, level[i], pair))
            level = next_level
        self._set_bits(gate.output, frame, level[0])

    def _encode_bus(self, gate: BusResolver, frame: int) -> None:
        enc = self.encoder
        width = gate.output.width
        result = enc.word_constant(0, width)
        for data, enable in gate.drivers:
            data_bits = self._net_bits(data, frame)
            enable_bit = self._net_bits(enable, frame)[0]
            gated = [enc.and_gate([bit, enable_bit]) for bit in data_bits]
            result = enc.word_or(result, gated)
        self._set_bits(gate.output, frame, result)

    def _encode_register(self, ff: DFF, frame: int) -> None:
        enc = self.encoder
        next_bits = self._net_bits(ff.q, frame + 1)
        d_bits = self._net_bits(ff.d, frame)
        current_bits = self._net_bits(ff.q, frame)

        value = list(d_bits)
        if ff.enable is not None:
            enable_bit = self._net_bits(ff.enable, frame)[0]
            value = enc.word_mux(enable_bit, current_bits, value)
        if ff.set is not None:
            set_bit = self._net_bits(ff.set, frame)[0]
            value = enc.word_mux(set_bit, value, enc.word_constant(ff.q.mask(), ff.q.width))
        if ff.reset is not None:
            reset_bit = self._net_bits(ff.reset, frame)[0]
            value = enc.word_mux(
                reset_bit, value, enc.word_constant(ff.reset_value, ff.q.width)
            )
        enc.word_assert_equal(next_bits, value)
