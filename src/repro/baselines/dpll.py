"""A small DPLL SAT solver for the bit-level baseline checker.

The solver implements chronological DPLL with unit propagation and a
most-frequent-literal branching heuristic.  It is deliberately simple -- the
point of the baseline is to measure how a straightforward bit-level encoding
behaves (clause count, memory, run time) relative to the word-level ATPG, not
to compete with industrial SAT solvers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.cnf import CNFFormula


class SATResult(enum.Enum):
    """Outcome of a SAT call."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class SATStatistics:
    """Search statistics of one solver run."""

    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0


class DPLLSolver:
    """Chronological DPLL with unit propagation."""

    def __init__(self, formula: CNFFormula, max_decisions: int = 2_000_000):
        self.formula = formula
        self.max_decisions = max_decisions
        self.stats = SATStatistics()
        self.model: Dict[int, bool] = {}

    # ------------------------------------------------------------------
    def solve(self, assumptions: Sequence[int] = ()) -> SATResult:
        """Solve the formula under optional assumption literals."""
        import sys

        # The chronological search recurses once per decision; deep formulas
        # (many frames of a bit-blasted design) need more head-room than the
        # default CPython recursion limit.
        sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))
        assignment: Dict[int, bool] = {}
        clauses = [list(clause) for clause in self.formula.clauses]
        for literal in assumptions:
            clauses.append([literal])
        result = self._search(clauses, assignment)
        if result is SATResult.SAT:
            self.model = dict(assignment)
        return result

    # ------------------------------------------------------------------
    def _search(self, clauses: List[List[int]], assignment: Dict[int, bool]) -> SATResult:
        status = self._unit_propagate(clauses, assignment)
        if status is not None:
            return status

        literal = self._pick_branch_literal(clauses, assignment)
        if literal is None:
            return SATResult.SAT

        if self.stats.decisions >= self.max_decisions:
            return SATResult.UNKNOWN

        for value in (literal, -literal):
            self.stats.decisions += 1
            trail = dict(assignment)
            trail[abs(value)] = value > 0
            result = self._search(clauses, trail)
            if result is SATResult.SAT:
                assignment.clear()
                assignment.update(trail)
                return SATResult.SAT
            if result is SATResult.UNKNOWN:
                return SATResult.UNKNOWN
            self.stats.conflicts += 1
        return SATResult.UNSAT

    def _unit_propagate(
        self, clauses: List[List[int]], assignment: Dict[int, bool]
    ) -> Optional[SATResult]:
        """Propagate unit clauses; returns UNSAT on conflict, SAT when every
        clause is satisfied, ``None`` when branching is still required."""
        changed = True
        while changed:
            changed = False
            all_satisfied = True
            for clause in clauses:
                satisfied = False
                unassigned: List[int] = []
                for literal in clause:
                    value = assignment.get(abs(literal))
                    if value is None:
                        unassigned.append(literal)
                    elif (literal > 0) == value:
                        satisfied = True
                        break
                if satisfied:
                    continue
                if not unassigned:
                    return SATResult.UNSAT
                all_satisfied = False
                if len(unassigned) == 1:
                    literal = unassigned[0]
                    assignment[abs(literal)] = literal > 0
                    self.stats.propagations += 1
                    changed = True
            if all_satisfied:
                return SATResult.SAT
        return None

    def _pick_branch_literal(
        self, clauses: List[List[int]], assignment: Dict[int, bool]
    ) -> Optional[int]:
        """Most frequent literal among unresolved clauses."""
        counts: Dict[int, int] = {}
        for clause in clauses:
            satisfied = False
            candidates: List[int] = []
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    candidates.append(literal)
                elif (literal > 0) == value:
                    satisfied = True
                    break
            if satisfied:
                continue
            for literal in candidates:
                counts[literal] = counts.get(literal, 0) + 1
        if not counts:
            return None
        return max(counts, key=counts.get)

    # ------------------------------------------------------------------
    def value(self, variable: int) -> Optional[bool]:
        """Model value of a variable after a SAT answer."""
        return self.model.get(variable)
