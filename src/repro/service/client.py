"""Synchronous client for the verification service.

:class:`ServiceClient` speaks ``repro-service/v1`` over the daemon's unix
socket; :func:`check_via_service` is the high-level entry the CLI's
``repro submit`` uses -- it degrades gracefully to in-process checking when
no daemon is listening (so scripts can use ``repro submit`` unconditionally
and only *benefit* from a running daemon, never depend on one).
"""

from __future__ import annotations

import os
import socket
import tempfile
from dataclasses import replace
from typing import Dict, Mapping, Optional, Union

from repro import api
from repro.service import protocol

#: Environment variable overriding the default socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> str:
    """Where the daemon listens unless told otherwise.

    ``$REPRO_SERVICE_SOCKET`` wins; the fallback is a per-user path under
    the system temp directory so unprivileged users never collide.
    """
    override = os.environ.get(SOCKET_ENV)
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), "repro-service-%d.sock" % uid)


class ServiceError(RuntimeError):
    """The daemon answered, but with a failure."""


class ServiceUnavailable(ServiceError):
    """No daemon is listening on the socket (connection-level failure)."""


class ServiceClient:
    """One connection to a running daemon (usable as a context manager)."""

    def __init__(self, socket_path: Optional[str] = None,
                 connect_timeout: float = 5.0):
        self.socket_path = socket_path or default_socket_path()
        self._connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._stream = None

    # -- connection ---------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._connect_timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceUnavailable(
                "no verification daemon on %s (%s); start one with 'repro serve'"
                % (self.socket_path, exc)
            ) from exc
        # Verbs like result-with-wait block for the job's duration, so the
        # established connection runs without a read deadline.
        sock.settimeout(None)
        self._sock = sock
        self._stream = sock.makefile("rwb")
        return self

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol -------------------------------------------------
    def call(self, verb: str, **fields) -> Dict[str, object]:
        """Send one verb, return the decoded response (``ok`` or not)."""
        self.connect()
        try:
            self._stream.write(protocol.encode(protocol.request_message(verb, **fields)))
            self._stream.flush()
            line = self._stream.readline()
        except OSError as exc:
            self.close()
            raise ServiceUnavailable("daemon connection lost: %s" % (exc,)) from exc
        if not line:
            self.close()
            raise ServiceUnavailable("daemon closed the connection")
        return protocol.decode(line.rstrip(b"\n"))

    def request(self, verb: str, **fields) -> Dict[str, object]:
        """Like :meth:`call`, but raises :class:`ServiceError` on ``ok: false``."""
        response = self.call(verb, **fields)
        if not response.get("ok"):
            raise ServiceError(str(response.get("error", "unknown service error")))
        return response

    # -- verbs --------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def submit(self, request: Union[api.CheckRequest, Mapping[str, object]],
               **extra) -> str:
        """Submit a check request; returns the daemon's job id.

        ``request`` may be a :class:`~repro.api.CheckRequest` or its dict
        form -- either way the daemon receives the one true schema.
        """
        payload = request.to_dict() if isinstance(request, api.CheckRequest) else dict(request)
        response = self.request("submit", request=payload, **extra)
        return str(response["job_id"])

    def status(self, job_id: str) -> Dict[str, object]:
        return dict(self.request("status", job_id=job_id)["job"])

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, object]:
        """Fetch a job's outcome; with ``wait`` the daemon blocks until done."""
        fields: Dict[str, object] = {"job_id": job_id, "wait": wait}
        if timeout is not None:
            fields["timeout"] = timeout
        return self.request("result", **fields)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request("cancel", job_id=job_id)

    def stats(self) -> Dict[str, object]:
        return dict(self.request("stats")["stats"])

    def shutdown(self) -> Dict[str, object]:
        """Ask the daemon to flush all workers' KB state and exit."""
        return self.request("shutdown")


def service_available(socket_path: Optional[str] = None) -> bool:
    """Whether a daemon answers a ping on the socket."""
    try:
        with ServiceClient(socket_path) as client:
            client.ping()
        return True
    except (ServiceError, protocol.ProtocolError):
        return False


def check_via_service(
    request: api.CheckRequest,
    socket_path: Optional[str] = None,
    fallback: bool = True,
    timeout: Optional[float] = None,
) -> api.CheckReport:
    """Check a request through the daemon, or in-process when there is none.

    The returned report is tagged with its execution path (``source``:
    ``daemon`` / ``in-process``) and, when daemon-run, carries the worker's
    warm-path stats in ``service`` -- verdicts and traces are bit-identical
    either way, so callers never need to care which path answered.
    """
    if not request.circuit.serializable:
        if fallback:
            return api.check(request)
        raise ServiceError(
            "an inline circuit cannot be submitted to a daemon; "
            "use a verilog/source/case circuit ref"
        )
    try:
        with ServiceClient(socket_path) as client:
            job_id = client.submit(request)
            response = client.result(job_id, wait=True, timeout=timeout)
    except ServiceUnavailable:
        if fallback:
            return api.check(request)
        raise
    state = response.get("state")
    if state != "done":
        raise ServiceError(
            "job %s finished as %s: %s"
            % (response.get("job_id"), state, response.get("error", "no cause given"))
        )
    report_payload = response.get("report")
    if not isinstance(report_payload, Mapping):
        raise ServiceError("daemon returned no report for a done job")
    report = api.CheckReport.from_dict(report_payload)
    service_block: Dict[str, object] = {"job": dict(response.get("job") or {})}
    stats = response.get("stats")
    if isinstance(stats, Mapping):
        service_block["worker"] = dict(stats)
    return replace(report, source="daemon", service=service_block)


__all__ = [
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "check_via_service",
    "default_socket_path",
    "service_available",
]
