"""Synchronous client for the verification service.

:class:`ServiceClient` speaks ``repro-service/v1`` over the daemon's unix
socket; :func:`check_via_service` is the high-level entry the CLI's
``repro submit`` uses -- it degrades gracefully to in-process checking when
no daemon is listening (so scripts can use ``repro submit`` unconditionally
and only *benefit* from a running daemon, never depend on one).

Resilience contract (PR 8):

* **every protocol read has a deadline** (``read_timeout``; a wedged daemon
  surfaces as a typed :class:`ServiceTimeout`, never an eternal block);
* connection-level failures are **retried with jittered exponential
  backoff** (:class:`RetryPolicy`); resubmits after a lost connection are
  **idempotent** -- each logical submit carries a ``submit_key`` derived
  from the request digest plus a one-shot nonce, and the daemon collapses
  retries of the same key onto the original job;
* the failure taxonomy is typed, not prose: :class:`ServiceUnavailable`
  (nobody listening -- the only error the in-process fallback acts on),
  :class:`ServiceConnectionLost` (mid-conversation loss),
  :class:`ServiceTimeout` (deadline expired) and :class:`JobFailure`
  (the daemon answered: the job failed, with a machine-readable ``cause``
  from :data:`repro.service.protocol.FAILURE_CAUSES`);
* an end-to-end ``deadline`` propagates from here through the protocol to
  the supervisor and into the worker's engine budget, so one number bounds
  the whole round trip including the solver itself.
"""

from __future__ import annotations

import os
import random
import socket
import tempfile
import time
import uuid
from dataclasses import dataclass, replace
from typing import Dict, Mapping, Optional, Union

from repro import api, faults
from repro.service import protocol

#: Environment variable overriding the default socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Default per-read deadline; generous because ``result`` long-polls in
#: bounded chunks (:data:`RESULT_POLL_SECONDS`) well under this.
DEFAULT_READ_TIMEOUT = 60.0

#: Server-side wait per ``result`` long-poll chunk.  Kept far below the
#: read deadline so a daemon that stops answering is distinguishable from
#: a job that is merely still running.
RESULT_POLL_SECONDS = 20.0


def default_socket_path() -> str:
    """Where the daemon listens unless told otherwise.

    ``$REPRO_SERVICE_SOCKET`` wins; the fallback is a per-user path under
    the system temp directory so unprivileged users never collide.
    """
    override = os.environ.get(SOCKET_ENV)
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), "repro-service-%d.sock" % uid)


class ServiceError(RuntimeError):
    """The daemon answered, but with a failure."""


class ServiceUnavailable(ServiceError):
    """No daemon is listening on the socket (connection-level failure).

    This is the *only* error :func:`check_via_service` falls back to
    in-process checking on -- everything else means a daemon exists and
    its answer (or silence) must not be papered over by a local re-run.
    """


class ServiceConnectionLost(ServiceError):
    """An established connection dropped mid-conversation.

    Deliberately *not* a :class:`ServiceUnavailable`: a daemon that was
    reachable and then vanished mid-job is a failure to report (or retry
    against the same daemon), not a cue to silently re-run locally.
    """


class ServiceTimeout(ServiceError):
    """A protocol read or an end-to-end deadline expired."""


class JobFailure(ServiceError):
    """A submitted job terminated without a report.

    ``cause`` is one of :data:`repro.service.protocol.FAILURE_CAUSES`
    (``timeout``, ``crash``, ``watchdog``, ``quarantined``, ``draining``,
    ``job-error``, ``cancelled``, ``injected``) so callers can branch
    without parsing prose.
    """

    def __init__(self, message: str, job_id: Optional[str] = None,
                 state: Optional[str] = None, cause: Optional[str] = None):
        super().__init__(message)
        self.job_id = job_id
        self.state = state
        self.cause = cause


#: Private RNG for backoff jitter.  Deliberately unseeded: jitter exists to
#: *decorrelate* clients, and it never influences verdicts, so it sits
#: outside the per-job derived-seed discipline (which bans module-global
#: ``random.*`` draws, not dedicated instances).
_JITTER_RNG = random.Random()


@dataclass(frozen=True)
class RetryPolicy:
    """Jittered exponential backoff for connection-level failures."""

    #: total tries (first attempt included); 1 disables retries.
    attempts: int = 3
    #: backoff before retry *n* is ``base_delay * multiplier**(n-1)``...
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    #: ...scaled by a uniform draw from ``[1 - jitter, 1]`` so a thundering
    #: herd of clients does not reconnect in lockstep.
    jitter: float = 0.5

    def delay(self, attempt: int) -> float:
        """Backoff to sleep before retry ``attempt`` (1-based)."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** (attempt - 1))
        return raw * (1.0 - self.jitter * _JITTER_RNG.random())


#: Retry policy used when callers pass none.
DEFAULT_RETRY = RetryPolicy()


def _drop_injected(site: str) -> bool:
    """Whether an armed ``drop-connection`` fault fired at ``site``."""
    rule = faults.maybe_fire(site)
    return rule is not None and rule.kind == "drop-connection"


class ServiceClient:
    """One connection to a running daemon (usable as a context manager)."""

    def __init__(self, socket_path: Optional[str] = None,
                 connect_timeout: float = 5.0,
                 read_timeout: Optional[float] = DEFAULT_READ_TIMEOUT,
                 retry: Optional[RetryPolicy] = None):
        self.socket_path = socket_path or default_socket_path()
        self._connect_timeout = connect_timeout
        self._read_timeout = read_timeout
        self.retry = retry or DEFAULT_RETRY
        self._sock: Optional[socket.socket] = None
        self._stream = None

    # -- connection ---------------------------------------------------
    def connect(self) -> "ServiceClient":
        if self._sock is not None:
            return self
        if _drop_injected("client.connect"):
            raise ServiceUnavailable(
                "no verification daemon on %s (injected connect fault)"
                % (self.socket_path,)
            )
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._connect_timeout)
        try:
            sock.connect(self.socket_path)
        except OSError as exc:
            sock.close()
            raise ServiceUnavailable(
                "no verification daemon on %s (%s); start one with 'repro serve'"
                % (self.socket_path, exc)
            ) from exc
        # Every read on the established connection keeps a deadline; verbs
        # that wait server-side (result) long-poll in chunks below it, so a
        # wedged daemon surfaces as ServiceTimeout instead of blocking
        # `repro submit` forever.
        sock.settimeout(self._read_timeout)
        self._sock = sock
        self._stream = sock.makefile("rwb")
        return self

    def connect_with_retry(self) -> "ServiceClient":
        """Connect, retrying per the policy with jittered backoff."""
        attempt = 1
        while True:
            try:
                return self.connect()
            except ServiceUnavailable:
                if attempt >= self.retry.attempts:
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1

    def close(self) -> None:
        if self._stream is not None:
            try:
                self._stream.close()
            except OSError:
                pass
            self._stream = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- raw protocol -------------------------------------------------
    def call(self, verb: str, read_timeout: Optional[float] = None,
             **fields) -> Dict[str, object]:
        """Send one verb, return the decoded response (``ok`` or not).

        ``read_timeout`` overrides the connection-wide read deadline for
        this exchange (the ``result`` long-poll stretches it per chunk).
        Raises :class:`ServiceTimeout` when the deadline expires and
        :class:`ServiceConnectionLost` when the established connection
        drops -- after either, the connection is closed (a half-read
        stream cannot be trusted for the next exchange).
        """
        self.connect()
        if read_timeout is not None:
            self._sock.settimeout(read_timeout)
        try:
            if _drop_injected("client.send"):
                raise BrokenPipeError("injected send fault")
            self._stream.write(protocol.encode(protocol.request_message(verb, **fields)))
            self._stream.flush()
            if _drop_injected("client.recv"):
                raise BrokenPipeError("injected recv fault")
            line = self._stream.readline()
        except socket.timeout as exc:
            self.close()
            raise ServiceTimeout(
                "daemon did not answer %r within %.1fs"
                % (verb, read_timeout if read_timeout is not None
                   else (self._read_timeout or 0.0))
            ) from exc
        except OSError as exc:
            self.close()
            raise ServiceConnectionLost("daemon connection lost: %s" % (exc,)) from exc
        else:
            if read_timeout is not None and self._sock is not None:
                self._sock.settimeout(self._read_timeout)
        if not line:
            self.close()
            raise ServiceConnectionLost("daemon closed the connection")
        return protocol.decode(line.rstrip(b"\n"))

    def request(self, verb: str, read_timeout: Optional[float] = None,
                **fields) -> Dict[str, object]:
        """Like :meth:`call`, but raises :class:`ServiceError` on ``ok: false``."""
        response = self.call(verb, read_timeout=read_timeout, **fields)
        if not response.get("ok"):
            raise _error_from_response(response)
        return response

    # -- verbs --------------------------------------------------------
    def ping(self) -> Dict[str, object]:
        return self.request("ping")

    def submit(self, request: Union[api.CheckRequest, Mapping[str, object]],
               deadline: Optional[float] = None,
               submit_key: Optional[str] = None,
               **extra) -> str:
        """Submit a check request; returns the daemon's job id.

        ``request`` may be a :class:`~repro.api.CheckRequest` or its dict
        form -- either way the daemon receives the one true schema.
        ``deadline`` (seconds) rides along as ``deadline_seconds`` and
        bounds the job end to end, engine budget included.  ``submit_key``
        makes the submit idempotent: retries carrying the same key are
        collapsed onto the original job daemon-side.  Connection-level
        failures are retried here with backoff, reusing the key.
        """
        payload = request.to_dict() if isinstance(request, api.CheckRequest) else dict(request)
        fields: Dict[str, object] = {"request": payload}
        fields["submit_key"] = submit_key or make_submit_key(payload)
        if deadline is not None:
            fields["deadline_seconds"] = float(deadline)
        fields.update(extra)
        attempt = 1
        while True:
            try:
                response = self.request("submit", **fields)
                return str(response["job_id"])
            except (ServiceUnavailable, ServiceConnectionLost):
                if attempt >= self.retry.attempts:
                    raise
                time.sleep(self.retry.delay(attempt))
                attempt += 1

    def status(self, job_id: str) -> Dict[str, object]:
        return dict(self.request("status", job_id=job_id)["job"])

    def result(self, job_id: str, wait: bool = True,
               timeout: Optional[float] = None) -> Dict[str, object]:
        """Fetch a job's outcome; with ``wait``, long-polls until done.

        The daemon-side wait happens in bounded chunks so every socket
        read keeps a deadline; ``timeout`` bounds the *total* wait and
        expires as :class:`ServiceTimeout`.
        """
        if not wait:
            return self.request("result", job_id=job_id, wait=False)
        started = time.monotonic()
        while True:
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.monotonic() - started)
                if remaining <= 0:
                    raise ServiceTimeout(
                        "job %s not finished within %.1fs" % (job_id, timeout))
            chunk = RESULT_POLL_SECONDS if remaining is None \
                else max(0.05, min(RESULT_POLL_SECONDS, remaining))
            response = self.call(
                "result", job_id=job_id, wait=True, timeout=chunk,
                read_timeout=chunk + max(5.0, chunk),
            )
            if response.get("ok"):
                return response
            # "still queued/running" chunk expiries loop; real errors raise.
            if response.get("state") in ("queued", "running"):
                continue
            raise _error_from_response(response)

    def cancel(self, job_id: str) -> Dict[str, object]:
        return self.request("cancel", job_id=job_id)

    def stats(self) -> Dict[str, object]:
        return dict(self.request("stats")["stats"])

    def shutdown(self, mode: str = "now") -> Dict[str, object]:
        """Ask the daemon to exit; ``mode="drain"`` finishes in-flight jobs.

        Either way every worker flushes its KB state before the daemon is
        gone; drain additionally refuses new submits (typed ``draining``
        cause) while in-flight jobs run to completion.
        """
        return self.request("shutdown", mode=mode)


def _error_from_response(response: Mapping[str, object]) -> ServiceError:
    """Map an ``ok: false`` response onto the typed error taxonomy."""
    message = str(response.get("error", "unknown service error"))
    cause = response.get("cause")
    state = response.get("state")
    if cause is not None or state in ("failed", "cancelled"):
        job_id = response.get("job_id")
        return JobFailure(
            message,
            job_id=None if job_id is None else str(job_id),
            state=None if state is None else str(state),
            cause=None if cause is None else str(cause),
        )
    return ServiceError(message)


def make_submit_key(payload: Mapping[str, object]) -> str:
    """A fresh idempotency key for one *logical* submit of ``payload``.

    Digest prefix + one-shot nonce: retries of the same logical submit
    reuse the key (and the daemon dedupes them onto one job), while two
    deliberate submissions of the same request get distinct keys and run
    twice -- warming benchmarks depend on that.
    """
    return "%s-%s" % (protocol.request_digest(payload)[:12], uuid.uuid4().hex[:8])


def service_available(socket_path: Optional[str] = None) -> bool:
    """Whether a daemon answers a ping on the socket."""
    try:
        with ServiceClient(socket_path) as client:
            client.ping()
        return True
    except (ServiceError, protocol.ProtocolError):
        return False


def check_in_process(request: api.CheckRequest,
                     deadline: Optional[float] = None) -> api.CheckReport:
    """The in-process fallback path, honouring the end-to-end deadline.

    The engine time budget is clamped exactly the way the daemon path
    clamps it worker-side (:func:`repro.api.clamp_to_deadline`), so
    ``--deadline`` bounds the solver whether or not a daemon answered.
    """
    return api.check(api.clamp_to_deadline(request, deadline))


def check_via_service(
    request: api.CheckRequest,
    socket_path: Optional[str] = None,
    fallback: bool = True,
    timeout: Optional[float] = None,
    deadline: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    read_timeout: Optional[float] = None,
    submit_key: Optional[str] = None,
) -> api.CheckReport:
    """Check a request through the daemon, or in-process when there is none.

    The returned report is tagged with its execution path (``source``:
    ``daemon`` / ``in-process``) and, when daemon-run, carries the worker's
    warm-path stats in ``service`` -- verdicts and traces are bit-identical
    either way, so callers never need to care which path answered.

    Failure semantics: the in-process fallback fires **only** on
    :class:`ServiceUnavailable` (nobody listening).  Once a daemon has
    answered, its errors propagate typed -- a failed job raises
    :class:`JobFailure` with its cause, a mid-wait connection loss is
    retried against the same daemon (the job id survives server-side) and
    raises :class:`ServiceConnectionLost` if the daemon is truly gone.
    A ``deadline`` bounds the whole round trip, solver included.
    """
    if not request.circuit.serializable:
        if fallback:
            return check_in_process(request, deadline)
        raise ServiceError(
            "an inline circuit cannot be submitted to a daemon; "
            "use a verilog/source/case circuit ref"
        )
    policy = retry or DEFAULT_RETRY
    wait_timeout = timeout
    if wait_timeout is None and deadline is not None:
        # The job's engine budget is clamped to the deadline worker-side;
        # the grace on top covers queueing and transport.
        wait_timeout = deadline + 30.0
    payload = request.to_dict()
    if submit_key is None:
        submit_key = make_submit_key(payload)
    try:
        client = ServiceClient(
            socket_path, retry=policy,
            read_timeout=DEFAULT_READ_TIMEOUT if read_timeout is None else read_timeout,
        ).connect_with_retry()
    except ServiceUnavailable:
        if fallback:
            return check_in_process(request, deadline)
        raise
    try:
        job_id = client.submit(payload, deadline=deadline, submit_key=submit_key)
        attempt = 1
        while True:
            try:
                response = client.result(job_id, wait=True, timeout=wait_timeout)
                break
            except ServiceConnectionLost:
                # The job lives on daemon-side; reconnect and re-poll it
                # rather than silently re-running the check locally.
                client.close()
                if attempt >= policy.attempts:
                    raise
                time.sleep(policy.delay(attempt))
                attempt += 1
                try:
                    client.connect_with_retry()
                except ServiceUnavailable as exc:
                    raise ServiceConnectionLost(
                        "daemon vanished while job %s was in flight: %s"
                        % (job_id, exc)
                    ) from exc
    finally:
        client.close()
    state = response.get("state")
    if state != "done":
        job_block = response.get("job")
        cause = None
        if isinstance(job_block, Mapping):
            cause = job_block.get("cause")
        raise JobFailure(
            "job %s finished as %s: %s"
            % (response.get("job_id"), state, response.get("error", "no cause given")),
            job_id=str(response.get("job_id")),
            state=None if state is None else str(state),
            cause=None if cause is None else str(cause),
        )
    report_payload = response.get("report")
    if not isinstance(report_payload, Mapping):
        raise ServiceError("daemon returned no report for a done job")
    report = api.CheckReport.from_dict(report_payload)
    service_block: Dict[str, object] = {"job": dict(response.get("job") or {})}
    stats = response.get("stats")
    if isinstance(stats, Mapping):
        service_block["worker"] = dict(stats)
    return replace(report, source="daemon", service=service_block)


__all__ = [
    "DEFAULT_READ_TIMEOUT",
    "DEFAULT_RETRY",
    "JobFailure",
    "RESULT_POLL_SECONDS",
    "RetryPolicy",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceConnectionLost",
    "ServiceError",
    "ServiceTimeout",
    "ServiceUnavailable",
    "check_in_process",
    "check_via_service",
    "default_socket_path",
    "make_submit_key",
    "service_available",
]
