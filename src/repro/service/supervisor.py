"""The asyncio supervisor of the verification service.

One daemon process owns a unix-socket listener and a fleet of per-circuit
worker processes (:mod:`repro.service.worker`):

* jobs are routed by **circuit fingerprint**
  (:func:`repro.kb.fingerprints.circuit_fingerprint`), so every check of the
  same design lands on the same worker and hits its warm unrolled-model
  cache, learned cubes and open KB handle;
* each worker runs jobs serially; the supervisor talks to it over a
  :mod:`multiprocessing` pipe pumped through ``asyncio.to_thread``, so one
  slow job never blocks the listener;
* a crashed worker is detected by pipe EOF: its running job is requeued
  once (``requeue_limit``) onto a fresh worker, then reported as a failure
  with the crash cause;
* jobs exceeding ``job_timeout`` abort (the worker is killed and respawned
  -- a wedged search cannot be interrupted politely);
* when the fleet exceeds ``max_workers``, the least-recently-used *idle*
  worker is retired gracefully -- a ``stop`` op that flushes its attached
  KB stores before exit, so eviction never loses learned facts.

The client-facing protocol is :mod:`repro.service.protocol`
(``repro-service/v1``); the check payload inside it is a verbatim
:class:`repro.api.CheckRequest` dict.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro import api
from repro.kb.fingerprints import circuit_fingerprint
from repro.portfolio.checker import fork_context
from repro.service import protocol
from repro.service.worker import worker_main


@dataclass
class ServiceOptions:
    """Tunables of one daemon instance."""

    #: unix socket the daemon listens on.
    socket_path: str
    #: resident per-circuit workers before LRU eviction kicks in.
    max_workers: int = 4
    #: wall-clock cap per job; ``None`` disables the watchdog.
    job_timeout: Optional[float] = None
    #: how often a job orphaned by a worker crash is retried before failing.
    requeue_limit: int = 1


class Job:
    """One submitted check request moving through the daemon."""

    def __init__(self, job_id: str, payload: Mapping[str, object],
                 fault: Optional[Mapping[str, object]] = None):
        self.job_id = job_id
        #: the CheckRequest dict, carried verbatim from submit to worker.
        self.payload = dict(payload)
        self.fault = dict(fault) if fault else None
        self.state = "queued"
        self.worker_key: Optional[str] = None
        self.attempts = 0
        self.requeues = 0
        self.error: Optional[str] = None
        self.report: Optional[Dict[str, object]] = None
        self.worker_stats: Optional[Dict[str, object]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = asyncio.Event()

    def finish(self, state: str, error: Optional[str] = None) -> None:
        self.state = state
        self.error = error
        self.finished_at = time.time()
        self.done.set()

    def describe(self) -> Dict[str, object]:
        """The ``status`` verb's job block."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "worker": self.worker_key,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            payload["started_at"] = self.started_at
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
            payload["wall_seconds"] = round(self.finished_at - self.submitted_at, 6)
        if self.error is not None:
            payload["error"] = self.error
        return payload


class WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, key: str):
        self.key = key
        self.queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self.proc = None
        self.conn = None
        self.runner: Optional[asyncio.Task] = None
        self.current: Optional[Job] = None
        self.jobs_done = 0
        self.restarts = 0
        self.last_stats: Optional[Dict[str, object]] = None
        self.last_active = time.time()

    @property
    def idle(self) -> bool:
        return self.current is None and self.queue.empty()


def _recv(conn):
    """Blocking pipe receive (runs inside ``asyncio.to_thread``)."""
    return conn.recv()


class Supervisor:
    """The daemon: listener, job table, and the per-circuit worker fleet."""

    def __init__(self, options: ServiceOptions):
        self.options = options
        context = fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("the verification service needs a POSIX fork context")
        self._context = context
        self.workers: "OrderedDict[str, WorkerHandle]" = OrderedDict()
        self.jobs: Dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self.counters = {
            "submitted": 0, "completed": 0, "failed": 0,
            "cancelled": 0, "requeued": 0,
        }
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._shutdown_requested = False
        self.shutdown_event = asyncio.Event()
        #: circuit-ref cache key -> worker key (avoids re-elaborating designs
        #: in the supervisor just to route repeat submissions).
        self._route_cache: Dict[tuple, str] = {}
        #: worker key -> human-readable circuit name (for stats).
        self._circuit_names: Dict[str, str] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        socket_path = self.options.socket_path
        directory = os.path.dirname(socket_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if os.path.exists(socket_path):
            os.unlink(socket_path)  # stale socket from an unclean exit
        self._server = await asyncio.start_unix_server(
            self._client_connected, path=socket_path, limit=protocol.MAX_LINE_BYTES,
        )

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` verb arrives, then stop cleanly."""
        await self.start()
        try:
            await self.shutdown_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for handle in list(self.workers.values()):
            await self._retire(handle)
        self.workers.clear()
        try:
            os.unlink(self.options.socket_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode(protocol.error_response(
                        None, "message exceeds %d bytes" % protocol.MAX_LINE_BYTES)))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line.rstrip(b"\n"))
                    verb, payload = protocol.parse_verb(message)
                    response = await self._dispatch(verb, payload)
                except protocol.ProtocolError as exc:
                    response = protocol.error_response(None, str(exc))
                except api.RequestError as exc:
                    response = protocol.error_response(None, "bad request: %s" % exc)
                except Exception as exc:  # pragma: no cover - defensive
                    response = protocol.error_response(None, "internal error: %s" % exc)
                writer.write(protocol.encode(response))
                await writer.drain()
                if self._shutdown_requested:
                    self.shutdown_event.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            # Close without awaiting: during shutdown this task is itself
            # cancelled by the server teardown and must not block on it.
            writer.close()

    async def _dispatch(self, verb: str, payload: Mapping[str, object]) -> Dict[str, object]:
        if verb == "ping":
            return protocol.ok_response(
                "ping", protocol=protocol.PROTOCOL, pid=os.getpid(),
                uptime_seconds=round(time.time() - self.started_at, 3),
            )
        if verb == "submit":
            return await self._verb_submit(payload)
        if verb == "status":
            job = self._job_for(payload)
            return protocol.ok_response("status", job=job.describe())
        if verb == "result":
            return await self._verb_result(payload)
        if verb == "cancel":
            return await self._verb_cancel(payload)
        if verb == "stats":
            return protocol.ok_response("stats", stats=self.stats())
        if verb == "shutdown":
            self._shutdown_requested = True
            return protocol.ok_response("shutdown", stats=self.stats())
        raise protocol.ProtocolError("unknown verb %r" % (verb,))  # pragma: no cover

    def _job_for(self, payload: Mapping[str, object]) -> Job:
        job_id = payload.get("job_id")
        job = self.jobs.get(str(job_id))
        if job is None:
            raise protocol.ProtocolError("unknown job %r" % (job_id,))
        return job

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def _verb_submit(self, payload: Mapping[str, object]) -> Dict[str, object]:
        request_payload = payload.get("request")
        if not isinstance(request_payload, Mapping):
            raise protocol.ProtocolError("submit needs a 'request' object")
        # Validate eagerly so a malformed request is rejected at submit time
        # (with a cause), not discovered as a failed job later.
        request = api.CheckRequest.from_dict(request_payload)
        worker_key = await self._worker_key_for(request)
        job = Job(
            "job-%d" % next(self._job_ids),
            request_payload,
            fault=payload.get("x_test_fault"),
        )
        job.worker_key = worker_key
        self.jobs[job.job_id] = job
        self.counters["submitted"] += 1
        handle = self._worker(worker_key)
        handle.queue.put_nowait(job)
        return protocol.ok_response(
            "submit", job_id=job.job_id, state=job.state, worker=worker_key,
        )

    async def _verb_result(self, payload: Mapping[str, object]) -> Dict[str, object]:
        job = self._job_for(payload)
        if payload.get("wait", True) and not job.done.is_set():
            timeout = payload.get("timeout")
            try:
                await asyncio.wait_for(
                    job.done.wait(), None if timeout is None else float(timeout)
                )
            except asyncio.TimeoutError:
                return protocol.error_response(
                    "result", "job %s still %s" % (job.job_id, job.state),
                    job_id=job.job_id, state=job.state,
                )
        response = protocol.ok_response(
            "result", job_id=job.job_id, state=job.state, job=job.describe(),
        )
        if job.report is not None:
            response["report"] = job.report
        if job.worker_stats is not None:
            response["stats"] = job.worker_stats
        if job.error is not None:
            response["error"] = job.error
        return response

    async def _verb_cancel(self, payload: Mapping[str, object]) -> Dict[str, object]:
        job = self._job_for(payload)
        if job.state == "queued":
            job.finish("cancelled", "cancelled while queued")
            self.counters["cancelled"] += 1
            return protocol.ok_response("cancel", job_id=job.job_id,
                                        cancelled=True, state=job.state)
        if job.state == "running":
            # Mark first so the runner's EOF handler knows this was deliberate,
            # then kill the worker (a wedged search has no polite interrupt).
            job.finish("cancelled", "cancelled while running")
            self.counters["cancelled"] += 1
            handle = self.workers.get(job.worker_key or "")
            if handle is not None:
                await asyncio.to_thread(self._kill_worker, handle)
            return protocol.ok_response("cancel", job_id=job.job_id,
                                        cancelled=True, state=job.state)
        return protocol.ok_response("cancel", job_id=job.job_id,
                                    cancelled=False, state=job.state)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _worker_key_for(self, request: api.CheckRequest) -> str:
        """Map a request onto its circuit-fingerprint worker key.

        The first submission of a design elaborates it once in the
        supervisor (in a thread, off the event loop) to compute the
        structural fingerprint; repeats are served from the route cache.
        """
        cache_key = request.circuit.cache_key()
        key = self._route_cache.get(cache_key)
        if key is not None:
            return key

        def compute():
            resolved = api.resolve_design(request.circuit)
            return ("%016x" % circuit_fingerprint(resolved.circuit),
                    resolved.circuit.name)

        key, circuit_name = await asyncio.to_thread(compute)
        self._route_cache[cache_key] = key
        self._circuit_names.setdefault(key, circuit_name)
        return key

    def _worker(self, key: str) -> WorkerHandle:
        handle = self.workers.get(key)
        if handle is None:
            self._evict_idle_workers(need_room=True)
            handle = WorkerHandle(key)
            self._spawn(handle)
            handle.runner = asyncio.get_running_loop().create_task(
                self._run_worker(handle)
            )
            self.workers[key] = handle
        self.workers.move_to_end(key)
        handle.last_active = time.time()
        return handle

    def _evict_idle_workers(self, need_room: bool = False) -> None:
        """Retire least-recently-used idle workers beyond the cap.

        Busy workers are never evicted; if everything is busy the fleet
        temporarily overshoots ``max_workers`` rather than dropping jobs.
        """
        budget = self.options.max_workers - (1 if need_room else 0)
        while len(self.workers) > budget:
            victim = next(
                (key for key, handle in self.workers.items() if handle.idle),
                None,
            )
            if victim is None:
                return
            handle = self.workers.pop(victim)
            if handle.runner is not None:
                handle.runner.cancel()
            asyncio.get_running_loop().create_task(self._retire(handle))

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _spawn(self, handle: WorkerHandle) -> None:
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(child, handle.key),
            name="repro-worker-%s" % handle.key[:8],
            daemon=True,
        )
        process.start()
        child.close()
        handle.conn = parent
        handle.proc = process

    def _kill_worker(self, handle: WorkerHandle) -> None:
        """Hard-stop a worker process (blocking; call via ``to_thread``)."""
        try:
            handle.conn.close()
        except (OSError, AttributeError):
            pass
        if handle.proc is not None and handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(5)

    def _stop_worker(self, handle: WorkerHandle, timeout: float = 15.0) -> None:
        """Graceful stop: the worker flushes its KB stores before exiting."""
        try:
            handle.conn.send({"op": "stop"})
            if handle.conn.poll(timeout):
                reply = handle.conn.recv()
                if isinstance(reply, dict) and reply.get("stats"):
                    handle.last_stats = reply["stats"]
        except (BrokenPipeError, EOFError, OSError):
            pass
        if handle.proc is not None:
            handle.proc.join(timeout)
            if handle.proc.is_alive():  # pragma: no cover - wedged worker
                handle.proc.kill()
                handle.proc.join(5)
        try:
            handle.conn.close()
        except (OSError, AttributeError):
            pass

    async def _retire(self, handle: WorkerHandle) -> None:
        if handle.runner is not None and not handle.runner.cancelled():
            handle.runner.cancel()
        await asyncio.to_thread(self._stop_worker, handle)

    async def _restart(self, handle: WorkerHandle) -> None:
        handle.restarts += 1
        await asyncio.to_thread(self._kill_worker, handle)
        if not self._closing:
            self._spawn(handle)

    # ------------------------------------------------------------------
    # The per-worker runner coroutine
    # ------------------------------------------------------------------
    async def _run_worker(self, handle: WorkerHandle) -> None:
        while True:
            job = await handle.queue.get()
            if job.state != "queued":
                continue  # cancelled while waiting
            job.state = "running"
            job.worker_key = handle.key
            job.started_at = time.time()
            job.attempts += 1
            handle.current = job
            try:
                message: Dict[str, object] = {
                    "op": "run", "job_id": job.job_id, "request": job.payload,
                }
                if job.fault is not None:
                    message["fault"] = job.fault
                await asyncio.to_thread(handle.conn.send, message)
                reply = await asyncio.wait_for(
                    asyncio.to_thread(_recv, handle.conn),
                    timeout=self.options.job_timeout,
                )
            except asyncio.TimeoutError:
                handle.current = None
                job.finish(
                    "failed",
                    "aborted: job exceeded the %.1fs service timeout"
                    % (self.options.job_timeout,),
                )
                self.counters["failed"] += 1
                await self._restart(handle)
                continue
            except (EOFError, OSError, BrokenPipeError):
                handle.current = None
                if job.state == "cancelled":
                    await self._restart(handle)
                    continue
                exit_code = handle.proc.exitcode if handle.proc is not None else None
                if job.requeues < self.options.requeue_limit:
                    job.requeues += 1
                    job.state = "queued"
                    self.counters["requeued"] += 1
                    await self._restart(handle)
                    handle.queue.put_nowait(job)
                else:
                    job.finish(
                        "failed",
                        "aborted: worker crashed (exit code %s) on attempt %d; "
                        "requeue limit %d reached"
                        % (exit_code, job.attempts, self.options.requeue_limit),
                    )
                    self.counters["failed"] += 1
                    await self._restart(handle)
                continue
            handle.current = None
            handle.last_active = time.time()
            if job.state == "cancelled":
                continue  # finished racing a cancel; the cancel wins
            op = reply.get("op") if isinstance(reply, dict) else None
            if op == "done":
                job.report = reply.get("report")
                job.worker_stats = reply.get("stats")
                handle.last_stats = reply.get("stats")
                handle.jobs_done += 1
                self.counters["completed"] += 1
                job.finish("done")
            elif op == "job-error":
                handle.last_stats = reply.get("stats")
                self.counters["failed"] += 1
                job.finish("failed", str(reply.get("error")))
            else:  # pragma: no cover - defensive
                self.counters["failed"] += 1
                job.finish("failed", "unexpected worker reply %r" % (op,))

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``stats`` verb payload (also embedded in shutdown replies)."""
        queued = sum(1 for job in self.jobs.values() if job.state == "queued")
        running = sum(1 for job in self.jobs.values() if job.state == "running")
        workers = []
        for key, handle in self.workers.items():
            block: Dict[str, object] = dict(handle.last_stats or {})
            block.update({
                "worker_key": key,
                "circuit": self._circuit_names.get(key),
                "alive": bool(handle.proc is not None and handle.proc.is_alive()),
                "busy": handle.current is not None,
                "queue_depth": handle.queue.qsize(),
                "jobs_done": handle.jobs_done,
                "restarts": handle.restarts,
                "idle_seconds": round(time.time() - handle.last_active, 3),
            })
            workers.append(block)
        jobs = dict(self.counters)
        jobs["queued"] = queued
        jobs["running"] = running
        return {
            "protocol": protocol.PROTOCOL,
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "max_workers": self.options.max_workers,
            "jobs": jobs,
            "workers": workers,
        }


async def serve(options: ServiceOptions) -> None:
    """Convenience entry point: run one supervisor until shutdown."""
    await Supervisor(options).serve_forever()


__all__ = ["Job", "ServiceOptions", "Supervisor", "WorkerHandle", "serve"]
