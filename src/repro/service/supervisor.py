"""The asyncio supervisor of the verification service.

One daemon process owns a unix-socket listener and a fleet of per-circuit
worker processes (:mod:`repro.service.worker`):

* jobs are routed by **circuit fingerprint**
  (:func:`repro.kb.fingerprints.circuit_fingerprint`), so every check of the
  same design lands on the same worker and hits its warm unrolled-model
  cache, learned cubes and open KB handle;
* each worker runs jobs serially; the supervisor talks to it over a
  :mod:`multiprocessing` pipe pumped through ``asyncio.to_thread``, so one
  slow job never blocks the listener;
* a crashed worker is detected by pipe EOF: its running job is requeued
  once (``requeue_limit``) onto a fresh worker, then reported as a failure
  with the crash cause;
* when the fleet exceeds ``max_workers``, the least-recently-used *idle*
  worker is retired gracefully -- a ``stop`` op that flushes its attached
  KB stores before exit, so eviction never loses learned facts.

Hardening (PR 8) -- the failure-handling duties on top of that core:

* **heartbeats + hung-worker watchdog**: workers heartbeat every
  ``heartbeat_interval`` while running; a worker silent for
  ``hang_timeout`` is killed as *hung* (typed cause ``watchdog``) --
  a deadline distinct from the job timeout, so a legitimately long solve
  that still heartbeats is never shot;
* **job timeout and end-to-end deadlines**: ``job_timeout`` caps any job;
  a client-supplied ``deadline_seconds`` additionally bounds one job end
  to end and is forwarded to the worker, which folds it into the engine
  budget (typed cause ``timeout`` either way);
* **poison-job quarantine**: a request digest that kills workers
  ``quarantine_limit`` times is failed typed (``quarantined``) and
  refused on resubmit, instead of burning fresh workers forever;
* **idempotent resubmit**: retried submits carrying the same
  ``submit_key`` collapse onto the original job;
* **graceful drain**: SIGTERM (or ``shutdown`` with ``mode: "drain"``)
  finishes in-flight jobs, refuses new submits with the typed
  ``draining`` cause, flushes every worker's KB stores and exits 0;
* **RSS watermarks** ride with the worker config: workers degrade
  (evict caches, flush KB) at the soft watermark and ask to be retired at
  the hard one -- the supervisor respawns them cold;
* fault-injection site ``supervisor.dispatch`` (:mod:`repro.faults`)
  covers the dispatch path itself (typed cause ``injected``).

The client-facing protocol is :mod:`repro.service.protocol`
(``repro-service/v1``); the check payload inside it is a verbatim
:class:`repro.api.CheckRequest` dict.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import signal
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Set

from repro import api, faults
from repro.kb.fingerprints import circuit_fingerprint
from repro.portfolio.checker import fork_context
from repro.service import protocol
from repro.service.worker import worker_main


@dataclass
class ServiceOptions:
    """Tunables of one daemon instance."""

    #: unix socket the daemon listens on.
    socket_path: str
    #: resident per-circuit workers before LRU eviction kicks in.
    max_workers: int = 4
    #: wall-clock cap per job; ``None`` disables it.
    job_timeout: Optional[float] = None
    #: how often a job orphaned by a worker crash is retried before failing.
    requeue_limit: int = 1
    #: how often running workers heartbeat to the supervisor.
    heartbeat_interval: float = 1.0
    #: a running worker silent this long is killed as hung (the watchdog);
    #: ``None`` disables it.  Distinct from ``job_timeout``: a slow job
    #: heartbeats and lives, a wedged worker does not and dies.
    hang_timeout: Optional[float] = 30.0
    #: a request digest that kills workers this often is quarantined.
    quarantine_limit: int = 3
    #: worker RSS watermarks (bytes): degrade at soft, retire at hard.
    rss_soft_bytes: Optional[int] = None
    rss_hard_bytes: Optional[int] = None


class Job:
    """One submitted check request moving through the daemon."""

    def __init__(self, job_id: str, payload: Mapping[str, object],
                 digest: Optional[str] = None,
                 submit_key: Optional[str] = None,
                 deadline_seconds: Optional[float] = None):
        self.job_id = job_id
        #: the CheckRequest dict, carried verbatim from submit to worker.
        self.payload = dict(payload)
        #: canonical request identity (quarantine key).
        self.digest = digest or protocol.request_digest(self.payload)
        #: client idempotency key; resubmits with it dedupe onto this job.
        self.submit_key = submit_key
        #: end-to-end wall-clock budget from submission, if any.
        self.deadline_seconds = deadline_seconds
        self.state = "queued"
        self.worker_key: Optional[str] = None
        self.attempts = 0
        self.requeues = 0
        self.error: Optional[str] = None
        #: typed failure cause (one of protocol.FAILURE_CAUSES) when failed.
        self.cause: Optional[str] = None
        self.report: Optional[Dict[str, object]] = None
        self.worker_stats: Optional[Dict[str, object]] = None
        self.submitted_at = time.time()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.done = asyncio.Event()

    def finish(self, state: str, error: Optional[str] = None,
               cause: Optional[str] = None) -> None:
        self.state = state
        self.error = error
        self.cause = cause
        self.finished_at = time.time()
        self.done.set()

    def deadline_remaining(self) -> Optional[float]:
        """Seconds left of the end-to-end deadline, or ``None`` without one."""
        if self.deadline_seconds is None:
            return None
        return self.deadline_seconds - (time.time() - self.submitted_at)

    def describe(self) -> Dict[str, object]:
        """The ``status`` verb's job block."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "state": self.state,
            "worker": self.worker_key,
            "attempts": self.attempts,
            "requeues": self.requeues,
            "submitted_at": self.submitted_at,
        }
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.started_at is not None:
            payload["started_at"] = self.started_at
        if self.finished_at is not None:
            payload["finished_at"] = self.finished_at
            payload["wall_seconds"] = round(self.finished_at - self.submitted_at, 6)
        if self.error is not None:
            payload["error"] = self.error
        if self.cause is not None:
            payload["cause"] = self.cause
        return payload


class WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    def __init__(self, key: str):
        self.key = key
        self.queue: "asyncio.Queue[Job]" = asyncio.Queue()
        self.proc = None
        self.conn = None
        self.runner: Optional[asyncio.Task] = None
        self.current: Optional[Job] = None
        self.jobs_done = 0
        self.restarts = 0
        self.last_stats: Optional[Dict[str, object]] = None
        self.last_active = time.time()
        #: last heartbeat-reported RSS, for the stats verb.
        self.rss_bytes: Optional[int] = None
        #: cumulative degradations already folded into the counters.
        self.degradations_seen = 0

    @property
    def idle(self) -> bool:
        return self.current is None and self.queue.empty()


def _recv(conn):
    """Blocking pipe receive (runs inside ``asyncio.to_thread``)."""
    return conn.recv()


class Supervisor:
    """The daemon: listener, job table, and the per-circuit worker fleet."""

    def __init__(self, options: ServiceOptions):
        self.options = options
        context = fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            raise RuntimeError("the verification service needs a POSIX fork context")
        self._context = context
        self.workers: "OrderedDict[str, WorkerHandle]" = OrderedDict()
        self.jobs: Dict[str, Job] = {}
        self._job_ids = itertools.count(1)
        self.counters = {
            "submitted": 0, "completed": 0, "failed": 0,
            "cancelled": 0, "requeued": 0, "retries": 0,
            "quarantined": 0, "watchdog_kills": 0, "timeouts": 0,
            "degradations": 0,
        }
        self.started_at = time.time()
        self._server: Optional[asyncio.AbstractServer] = None
        self._closing = False
        self._shutdown_requested = False
        self._draining = False
        self.shutdown_event = asyncio.Event()
        #: circuit-ref cache key -> worker key (avoids re-elaborating designs
        #: in the supervisor just to route repeat submissions).
        self._route_cache: Dict[tuple, str] = {}
        #: worker key -> human-readable circuit name (for stats).
        self._circuit_names: Dict[str, str] = {}
        #: request digest -> how often it killed a worker (crash or hang).
        self._kill_counts: Dict[str, int] = {}
        #: digests refused as poison jobs.
        self._quarantine: Set[str] = set()
        #: submit_key -> job_id, for idempotent resubmits.
        self._submit_keys: Dict[str, str] = {}
        self._drain_task: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        socket_path = self.options.socket_path
        directory = os.path.dirname(socket_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if os.path.exists(socket_path):
            os.unlink(socket_path)  # stale socket from an unclean exit
        self._server = await asyncio.start_unix_server(
            self._client_connected, path=socket_path, limit=protocol.MAX_LINE_BYTES,
        )
        self._install_signal_handlers()

    def _install_signal_handlers(self) -> None:
        """SIGTERM means drain, not die mid-job.

        Installation is best-effort: event loops in non-main threads (the
        test harness) cannot own signal handlers, and that is fine -- the
        ``shutdown`` verb's drain mode covers them.
        """
        try:
            loop = asyncio.get_running_loop()
            loop.add_signal_handler(signal.SIGTERM, self.begin_drain)
        except (NotImplementedError, ValueError, RuntimeError, OSError):
            pass

    async def serve_forever(self) -> None:
        """Run until a ``shutdown`` verb (or drain) completes, then stop."""
        await self.start()
        try:
            await self.shutdown_event.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for handle in list(self.workers.values()):
            await self._retire(handle)
        self.workers.clear()
        try:
            os.unlink(self.options.socket_path)
        except OSError:
            pass

    # -- drain ---------------------------------------------------------
    def begin_drain(self) -> None:
        """Stop accepting work, finish what is in flight, then shut down.

        Every in-flight (queued or running) job runs to completion and
        every worker flushes its KB stores on retirement -- the daemon
        exits with nothing lost and nothing half-done.
        """
        if self._draining or self._closing:
            return
        self._draining = True
        loop = asyncio.get_running_loop()
        self._drain_task = loop.create_task(self._drain_and_stop())

    async def _drain_and_stop(self) -> None:
        # Submits are refused from the moment _draining flips, so this
        # snapshot of unfinished jobs is complete (requeues reuse the
        # same Job objects and stay covered).
        pending = [job for job in self.jobs.values() if not job.done.is_set()]
        if pending:
            await asyncio.wait([
                asyncio.ensure_future(job.done.wait()) for job in pending
            ])
        self.shutdown_event.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _client_connected(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode(protocol.error_response(
                        None, "message exceeds %d bytes" % protocol.MAX_LINE_BYTES)))
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    message = protocol.decode(line.rstrip(b"\n"))
                    verb, payload = protocol.parse_verb(message)
                    response = await self._dispatch(verb, payload)
                except protocol.ProtocolError as exc:
                    response = protocol.error_response(None, str(exc))
                except faults.InjectedFault as exc:
                    response = protocol.error_response(
                        None, "injected fault at %s" % exc.site, cause="injected")
                except api.RequestError as exc:
                    response = protocol.error_response(None, "bad request: %s" % exc)
                except Exception as exc:  # pragma: no cover - defensive
                    response = protocol.error_response(None, "internal error: %s" % exc)
                writer.write(protocol.encode(response))
                await writer.drain()
                if self._shutdown_requested:
                    self.shutdown_event.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server teardown cancels connection tasks mid-read; returning
            # (rather than re-raising) keeps asyncio's stream callbacks from
            # logging the cancellation as an error during shutdown.
            pass
        finally:
            # Close without awaiting: during shutdown this task is itself
            # cancelled by the server teardown and must not block on it.
            writer.close()

    async def _dispatch(self, verb: str, payload: Mapping[str, object]) -> Dict[str, object]:
        faults.maybe_fire("supervisor.dispatch")
        if verb == "ping":
            return protocol.ok_response(
                "ping", protocol=protocol.PROTOCOL, pid=os.getpid(),
                uptime_seconds=round(time.time() - self.started_at, 3),
                draining=self._draining,
            )
        if verb == "submit":
            return await self._verb_submit(payload)
        if verb == "status":
            job = self._job_for(payload)
            return protocol.ok_response("status", job=job.describe())
        if verb == "result":
            return await self._verb_result(payload)
        if verb == "cancel":
            return await self._verb_cancel(payload)
        if verb == "stats":
            return protocol.ok_response("stats", stats=self.stats())
        if verb == "shutdown":
            return self._verb_shutdown(payload)
        raise protocol.ProtocolError("unknown verb %r" % (verb,))  # pragma: no cover

    def _verb_shutdown(self, payload: Mapping[str, object]) -> Dict[str, object]:
        mode = payload.get("mode", "now")
        if mode == "drain":
            self.begin_drain()
            return protocol.ok_response("shutdown", mode="drain",
                                        draining=True, stats=self.stats())
        if mode != "now":
            raise protocol.ProtocolError("unknown shutdown mode %r" % (mode,))
        self._shutdown_requested = True
        return protocol.ok_response("shutdown", mode="now", stats=self.stats())

    def _job_for(self, payload: Mapping[str, object]) -> Job:
        job_id = payload.get("job_id")
        job = self.jobs.get(str(job_id))
        if job is None:
            raise protocol.ProtocolError("unknown job %r" % (job_id,))
        return job

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def _verb_submit(self, payload: Mapping[str, object]) -> Dict[str, object]:
        if self._draining or self._closing:
            return protocol.error_response(
                "submit", "daemon is draining and refuses new submits",
                cause="draining",
            )
        request_payload = payload.get("request")
        if not isinstance(request_payload, Mapping):
            raise protocol.ProtocolError("submit needs a 'request' object")
        # Validate eagerly so a malformed request is rejected at submit time
        # (with a cause), not discovered as a failed job later.
        request = api.CheckRequest.from_dict(request_payload)
        digest = protocol.request_digest(request_payload)
        if digest in self._quarantine:
            return protocol.error_response(
                "submit",
                "request %s is quarantined: it killed %d workers"
                % (digest[:12], self._kill_counts.get(digest, 0)),
                cause="quarantined", digest=digest,
            )
        submit_key = payload.get("submit_key")
        if submit_key is not None:
            existing_id = self._submit_keys.get(str(submit_key))
            existing = self.jobs.get(existing_id) if existing_id else None
            if existing is not None and existing.state not in ("failed", "cancelled"):
                # An idempotent retry of a submit whose response was lost:
                # same logical job, do not run it twice.
                self.counters["retries"] += 1
                return protocol.ok_response(
                    "submit", job_id=existing.job_id, state=existing.state,
                    worker=existing.worker_key, deduplicated=True,
                )
        worker_key = await self._worker_key_for(request)
        deadline = payload.get("deadline_seconds")
        job = Job(
            "job-%d" % next(self._job_ids),
            request_payload,
            digest=digest,
            submit_key=None if submit_key is None else str(submit_key),
            deadline_seconds=None if deadline is None else float(deadline),
        )
        job.worker_key = worker_key
        self.jobs[job.job_id] = job
        if job.submit_key is not None:
            self._submit_keys[job.submit_key] = job.job_id
        self.counters["submitted"] += 1
        handle = self._worker(worker_key)
        handle.queue.put_nowait(job)
        return protocol.ok_response(
            "submit", job_id=job.job_id, state=job.state, worker=worker_key,
        )

    async def _verb_result(self, payload: Mapping[str, object]) -> Dict[str, object]:
        job = self._job_for(payload)
        if payload.get("wait", True) and not job.done.is_set():
            timeout = payload.get("timeout")
            try:
                await asyncio.wait_for(
                    job.done.wait(), None if timeout is None else float(timeout)
                )
            except asyncio.TimeoutError:
                return protocol.error_response(
                    "result", "job %s still %s" % (job.job_id, job.state),
                    job_id=job.job_id, state=job.state,
                )
        response = protocol.ok_response(
            "result", job_id=job.job_id, state=job.state, job=job.describe(),
        )
        if job.report is not None:
            response["report"] = job.report
        if job.worker_stats is not None:
            response["stats"] = job.worker_stats
        if job.error is not None:
            response["error"] = job.error
        if job.cause is not None:
            response["cause"] = job.cause
        return response

    async def _verb_cancel(self, payload: Mapping[str, object]) -> Dict[str, object]:
        job = self._job_for(payload)
        if job.state == "queued":
            job.finish("cancelled", "cancelled while queued", cause="cancelled")
            self.counters["cancelled"] += 1
            return protocol.ok_response("cancel", job_id=job.job_id,
                                        cancelled=True, state=job.state)
        if job.state == "running":
            # Mark first so the runner's EOF handler knows this was deliberate,
            # then kill the worker (a wedged search has no polite interrupt).
            job.finish("cancelled", "cancelled while running", cause="cancelled")
            self.counters["cancelled"] += 1
            handle = self.workers.get(job.worker_key or "")
            if handle is not None:
                await asyncio.to_thread(self._kill_worker, handle)
            return protocol.ok_response("cancel", job_id=job.job_id,
                                        cancelled=True, state=job.state)
        return protocol.ok_response("cancel", job_id=job.job_id,
                                    cancelled=False, state=job.state)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _worker_key_for(self, request: api.CheckRequest) -> str:
        """Map a request onto its circuit-fingerprint worker key.

        The first submission of a design elaborates it once in the
        supervisor (in a thread, off the event loop) to compute the
        structural fingerprint; repeats are served from the route cache.
        """
        cache_key = request.circuit.cache_key()
        key = self._route_cache.get(cache_key)
        if key is not None:
            return key

        def compute():
            resolved = api.resolve_design(request.circuit)
            return ("%016x" % circuit_fingerprint(resolved.circuit),
                    resolved.circuit.name)

        key, circuit_name = await asyncio.to_thread(compute)
        self._route_cache[cache_key] = key
        self._circuit_names.setdefault(key, circuit_name)
        return key

    def _worker(self, key: str) -> WorkerHandle:
        handle = self.workers.get(key)
        if handle is None:
            self._evict_idle_workers(need_room=True)
            handle = WorkerHandle(key)
            self._spawn(handle)
            handle.runner = asyncio.get_running_loop().create_task(
                self._run_worker(handle)
            )
            self.workers[key] = handle
        self.workers.move_to_end(key)
        handle.last_active = time.time()
        return handle

    def _evict_idle_workers(self, need_room: bool = False) -> None:
        """Retire least-recently-used idle workers beyond the cap.

        Busy workers are never evicted; if everything is busy the fleet
        temporarily overshoots ``max_workers`` rather than dropping jobs.
        """
        budget = self.options.max_workers - (1 if need_room else 0)
        while len(self.workers) > budget:
            victim = next(
                (key for key, handle in self.workers.items() if handle.idle),
                None,
            )
            if victim is None:
                return
            handle = self.workers.pop(victim)
            if handle.runner is not None:
                handle.runner.cancel()
            asyncio.get_running_loop().create_task(self._retire(handle))

    # ------------------------------------------------------------------
    # Worker processes
    # ------------------------------------------------------------------
    def _worker_config(self) -> Dict[str, object]:
        return {
            "heartbeat_interval": self.options.heartbeat_interval,
            "rss_soft_bytes": self.options.rss_soft_bytes,
            "rss_hard_bytes": self.options.rss_hard_bytes,
        }

    def _spawn(self, handle: WorkerHandle) -> None:
        parent, child = self._context.Pipe()
        process = self._context.Process(
            target=worker_main,
            args=(child, handle.key, self._worker_config()),
            name="repro-worker-%s" % handle.key[:8],
            daemon=True,
        )
        process.start()
        child.close()
        handle.conn = parent
        handle.proc = process

    def _kill_worker(self, handle: WorkerHandle) -> None:
        """Hard-stop a worker process (blocking; call via ``to_thread``)."""
        try:
            handle.conn.close()
        except (OSError, AttributeError):
            pass
        if handle.proc is not None and handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(5)

    def _stop_worker(self, handle: WorkerHandle, timeout: float = 15.0) -> None:
        """Graceful stop: the worker flushes its KB stores before exiting."""
        try:
            handle.conn.send({"op": "stop"})
            deadline = time.time() + timeout
            while handle.conn.poll(max(0.0, deadline - time.time())):
                reply = handle.conn.recv()
                if not isinstance(reply, dict):
                    continue
                if reply.get("op") == "heartbeat":
                    continue  # a stop can race the end of a running job
                if reply.get("stats"):
                    handle.last_stats = reply["stats"]
                if reply.get("op") == "stopped":
                    break
        except (BrokenPipeError, EOFError, OSError):
            pass
        if handle.proc is not None:
            handle.proc.join(timeout)
            if handle.proc.is_alive():  # pragma: no cover - wedged worker
                handle.proc.kill()
                handle.proc.join(5)
        try:
            handle.conn.close()
        except (OSError, AttributeError):
            pass

    async def _retire(self, handle: WorkerHandle) -> None:
        if handle.runner is not None and not handle.runner.cancelled():
            handle.runner.cancel()
        await asyncio.to_thread(self._stop_worker, handle)
        self._fold_degradations(handle, handle.last_stats)

    async def _restart(self, handle: WorkerHandle) -> None:
        handle.restarts += 1
        await asyncio.to_thread(self._kill_worker, handle)
        if not self._closing:
            self._spawn(handle)

    def _note_worker_kill(self, job: Job) -> bool:
        """Record that ``job``'s digest killed a worker; True when quarantined."""
        count = self._kill_counts.get(job.digest, 0) + 1
        self._kill_counts[job.digest] = count
        if count >= self.options.quarantine_limit:
            self._quarantine.add(job.digest)
            return True
        return False

    def _fold_degradations(self, handle: WorkerHandle,
                           stats: Optional[Mapping[str, object]]) -> None:
        """Fold a worker's cumulative degradation count into the counters.

        Workers report lifetime totals; the delta since the last report is
        what the daemon-wide counter accumulates (and it survives the
        worker's retirement, unlike the per-worker stats block).
        """
        if not isinstance(stats, Mapping):
            return
        total = stats.get("degradations")
        if isinstance(total, int) and total > handle.degradations_seen:
            self.counters["degradations"] += total - handle.degradations_seen
            handle.degradations_seen = total

    # ------------------------------------------------------------------
    # The per-worker runner coroutine
    # ------------------------------------------------------------------
    async def _await_result(self, handle: WorkerHandle, job: Job):
        """Pump the worker pipe until a job result, a timeout or a hang.

        Returns ``("reply", message)``, ``("timeout", None)`` (the job's
        wall-clock budget -- service timeout or end-to-end deadline --
        expired) or ``("watchdog", None)`` (no message of any kind within
        ``hang_timeout``: the worker is wedged, not slow).  Pipe EOF and
        errors propagate to the caller's crash handling.
        """
        started = time.monotonic()
        last_message = started
        budget = self.options.job_timeout
        remaining_deadline = job.deadline_remaining()
        if remaining_deadline is not None:
            budget = remaining_deadline if budget is None \
                else min(budget, remaining_deadline)
        while True:
            now = time.monotonic()
            waits = []
            if budget is not None:
                waits.append(budget - (now - started))
            if self.options.hang_timeout is not None:
                waits.append(self.options.hang_timeout - (now - last_message))
            wait = min(waits) if waits else None
            if wait is not None and wait <= 0:
                budget_left = None if budget is None else budget - (now - started)
                if budget_left is not None and budget_left <= 0:
                    return ("timeout", None)
                return ("watchdog", None)
            try:
                reply = await asyncio.wait_for(
                    asyncio.to_thread(_recv, handle.conn), timeout=wait,
                )
            except asyncio.TimeoutError:
                continue  # loop re-derives which deadline expired
            if isinstance(reply, dict) and reply.get("op") == "heartbeat":
                last_message = time.monotonic()
                rss = reply.get("rss_bytes")
                if isinstance(rss, int):
                    handle.rss_bytes = rss
                continue
            return ("reply", reply)

    async def _run_worker(self, handle: WorkerHandle) -> None:
        while True:
            job = await handle.queue.get()
            if job.state != "queued":
                continue  # cancelled while waiting
            remaining = job.deadline_remaining()
            if remaining is not None and remaining <= 0:
                job.finish(
                    "failed",
                    "aborted: %.1fs end-to-end deadline expired before dispatch"
                    % (job.deadline_seconds,),
                    cause="timeout",
                )
                self.counters["failed"] += 1
                self.counters["timeouts"] += 1
                continue
            job.state = "running"
            job.worker_key = handle.key
            job.started_at = time.time()
            job.attempts += 1
            handle.current = job
            try:
                message: Dict[str, object] = {
                    "op": "run", "job_id": job.job_id, "request": job.payload,
                }
                if remaining is not None:
                    message["deadline_seconds"] = remaining
                await asyncio.to_thread(handle.conn.send, message)
                outcome, reply = await self._await_result(handle, job)
            except (EOFError, OSError, BrokenPipeError):
                handle.current = None
                if job.state == "cancelled":
                    await self._restart(handle)
                    continue
                exit_code = None
                if handle.proc is not None:
                    # Pipe EOF can beat process reaping; join briefly so the
                    # reported exit code is the real one, not None.
                    await asyncio.to_thread(handle.proc.join, 5)
                    exit_code = handle.proc.exitcode
                await self._handle_worker_death(handle, job, exit_code)
                continue
            if outcome == "timeout":
                handle.current = None
                budget = self.options.job_timeout
                deadline = job.deadline_seconds
                if deadline is not None and (budget is None or deadline < budget):
                    detail = "%.1fs end-to-end deadline" % deadline
                else:
                    detail = "%.1fs service timeout" % budget
                job.finish("failed", "aborted: job exceeded the %s" % detail,
                           cause="timeout")
                self.counters["failed"] += 1
                self.counters["timeouts"] += 1
                await self._restart(handle)
                continue
            if outcome == "watchdog":
                handle.current = None
                self.counters["watchdog_kills"] += 1
                quarantined = self._note_worker_kill(job)
                job.finish(
                    "failed",
                    "aborted: worker sent no heartbeat for %.1fs; killed as hung"
                    % (self.options.hang_timeout,),
                    cause="quarantined" if quarantined else "watchdog",
                )
                if quarantined:
                    self.counters["quarantined"] += 1
                self.counters["failed"] += 1
                await self._restart(handle)
                continue
            handle.current = None
            handle.last_active = time.time()
            if job.state == "cancelled":
                continue  # finished racing a cancel; the cancel wins
            op = reply.get("op") if isinstance(reply, dict) else None
            if op == "done":
                job.report = reply.get("report")
                job.worker_stats = reply.get("stats")
                handle.last_stats = reply.get("stats")
                self._fold_degradations(handle, handle.last_stats)
                handle.jobs_done += 1
                self.counters["completed"] += 1
                job.finish("done")
            elif op == "job-error":
                handle.last_stats = reply.get("stats")
                self._fold_degradations(handle, handle.last_stats)
                self.counters["failed"] += 1
                job.finish("failed", str(reply.get("error")), cause="job-error")
            else:  # pragma: no cover - defensive
                self.counters["failed"] += 1
                job.finish("failed", "unexpected worker reply %r" % (op,),
                           cause="crash")
            if isinstance(reply, dict) and reply.get("retiring"):
                # The worker hit its hard RSS watermark, flushed its KB
                # state and exited after answering; respawn it cold.
                await self._restart(handle)

    async def _handle_worker_death(self, handle: WorkerHandle, job: Job,
                                   exit_code) -> None:
        """Crash path: quarantine poison jobs, requeue the rest once."""
        quarantined = self._note_worker_kill(job)
        if quarantined:
            job.finish(
                "failed",
                "quarantined: request killed %d workers (limit %d); "
                "last exit code %s"
                % (self._kill_counts[job.digest],
                   self.options.quarantine_limit, exit_code),
                cause="quarantined",
            )
            self.counters["quarantined"] += 1
            self.counters["failed"] += 1
            await self._restart(handle)
            return
        if job.requeues < self.options.requeue_limit:
            job.requeues += 1
            job.state = "queued"
            self.counters["requeued"] += 1
            await self._restart(handle)
            handle.queue.put_nowait(job)
            return
        job.finish(
            "failed",
            "aborted: worker crashed (exit code %s) on attempt %d; "
            "requeue limit %d reached"
            % (exit_code, job.attempts, self.options.requeue_limit),
            cause="crash",
        )
        self.counters["failed"] += 1
        await self._restart(handle)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The ``stats`` verb payload (also embedded in shutdown replies)."""
        queued = sum(1 for job in self.jobs.values() if job.state == "queued")
        running = sum(1 for job in self.jobs.values() if job.state == "running")
        workers = []
        for key, handle in self.workers.items():
            block: Dict[str, object] = dict(handle.last_stats or {})
            block.update({
                "worker_key": key,
                "circuit": self._circuit_names.get(key),
                "alive": bool(handle.proc is not None and handle.proc.is_alive()),
                "busy": handle.current is not None,
                "queue_depth": handle.queue.qsize(),
                "jobs_done": handle.jobs_done,
                "restarts": handle.restarts,
                "idle_seconds": round(time.time() - handle.last_active, 3),
            })
            if handle.proc is not None and handle.proc.pid is not None:
                block["pid"] = handle.proc.pid
            if handle.rss_bytes is not None:
                block.setdefault("rss_bytes", handle.rss_bytes)
            workers.append(block)
        jobs = dict(self.counters)
        jobs["queued"] = queued
        jobs["running"] = running
        resilience = {
            "retries": self.counters["retries"],
            "requeued": self.counters["requeued"],
            "quarantined": self.counters["quarantined"],
            "quarantined_digests": sorted(self._quarantine),
            "watchdog_kills": self.counters["watchdog_kills"],
            "timeouts": self.counters["timeouts"],
            "degradations": self.counters["degradations"],
            "draining": self._draining,
        }
        return {
            "protocol": protocol.PROTOCOL,
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "max_workers": self.options.max_workers,
            "jobs": jobs,
            "workers": workers,
            "resilience": resilience,
        }


async def serve(options: ServiceOptions) -> None:
    """Convenience entry point: run one supervisor until shutdown."""
    await Supervisor(options).serve_forever()


__all__ = ["Job", "ServiceOptions", "Supervisor", "WorkerHandle", "serve"]
