"""Client-side shard router over a fleet of verification daemons.

One daemon (:mod:`repro.service.supervisor`) already keeps per-circuit
worker processes warm.  A *fleet* is N such daemons, each on its own unix
socket with its own knowledge-base store; this module is the client half
that makes them behave like one service:

* **sticky sharding** -- every job is assigned by rendezvous (highest
  random weight) hashing of its circuit's *structural fingerprint*
  (:func:`repro.kb.fingerprints.circuit_fingerprint`), so all checks of a
  design keep landing on the shard that already holds its warm unrolled
  models, ESTG state and learned KB cubes.  Rendezvous hashing has the
  property the failover contract needs: removing one endpoint never
  reorders the remaining ones, so a dead shard's jobs move to their
  *second* choice and everyone else's jobs stay put -- no rehash scatter;
* **health-checked routing** -- each endpoint carries circuit-breaker
  state: ``trip_threshold`` consecutive connection-level failures trip it,
  a tripped endpoint is skipped until ``cooldown`` elapses, then one
  half-open ``ping`` probe decides whether it rejoins.  Draining endpoints
  (``repro serve`` handling SIGTERM) are routed around without tripping;
* **deterministic failover** -- a job whose endpoint is down is resubmitted
  to the next endpoint in *its own* rendezvous order, reusing the same
  idempotent ``submit_key``, so retries collapse daemon-side and verdicts
  stay bit-identical to a single-daemon run;
* **hedged submits** -- with ``hedge_after`` set, a straggling shard gets a
  backup submit to the next endpoint after that many seconds; first answer
  wins (``hedges_won`` counts the backups that did);
* **anti-entropy** -- shards learn independently; :func:`sync_stores`
  pairwise-merges their sqlite stores with the commuting KB merge
  semantics (union cubes / max hits / add-only memos), and the router can
  trigger the same merge after a failover so the takeover shard inherits
  what the dead one had learned.

Fault sites ``fleet.route``, ``fleet.probe`` and ``fleet.hedge`` hook the
deterministic injector (:mod:`repro.faults`); they are inert unless a
fault plan is armed.

The semantics contract of :func:`repro.service.client.check_via_service`
is preserved fleet-wide: once *any* daemon has answered, its answer stands
-- a failed job raises :class:`~repro.service.client.JobFailure` untouched
(except the typed ``draining`` cause, which is an explicit "go elsewhere").
Only connection-level unavailability moves a job along the failover chain,
and only when the whole chain is exhausted does the in-process fallback
(deadline-clamped, same verdicts) run.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import (Callable, Dict, Iterable, List, Mapping, Optional,
                    Sequence, Tuple)

from repro import api, faults
from repro.service.client import (
    JobFailure,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    check_in_process,
    check_via_service,
    make_submit_key,
)

#: Environment variable listing endpoints (comma-separated specs, each
#: ``[name=]socket[;kb=store.sqlite]``) when no ``--endpoint`` flags given.
ENDPOINTS_ENV = "REPRO_SERVICE_ENDPOINTS"

#: Environment variable naming a TOML fleet file (lowest precedence).
FLEET_FILE_ENV = "REPRO_FLEET_FILE"

#: Schema tag of the fleet batch report.
FLEET_BATCH_SCHEMA = "repro-fleet-batch-report/v1"

#: Breaker defaults: trip after this many consecutive connection-level
#: failures, skip the endpoint for ``cooldown`` seconds, then allow one
#: half-open probe.
DEFAULT_TRIP_THRESHOLD = 3
DEFAULT_COOLDOWN = 5.0

#: Connect timeout used by health probes (cheap ping, short fuse).
PROBE_TIMEOUT = 2.0


class FleetError(ServiceError):
    """A fleet-level configuration or routing error."""


# ----------------------------------------------------------------------
# Endpoints and their configuration sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FleetEndpoint:
    """One shard: a daemon socket plus (optionally) its KB store path."""

    name: str
    socket: str
    kb: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {"name": self.name, "socket": self.socket}
        if self.kb is not None:
            payload["kb"] = self.kb
        return payload


def parse_endpoint_spec(spec: str) -> FleetEndpoint:
    """Parse one ``[name=]socket[;kb=store.sqlite]`` endpoint spec.

    The name defaults to the socket file's basename (minus ``.sock``);
    names are what rendezvous hashing scores, so explicit stable names
    keep routing stable when socket paths move.
    """
    spec = spec.strip()
    if not spec:
        raise FleetError("empty endpoint spec")
    head, *options = spec.split(";")
    if "=" in head:
        name, _, sock = head.partition("=")
        name = name.strip()
        sock = sock.strip()
    else:
        sock = head.strip()
        base = os.path.basename(sock)
        name = base[:-5] if base.endswith(".sock") else base
    if not sock:
        raise FleetError("endpoint spec %r has no socket path" % (spec,))
    kb: Optional[str] = None
    for option in options:
        key, _, value = option.partition("=")
        key = key.strip()
        value = value.strip()
        if key == "kb":
            kb = value or None
        elif key:
            raise FleetError("unknown endpoint option %r in %r" % (key, spec))
    return FleetEndpoint(name=name or sock, socket=sock, kb=kb)


def parse_endpoint_specs(specs: Iterable[str]) -> List[FleetEndpoint]:
    """Parse several specs, rejecting duplicate names (they'd collide in
    rendezvous scoring and silently halve the fleet)."""
    endpoints = [parse_endpoint_spec(spec) for spec in specs]
    seen: Dict[str, str] = {}
    for endpoint in endpoints:
        if endpoint.name in seen:
            raise FleetError(
                "duplicate endpoint name %r (%s and %s)"
                % (endpoint.name, seen[endpoint.name], endpoint.socket)
            )
        seen[endpoint.name] = endpoint.socket
    return endpoints


def _parse_toml_value(raw: str):
    raw = raw.strip()
    if raw.startswith('"') and raw.endswith('"') and len(raw) >= 2:
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        raise FleetError("unsupported TOML value %r in fleet file" % (raw,))


def _parse_fleet_toml(text: str) -> Dict[str, object]:
    """Parse fleet-file TOML: :mod:`tomllib` when present, else the subset."""
    try:
        import tomllib
    except ModuleNotFoundError:
        return _parse_fleet_toml_fallback(text)
    try:
        return tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise FleetError("invalid fleet file: %s" % (exc,)) from exc


def _parse_fleet_toml_fallback(text: str) -> Dict[str, object]:
    """Parse the fleet-file TOML subset without :mod:`tomllib`.

    CI still runs Python 3.10 (no ``tomllib``) and new dependencies are
    off the table, so this understands exactly what fleet files use: a
    ``[fleet]`` table, ``[[endpoints]]`` array tables, and bare
    string/int/float/bool scalars.  Python >= 3.11 uses the real parser.
    """
    document: Dict[str, object] = {}
    current: Optional[Dict[str, object]] = None
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[[") and line.endswith("]]"):
            table = line[2:-2].strip()
            current = {}
            document.setdefault(table, [])
            if not isinstance(document[table], list):
                raise FleetError(
                    "fleet file line %d: %r is both a table and an array"
                    % (lineno, table))
            document[table].append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            table = line[1:-1].strip()
            current = document.setdefault(table, {})
            if not isinstance(current, dict):
                raise FleetError(
                    "fleet file line %d: %r is both a table and an array"
                    % (lineno, table))
            continue
        if "=" not in line:
            raise FleetError("fleet file line %d: cannot parse %r"
                             % (lineno, raw_line.strip()))
        key, _, value = line.partition("=")
        target = current if current is not None else document
        target[key.strip()] = _parse_toml_value(value)
    return document


def load_fleet_file(path: str) -> Tuple[List[FleetEndpoint], Dict[str, object]]:
    """Read a TOML fleet file; returns (endpoints, router options).

    Expected shape::

        [fleet]
        hedge_after = 2.0        # optional
        trip_threshold = 3       # optional
        cooldown = 5.0           # optional

        [[endpoints]]
        name = "a"
        socket = "/run/repro/a.sock"
        kb = "/var/lib/repro/a.sqlite"   # optional
    """
    try:
        with open(path, encoding="utf-8") as stream:
            text = stream.read()
    except OSError as exc:
        raise FleetError("cannot read fleet file %r: %s" % (path, exc)) from exc
    document = _parse_fleet_toml(text)
    entries = document.get("endpoints") or []
    if not isinstance(entries, list) or not entries:
        raise FleetError("fleet file %r defines no [[endpoints]]" % (path,))
    endpoints = []
    for entry in entries:
        if not isinstance(entry, Mapping) or not entry.get("socket"):
            raise FleetError(
                "fleet file %r: every [[endpoints]] needs a 'socket'" % (path,))
        sock = str(entry["socket"])
        base = os.path.basename(sock)
        default_name = base[:-5] if base.endswith(".sock") else base
        endpoints.append(FleetEndpoint(
            name=str(entry.get("name") or default_name),
            socket=sock,
            kb=str(entry["kb"]) if entry.get("kb") else None,
        ))
    names = [endpoint.name for endpoint in endpoints]
    if len(set(names)) != len(names):
        raise FleetError("fleet file %r has duplicate endpoint names" % (path,))
    options_block = document.get("fleet")
    options: Dict[str, object] = {}
    if isinstance(options_block, Mapping):
        for key in ("hedge_after", "cooldown"):
            if key in options_block:
                options[key] = float(options_block[key])
        if "trip_threshold" in options_block:
            options["trip_threshold"] = int(options_block["trip_threshold"])
    return endpoints, options


def resolve_endpoints(
    specs: Optional[Sequence[str]] = None,
    fleet_file: Optional[str] = None,
    env: Optional[Mapping[str, str]] = None,
) -> Tuple[List[FleetEndpoint], Dict[str, object]]:
    """Resolve the fleet configuration by precedence.

    ``--endpoint`` specs win, then an explicit ``--fleet-file``, then
    ``$REPRO_SERVICE_ENDPOINTS``, then ``$REPRO_FLEET_FILE``.  Returns an
    empty endpoint list (not an error) when nothing is configured, so
    callers can fall back to single-daemon behaviour.
    """
    if specs:
        return parse_endpoint_specs(specs), {}
    if fleet_file:
        return load_fleet_file(fleet_file)
    env = os.environ if env is None else env
    raw = env.get(ENDPOINTS_ENV, "").strip()
    if raw:
        return parse_endpoint_specs(
            item for item in raw.split(",") if item.strip()), {}
    file_path = env.get(FLEET_FILE_ENV, "").strip()
    if file_path:
        return load_fleet_file(file_path)
    return [], {}


# ----------------------------------------------------------------------
# Rendezvous hashing
# ----------------------------------------------------------------------
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv64(data: bytes) -> int:
    value = _FNV_OFFSET
    for byte in data:
        value ^= byte
        value = (value * _FNV_PRIME) & _MASK64
    return value


def _mix64(value: int) -> int:
    # splitmix64 finalizer: FNV alone is too linear for fair weights.
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def rendezvous_score(fingerprint: str, endpoint_name: str) -> int:
    """The (fingerprint, endpoint) rendezvous weight.

    A pure function of the two strings -- every client computes the same
    routing table with no coordination, and it is stable across processes
    and Python versions (unlike builtin ``hash``).
    """
    return _mix64(_fnv64(("%s|%s" % (fingerprint, endpoint_name)).encode("utf-8")))


def rendezvous_order(fingerprint: str,
                     endpoints: Sequence[FleetEndpoint]) -> List[FleetEndpoint]:
    """Endpoints by descending preference for this fingerprint.

    This whole list *is* the failover chain: dropping any endpoint leaves
    the relative order of the others untouched, which is the no-scatter
    guarantee the chaos suite pins.
    """
    return sorted(
        endpoints,
        key=lambda endpoint: (rendezvous_score(fingerprint, endpoint.name),
                              endpoint.name),
        reverse=True,
    )


# ----------------------------------------------------------------------
# Health probing
# ----------------------------------------------------------------------
def probe_endpoint(endpoint: FleetEndpoint,
                   connect_timeout: float = PROBE_TIMEOUT) -> Dict[str, object]:
    """One cheap health probe: ``ping`` over a fresh connection.

    Returns a dict with ``alive`` plus, from a v1.1+ daemon, its
    ``protocol``, ``pid``, ``uptime_seconds`` and ``draining`` flag.  A
    pre-ping (v1.0) daemon answers ``unknown verb`` -- that still proves a
    live supervisor on the socket, so it reports alive with
    ``legacy: true`` instead of failing the probe (same-major tolerance,
    applied to verbs).
    """
    # (an armed ``error``-kind rule raises inside maybe_fire already; the
    # passive ``drop-connection`` kind is interpreted here as a dead probe)
    rule = faults.maybe_fire("fleet.probe")
    if rule is not None and rule.kind == "drop-connection":
        return {"endpoint": endpoint.name, "alive": False,
                "error": "injected probe fault"}
    client = ServiceClient(endpoint.socket, connect_timeout=connect_timeout,
                          read_timeout=max(connect_timeout, 1.0),
                          retry=RetryPolicy(attempts=1))
    try:
        with client:
            response = client.call("ping")
    except ServiceError as exc:
        return {"endpoint": endpoint.name, "alive": False, "error": str(exc)}
    if response.get("ok"):
        probe = {"endpoint": endpoint.name, "alive": True,
                 "draining": bool(response.get("draining", False))}
        for key in ("protocol", "pid", "uptime_seconds"):
            if key in response:
                probe[key] = response[key]
        return probe
    error = str(response.get("error", ""))
    if "unknown verb" in error:
        return {"endpoint": endpoint.name, "alive": True, "legacy": True,
                "draining": False}
    return {"endpoint": endpoint.name, "alive": False, "error": error}


# ----------------------------------------------------------------------
# Per-endpoint breaker state
# ----------------------------------------------------------------------
@dataclass
class EndpointState:
    """Mutable routing state the router keeps per endpoint."""

    endpoint: FleetEndpoint
    consecutive_failures: int = 0
    tripped_at: Optional[float] = None
    draining: bool = False
    jobs_routed: int = 0
    failures: int = 0
    failovers_away: int = 0
    hedges_won: int = 0
    last_error: Optional[str] = None

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.tripped_at = None
        self.draining = False
        self.last_error = None
        self.jobs_routed += 1

    def record_failure(self, error: str, trip_threshold: int) -> None:
        self.failures += 1
        self.consecutive_failures += 1
        self.last_error = error
        if self.consecutive_failures >= trip_threshold:
            self.tripped_at = time.monotonic()

    def health(self, cooldown: float) -> str:
        """``up`` / ``tripped`` / ``half-open`` / ``draining``."""
        if self.draining:
            return "draining"
        if self.tripped_at is None:
            return "up"
        if time.monotonic() - self.tripped_at >= cooldown:
            return "half-open"
        return "tripped"

    def snapshot(self, cooldown: float) -> Dict[str, object]:
        payload: Dict[str, object] = dict(self.endpoint.to_dict())
        payload.update(
            health=self.health(cooldown),
            jobs_routed=self.jobs_routed,
            failures=self.failures,
            consecutive_failures=self.consecutive_failures,
            failovers_away=self.failovers_away,
            hedges_won=self.hedges_won,
        )
        if self.last_error:
            payload["last_error"] = self.last_error
        return payload


# ----------------------------------------------------------------------
# The router
# ----------------------------------------------------------------------
class FleetRouter:
    """Routes check requests across a fleet of daemons (thread-safe)."""

    def __init__(
        self,
        endpoints: Sequence[FleetEndpoint],
        trip_threshold: int = DEFAULT_TRIP_THRESHOLD,
        cooldown: float = DEFAULT_COOLDOWN,
        hedge_after: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        read_timeout: Optional[float] = None,
        sync_on_failover: bool = False,
    ):
        if not endpoints:
            raise FleetError("a fleet needs at least one endpoint")
        self.endpoints = list(endpoints)
        self.trip_threshold = max(1, int(trip_threshold))
        self.cooldown = float(cooldown)
        self.hedge_after = hedge_after
        self.retry = retry
        self.read_timeout = read_timeout
        self.sync_on_failover = sync_on_failover
        self._states = {endpoint.name: EndpointState(endpoint)
                        for endpoint in self.endpoints}
        self._lock = threading.Lock()
        self._fingerprints: Dict[Tuple, str] = {}
        self._synced_pairs: set = set()
        self.counters: Dict[str, int] = {
            "jobs": 0, "failovers": 0, "hedges": 0, "hedges_won": 0,
            "fell_back": 0, "syncs": 0,
        }

    # -- routing table -------------------------------------------------
    def fingerprint_for(self, request: api.CheckRequest) -> str:
        """The request's routing key: its circuit structural fingerprint.

        Elaborates the design once per distinct circuit (same cache-key
        discipline as the daemon's route cache) -- the very fingerprint the
        target daemon will key its worker and KB entries by, which is what
        makes the sharding *sticky* rather than merely balanced.
        """
        from repro.kb.fingerprints import circuit_fingerprint

        cache_key = request.circuit.cache_key()
        with self._lock:
            cached = self._fingerprints.get(cache_key)
        if cached is not None:
            return cached
        resolved = api.resolve_design(request.circuit)
        fingerprint = "%016x" % circuit_fingerprint(resolved.circuit)
        with self._lock:
            self._fingerprints[cache_key] = fingerprint
        return fingerprint

    def order_for(self, fingerprint: str) -> List[EndpointState]:
        ordered = rendezvous_order(fingerprint, self.endpoints)
        return [self._states[endpoint.name] for endpoint in ordered]

    def _usable(self, state: EndpointState) -> bool:
        """Breaker gate: up passes, tripped is skipped, half-open probes."""
        health = state.health(self.cooldown)
        if health == "up":
            return True
        if health in ("tripped",):
            return False
        # draining and half-open both earn one probe: SIGTERM drains end
        # with the daemon gone, and a respawned daemon should rejoin
        # without waiting for a job to fail first.
        probe = probe_endpoint(state.endpoint)
        if probe.get("alive") and not probe.get("draining"):
            state.consecutive_failures = 0
            state.tripped_at = None
            state.draining = False
            return True
        if probe.get("alive") and probe.get("draining"):
            state.draining = True
            return False
        state.record_failure(str(probe.get("error", "probe failed")),
                             self.trip_threshold)
        return False

    # -- single check --------------------------------------------------
    def check(self, request: api.CheckRequest,
              deadline: Optional[float] = None,
              timeout: Optional[float] = None,
              fallback: bool = True) -> api.CheckReport:
        """Route one request, with failover / hedging / fallback.

        Semantics: connection-level failures walk the rendezvous chain
        (reusing one ``submit_key``, so a daemon that actually received
        the earlier submit collapses the retry onto it); a ``draining``
        :class:`JobFailure` marks the endpoint and walks on; any other
        :class:`JobFailure` propagates -- a daemon answered, and the fleet
        never papers over an answer.  With the chain exhausted, the
        in-process fallback (deadline-clamped) runs iff ``fallback``.
        """
        if not request.circuit.serializable:
            if fallback:
                return check_in_process(request, deadline)
            raise FleetError("an inline circuit cannot be routed to a fleet")
        fingerprint = self.fingerprint_for(request)
        with self._lock:
            self.counters["jobs"] += 1
        chain = [state for state in self.order_for(fingerprint)
                 if self._usable(state)]
        rule = faults.maybe_fire("fleet.route")
        if rule is not None:
            if chain:
                # Injected route failure: the primary assignment is treated
                # as dead-on-arrival, exercising the failover path without
                # killing a daemon.
                skipped = chain.pop(0)
                skipped.record_failure("injected fleet.route fault",
                                       self.trip_threshold)
                skipped.failovers_away += 1
                with self._lock:
                    self.counters["failovers"] += 1
        if not chain:
            if fallback:
                with self._lock:
                    self.counters["fell_back"] += 1
                return check_in_process(request, deadline)
            raise ServiceUnavailable(
                "no fleet endpoint available for fingerprint %s (of %d)"
                % (fingerprint, len(self.endpoints)))
        submit_key = make_submit_key(request.to_dict())
        return self._run_chain(chain, request, deadline, timeout,
                               fallback, submit_key)

    def _attempt(self, state: EndpointState, request: api.CheckRequest,
                 deadline: Optional[float], timeout: Optional[float],
                 submit_key: str) -> api.CheckReport:
        routed = request
        if state.endpoint.kb is not None and request.kb_path != state.endpoint.kb:
            # Each shard learns into its own store; anti-entropy merges
            # them later rather than sharing one file across daemons.
            routed = replace(request, kb_path=state.endpoint.kb)
        report = check_via_service(
            routed,
            socket_path=state.endpoint.socket,
            fallback=False,
            timeout=timeout,
            deadline=deadline,
            retry=self.retry,
            read_timeout=self.read_timeout,
            submit_key=submit_key,
        )
        service_block = dict(report.service or {})
        service_block["endpoint"] = state.endpoint.name
        return replace(report, service=service_block)

    def _run_chain(self, chain: List[EndpointState],
                   request: api.CheckRequest,
                   deadline: Optional[float], timeout: Optional[float],
                   fallback: bool, submit_key: str) -> api.CheckReport:
        """The unified failover + hedge launch loop.

        Attempts run in daemon threads reporting into one queue.  A new
        attempt launches when the previous one *fails* (failover) or --
        with hedging on -- when the hedge timer expires while one is still
        in flight.  The first success wins; a non-``draining``
        :class:`JobFailure` from any attempt propagates immediately.
        """
        results: "queue.Queue[Tuple[int, str, object]]" = queue.Queue()
        pending = list(chain)
        launched: List[EndpointState] = []
        reasons: List[str] = []
        in_flight = 0
        failed: List[EndpointState] = []
        last_error: Optional[Exception] = None

        def launch(reason: str) -> None:
            nonlocal in_flight
            state = pending.pop(0)
            slot = len(launched)
            launched.append(state)
            reasons.append(reason)
            in_flight += 1

            def run() -> None:
                try:
                    report = self._attempt(state, request, deadline,
                                           timeout, submit_key)
                except Exception as exc:  # noqa: BLE001 - re-raised typed
                    results.put((slot, "error", exc))
                else:
                    results.put((slot, "ok", report))

            threading.Thread(target=run, daemon=True,
                             name="fleet-%s" % state.endpoint.name).start()

        launch("primary")
        # An armed fleet.hedge fault forces an immediate hedge launch, so
        # tests exercise the hedge path without a deliberately slow daemon.
        hedge_rule = faults.maybe_fire("fleet.hedge") \
            if self.hedge_after is not None else None
        force_hedge = hedge_rule is not None and pending
        while True:
            wait: Optional[float] = None
            if pending and self.hedge_after is not None:
                wait = 0.0 if force_hedge else self.hedge_after
            try:
                slot, kind, payload = results.get(timeout=wait)
            except queue.Empty:
                force_hedge = False
                if pending:
                    with self._lock:
                        self.counters["hedges"] += 1
                    launch("hedge")
                continue
            in_flight -= 1
            state = launched[slot]
            if kind == "ok":
                others_racing = in_flight > 0
                state.record_success()
                if reasons[slot] == "hedge":
                    state.hedges_won += 1
                    with self._lock:
                        self.counters["hedges_won"] += 1
                if reasons[slot] == "failover" or (failed and not others_racing):
                    self._after_failover(failed, state)
                return payload  # type: ignore[return-value]
            exc = payload
            assert isinstance(exc, Exception)
            if isinstance(exc, JobFailure) and exc.cause != "draining":
                raise exc
            if isinstance(exc, JobFailure):
                state.draining = True
                state.last_error = str(exc)
            else:
                state.record_failure(str(exc), self.trip_threshold)
            state.failovers_away += 1
            failed.append(state)
            last_error = exc
            if pending:
                with self._lock:
                    self.counters["failovers"] += 1
                launch("failover")
                continue
            if in_flight:
                continue
            break
        if fallback:
            with self._lock:
                self.counters["fell_back"] += 1
            return check_in_process(request, deadline)
        if isinstance(last_error, Exception):
            raise last_error
        raise ServiceUnavailable("every fleet endpoint failed")

    def _after_failover(self, failed: List[EndpointState],
                        winner: EndpointState) -> None:
        """Router-triggered anti-entropy after a successful failover.

        The takeover shard inherits what the failed shard had learned: the
        failed endpoint's store is merged into the winner's (the commuting
        direction that helps the jobs now landing there).  Deduplicated
        per ordered endpoint pair for the router's lifetime -- anti-entropy
        is a convergence nudge, not a per-job tax.
        """
        if not self.sync_on_failover or winner.endpoint.kb is None:
            return
        for state in failed:
            source = state.endpoint.kb
            if source is None or source == winner.endpoint.kb:
                continue
            pair = (state.endpoint.name, winner.endpoint.name)
            with self._lock:
                if pair in self._synced_pairs:
                    continue
                self._synced_pairs.add(pair)
            try:
                from repro.kb import open_knowledge_base

                dest = open_knowledge_base(winner.endpoint.kb)
                dest.merge_many([open_knowledge_base(source)])
                with self._lock:
                    self.counters["syncs"] += 1
            except Exception:  # noqa: BLE001 - anti-entropy is best effort
                pass

    # -- batches -------------------------------------------------------
    def run_batch(
        self,
        requests: Sequence[api.CheckRequest],
        deadline: Optional[float] = None,
        timeout: Optional[float] = None,
        fallback: bool = True,
        max_workers: Optional[int] = None,
        on_item: Optional[Callable[[Dict[str, object]], None]] = None,
    ) -> Dict[str, object]:
        """Route a batch across the fleet; returns the fleet batch report.

        Every request produces exactly one item -- ``state: "done"`` with
        its verdicts, or ``state: "failed"`` with a typed ``cause`` -- so
        ``lost`` (requests with neither) is computable and asserted zero
        by the chaos suite even while a daemon is being killed mid-batch.
        """
        items: List[Optional[Dict[str, object]]] = [None] * len(requests)

        def run_one(index: int) -> None:
            request = requests[index]
            item: Dict[str, object] = {
                "index": index,
                "circuit": _circuit_label(request.circuit),
            }
            try:
                report = self.check(request, deadline=deadline,
                                    timeout=timeout, fallback=fallback)
            except JobFailure as exc:
                item.update(state="failed",
                            cause=exc.cause or "job-error",
                            error=str(exc))
            except ServiceError as exc:
                item.update(state="failed", cause="unavailable",
                            error=str(exc))
            else:
                item.update(
                    state="done",
                    source=report.source,
                    exit_code=report.exit_code,
                    verdicts=[
                        {"property": result.name, "status": result.status,
                         "conclusive": result.conclusive}
                        for result in report.results
                    ],
                )
                service = report.service or {}
                if "endpoint" in service:
                    item["endpoint"] = service["endpoint"]
            items[index] = item
            if on_item is not None:
                on_item(dict(item))

        workers = max_workers or min(8, max(1, len(requests)))
        started = time.monotonic()
        if requests:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                list(pool.map(run_one, range(len(requests))))
        finished = [item for item in items if item is not None]
        done = sum(1 for item in finished if item["state"] == "done")
        failed = sum(1 for item in finished if item["state"] == "failed")
        return {
            "schema": FLEET_BATCH_SCHEMA,
            "total": len(requests),
            "done": done,
            "failed": failed,
            "lost": len(requests) - len(finished),
            "wall_seconds": round(time.monotonic() - started, 6),
            "fleet": self.describe(),
            "counters": dict(self.counters),
            "endpoints": [state.snapshot(self.cooldown)
                          for state in self._iter_states()],
            "items": finished,
        }

    # -- introspection -------------------------------------------------
    def _iter_states(self) -> List[EndpointState]:
        return [self._states[endpoint.name] for endpoint in self.endpoints]

    def describe(self) -> Dict[str, object]:
        """Static fleet configuration, for embedding in reports."""
        return {
            "endpoints": [endpoint.to_dict() for endpoint in self.endpoints],
            "trip_threshold": self.trip_threshold,
            "cooldown": self.cooldown,
            "hedge_after": self.hedge_after,
            "sync_on_failover": self.sync_on_failover,
        }

    def status(self, probe: bool = True) -> Dict[str, object]:
        """Live per-endpoint status (``repro fleet status`` payload)."""
        blocks = []
        for state in self._iter_states():
            block = state.snapshot(self.cooldown)
            if probe:
                block["probe"] = probe_endpoint(state.endpoint)
            blocks.append(block)
        up = sum(1 for block in blocks
                 if not probe or block["probe"].get("alive"))
        return {
            "schema": "repro-fleet-status/v1",
            "endpoints": blocks,
            "up": up,
            "total": len(blocks),
            "counters": dict(self.counters),
        }


def _circuit_label(circuit: api.CircuitRef) -> str:
    if circuit.kind == "case":
        return str(circuit.case_id)
    if circuit.kind == "verilog":
        return str(circuit.path)
    if circuit.kind == "source":
        return "<source:%s>" % (circuit.top or "top")
    return "<inline>"


# ----------------------------------------------------------------------
# Anti-entropy
# ----------------------------------------------------------------------
def sync_stores(paths: Sequence[str]) -> List[Dict[str, object]]:
    """Pairwise-merge shard KB stores until all hold the union.

    Every store becomes a destination once and merges *all* the others in
    a single transaction (:meth:`repro.kb.KnowledgeBase.merge_many`) -- N
    write transactions total for N shards, not N*(N-1) pairwise merges.
    The merge rules commute (union cubes / max hits / add-only memos), so
    the result is independent of ordering and re-running is a no-op.
    """
    from repro.kb import open_knowledge_base

    unique: List[str] = []
    for path in paths:
        if path and path not in unique:
            unique.append(path)
    if len(unique) < 2:
        return [{"path": path, "sources": 0, "models": 0, "cubes": 0,
                 "fail_memos": 0} for path in unique]
    stores = [open_knowledge_base(path) for path in unique]
    results = []
    for dest in stores:
        merged = dest.merge_many([store for store in stores
                                  if store is not dest])
        merged_block: Dict[str, object] = {"path": dest.path}
        merged_block.update(merged)
        if dest.disabled:
            merged_block["disabled"] = True
            merged_block["reason"] = dest.disabled_reason
        results.append(merged_block)
    return results


__all__ = [
    "DEFAULT_COOLDOWN",
    "DEFAULT_TRIP_THRESHOLD",
    "ENDPOINTS_ENV",
    "FLEET_BATCH_SCHEMA",
    "FLEET_FILE_ENV",
    "EndpointState",
    "FleetEndpoint",
    "FleetError",
    "FleetRouter",
    "load_fleet_file",
    "parse_endpoint_spec",
    "parse_endpoint_specs",
    "probe_endpoint",
    "rendezvous_order",
    "rendezvous_score",
    "resolve_endpoints",
    "sync_stores",
]
