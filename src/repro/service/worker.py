"""The per-circuit worker process of the verification service.

One worker owns one circuit (keyed by its structural fingerprint) and runs
check jobs for it *serially*, which is exactly what makes the daemon fast:

* a **design cache** keeps the resolved circuit object alive, so the
  process-wide :class:`~repro.checker.incremental.UnrolledModelCache`
  (keyed partly by object identity) serves every job after the first from
  the warm unrolled model -- along with the learned illegal cubes, ESTG
  state and proven-FAIL memos riding on it;
* the **knowledge-base handle** is opened once per store path and held for
  the worker's life (:func:`repro.kb.open_knowledge_base` deduplicates per
  process), so KB cubes are loaded from sqlite once, not per job;
* on a graceful stop the worker flushes all attached stores
  (:func:`repro.kb.flush_attached_stores`) before exiting, so nothing
  learned is lost when the supervisor evicts an idle worker.

The worker speaks a tiny op-dict protocol over a :mod:`multiprocessing`
pipe with its supervisor (``run`` / ``stats`` / ``stop``); the check payload
itself is a verbatim :class:`repro.api.CheckRequest` dict.

Fault injection (crash / crash-once / sleep) is compiled in but inert: it
only triggers when the supervisor was started with
``REPRO_SERVICE_FAULTS=1``, and exists so the crash-requeue path is
testable without patching internals.
"""

from __future__ import annotations

import os
import time
import traceback
from typing import Dict, Optional

from repro import api
from repro.checker.incremental import shared_model_cache
from repro.kb import flush_attached_stores, open_knowledge_base

#: Environment switch that arms the test-only fault hooks.
FAULTS_ENV = "REPRO_SERVICE_FAULTS"


def faults_enabled() -> bool:
    """Whether test-only fault injection is armed for this process tree."""
    return os.environ.get(FAULTS_ENV, "") == "1"


def _apply_fault(fault: Optional[Dict[str, object]]) -> None:
    """Honour a test-only fault directive (no-op unless armed)."""
    if not fault or not faults_enabled():
        return
    kind = fault.get("kind")
    if kind == "crash":
        os._exit(17)
    if kind == "crash-once":
        marker = str(fault.get("marker", ""))
        if marker and not os.path.exists(marker):
            with open(marker, "w") as stream:
                stream.write("crashed\n")
            os._exit(17)
        return
    if kind == "sleep":
        time.sleep(float(fault.get("seconds", 1.0)))


class _WorkerState:
    """Warm state and counters one worker accumulates across jobs."""

    def __init__(self, worker_key: str):
        self.worker_key = worker_key
        self.design_cache: Dict = {}
        self.kb_paths: Dict[str, None] = {}  # insertion-ordered set
        self.jobs_done = 0
        self.warm_hits = 0
        self.kb_cubes_loaded = 0
        self.kb_hits = 0
        self.started_at = time.time()

    def note_report(self, report: api.CheckReport) -> None:
        self.jobs_done += 1
        self.warm_hits += report.aggregate("models_reused")
        self.kb_cubes_loaded += report.aggregate("kb_cubes_loaded")
        self.kb_hits += report.aggregate("kb_hits")

    def note_request(self, request: api.CheckRequest) -> None:
        if request.kb_path:
            self.kb_paths.setdefault(request.kb_path)

    def snapshot(self) -> Dict[str, object]:
        """The live per-worker stats block of the ``stats`` verb.

        The ``kb`` entries reuse :meth:`repro.kb.KnowledgeBase.stats`
        verbatim -- the same shape ``repro kb stats --json`` prints -- so
        tooling parses one schema for both.
        """
        cache = shared_model_cache().stats()
        kb_blocks = []
        for path in self.kb_paths:
            try:
                kb_blocks.append(open_knowledge_base(path).stats())
            except Exception as exc:  # pragma: no cover - defensive
                kb_blocks.append({"path": path, "disabled": True, "reason": str(exc)})
        return {
            "worker_key": self.worker_key,
            "pid": os.getpid(),
            "jobs_done": self.jobs_done,
            "warm_hits": self.warm_hits,
            "kb_cubes_loaded": self.kb_cubes_loaded,
            "kb_hits": self.kb_hits,
            "model_cache": cache,
            "cache_residency": cache.get("entries", 0),
            "designs_resident": len(self.design_cache),
            "kb": kb_blocks,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }


def worker_main(conn, worker_key: str) -> None:
    """Entry point of the worker child process.

    ``conn`` is the supervisor end-to-end duplex pipe.  Ops:

    * ``{"op": "run", "job_id", "request": <CheckRequest dict>, "fault"?}``
      -> ``{"op": "done", "job_id", "report": <CheckReport dict>, "stats"}``
      or ``{"op": "job-error", "job_id", "error", "stats"}``;
    * ``{"op": "stats"}`` -> ``{"op": "stats", "stats"}``;
    * ``{"op": "stop"}`` -> flush KB stores, ``{"op": "stopped"}``, exit.
    """
    state = _WorkerState(worker_key)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            # Supervisor went away: flush what we learned and fold.
            flush_attached_stores()
            return
        op = message.get("op")
        if op == "stop":
            flush_attached_stores()
            try:
                conn.send({"op": "stopped", "stats": state.snapshot()})
            except (BrokenPipeError, OSError):  # pragma: no cover - racing exit
                pass
            return
        if op == "stats":
            conn.send({"op": "stats", "stats": state.snapshot()})
            continue
        if op != "run":
            conn.send({"op": "error", "error": "unknown op %r" % (op,)})
            continue

        job_id = message.get("job_id")
        _apply_fault(message.get("fault"))
        try:
            request = api.CheckRequest.from_dict(message["request"])
            state.note_request(request)
            report = api.check(request, design_cache=state.design_cache)
        except Exception as exc:
            conn.send({
                "op": "job-error",
                "job_id": job_id,
                "error": "%s: %s" % (type(exc).__name__, exc),
                "traceback": traceback.format_exc(),
                "stats": state.snapshot(),
            })
            continue
        state.note_report(report)
        conn.send({
            "op": "done",
            "job_id": job_id,
            "report": report.to_dict(),
            "stats": state.snapshot(),
        })


__all__ = ["FAULTS_ENV", "faults_enabled", "worker_main"]
