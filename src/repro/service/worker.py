"""The per-circuit worker process of the verification service.

One worker owns one circuit (keyed by its structural fingerprint) and runs
check jobs for it *serially*, which is exactly what makes the daemon fast:

* a **design cache** keeps the resolved circuit object alive, so the
  process-wide :class:`~repro.checker.incremental.UnrolledModelCache`
  (keyed partly by object identity) serves every job after the first from
  the warm unrolled model -- along with the learned illegal cubes, ESTG
  state and proven-FAIL memos riding on it;
* the **knowledge-base handle** is opened once per store path and held for
  the worker's life (:func:`repro.kb.open_knowledge_base` deduplicates per
  process), so KB cubes are loaded from sqlite once, not per job;
* on a graceful stop the worker flushes all attached stores
  (:func:`repro.kb.flush_attached_stores`) before exiting, so nothing
  learned is lost when the supervisor evicts an idle worker.

Resilience duties (PR 8):

* while a job runs, a **heartbeat thread** sends ``{"op": "heartbeat"}``
  every ``heartbeat_interval`` seconds (with the worker's resident-set
  size), so the supervisor's hung-worker watchdog can tell *slow* from
  *wedged*;
* an end-to-end **deadline** forwarded with the job clamps the request's
  engine time budget, so a deadline set at the client bounds the solver
  itself, not just the transport;
* **RSS watermarks**: above the soft watermark the worker degrades
  gracefully -- evicts its model caches and flushes its KB stores --
  instead of growing until the OOM killer takes it; above the hard
  watermark it additionally asks to be retired after the current job
  (the supervisor respawns it cold, with nothing learned lost);
* fault-injection sites (``worker.run``, ``worker.budget``; see
  :mod:`repro.faults`) replace the old ad-hoc ``REPRO_SERVICE_FAULTS``
  hooks -- they are inert unless a fault plan is armed in the
  environment, which forked workers inherit from the daemon.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from dataclasses import replace
from typing import Dict, Optional

from repro import api, faults
from repro.checker.incremental import shared_model_cache
from repro.kb import flush_attached_stores, open_knowledge_base

#: fallback worker configuration (mirrors ServiceOptions defaults).
DEFAULT_CONFIG = {
    "heartbeat_interval": 1.0,
    "rss_soft_bytes": None,
    "rss_hard_bytes": None,
}

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def current_rss_bytes() -> Optional[int]:
    """This process's resident-set size, or ``None`` when unreadable."""
    try:
        with open("/proc/self/statm") as stream:
            fields = stream.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        try:
            import resource

            # Peak RSS (kilobytes on Linux); an over-estimate of the current
            # value, which errs on the safe side for watermark checks.
            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:  # pragma: no cover - exotic platforms
            return None


class _Heartbeat:
    """Background sender keeping the supervisor's watchdog fed during jobs.

    The pipe is shared with the main loop, so every send goes through one
    lock; ``pause`` exists for the ``hang`` fault kind, which must look
    exactly like a wedged process (no result *and* no heartbeats).
    """

    def __init__(self, conn, lock: threading.Lock, interval: float):
        self._conn = conn
        self._lock = lock
        self._interval = max(0.05, float(interval))
        self._stop = threading.Event()
        self._paused = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Begin heartbeating (one thread per job run)."""
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Stop and join the sender; no heartbeat can follow a result."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def pause(self) -> None:
        """Silence heartbeats without stopping the thread (``hang`` fault)."""
        self._paused.set()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            if self._paused.is_set():
                continue
            message = {"op": "heartbeat", "ts": time.time()}
            rss = current_rss_bytes()
            if rss is not None:
                message["rss_bytes"] = rss
            try:
                with self._lock:
                    if self._stop.is_set():
                        return
                    self._conn.send(message)
            except (BrokenPipeError, OSError):
                return


class _WorkerState:
    """Warm state and counters one worker accumulates across jobs."""

    def __init__(self, worker_key: str):
        self.worker_key = worker_key
        self.design_cache: Dict = {}
        self.kb_paths: Dict[str, None] = {}  # insertion-ordered set
        self.jobs_done = 0
        self.warm_hits = 0
        self.kb_cubes_loaded = 0
        self.kb_hits = 0
        self.compiled_models = 0
        self.compile_time_ms = 0.0
        self.solver_core_hits = 0
        self.degradations = 0
        self.started_at = time.time()

    def note_report(self, report: api.CheckReport) -> None:
        self.jobs_done += 1
        self.warm_hits += report.aggregate("models_reused")
        self.kb_cubes_loaded += report.aggregate("kb_cubes_loaded")
        self.kb_hits += report.aggregate("kb_hits")
        self.compiled_models += report.aggregate("compiled_models")
        self.compile_time_ms += report.aggregate("compile_time_ms")
        self.solver_core_hits += report.aggregate("solver_core_hits")

    def note_request(self, request: api.CheckRequest) -> None:
        if request.kb_path:
            self.kb_paths.setdefault(request.kb_path)

    def degrade(self) -> None:
        """Soft-watermark response: shed the warm state, keep the process.

        Evicts the unrolled-model cache and the resolved-design cache and
        flushes every attached KB store first, so the memory comes back
        without losing a single learned fact -- the next job runs cold but
        correct.
        """
        flush_attached_stores()
        shared_model_cache().clear()
        self.design_cache.clear()
        self.degradations += 1

    def snapshot(self) -> Dict[str, object]:
        """The live per-worker stats block of the ``stats`` verb.

        The ``kb`` entries reuse :meth:`repro.kb.KnowledgeBase.stats`
        verbatim -- the same shape ``repro kb stats --json`` prints -- so
        tooling parses one schema for both.
        """
        cache = shared_model_cache().stats()
        kb_blocks = []
        for path in self.kb_paths:
            try:
                kb_blocks.append(open_knowledge_base(path).stats())
            except Exception as exc:  # pragma: no cover - defensive
                kb_blocks.append({"path": path, "disabled": True, "reason": str(exc)})
        snapshot = {
            "worker_key": self.worker_key,
            "pid": os.getpid(),
            "jobs_done": self.jobs_done,
            "warm_hits": self.warm_hits,
            "kb_cubes_loaded": self.kb_cubes_loaded,
            "kb_hits": self.kb_hits,
            "compiled_models": self.compiled_models,
            "compile_time_ms": round(self.compile_time_ms, 3),
            "solver_core_hits": self.solver_core_hits,
            "degradations": self.degradations,
            "model_cache": cache,
            "cache_residency": cache.get("entries", 0),
            "designs_resident": len(self.design_cache),
            "kb": kb_blocks,
            "uptime_seconds": round(time.time() - self.started_at, 3),
        }
        rss = current_rss_bytes()
        if rss is not None:
            snapshot["rss_bytes"] = rss
        return snapshot


def _clamped_request(request: api.CheckRequest,
                     deadline_seconds: Optional[float]) -> api.CheckRequest:
    """Fold the forwarded end-to-end deadline into the engine time budget.

    A ``worker.budget`` fault of kind ``exhaust-budget`` collapses the
    budget to near-zero, forcing the budget-exhaustion path (inconclusive
    but typed verdicts) without waiting for a real deadline.
    """
    rule = faults.maybe_fire("worker.budget")
    if rule is not None and rule.kind == "exhaust-budget":
        return replace(request, time_budget=0.001)
    return api.clamp_to_deadline(request, deadline_seconds)


def worker_main(conn, worker_key: str, config: Optional[Dict] = None) -> None:
    """Entry point of the worker child process.

    ``conn`` is the supervisor end-to-end duplex pipe.  Ops:

    * ``{"op": "run", "job_id", "request": <CheckRequest dict>,
      "deadline_seconds"?}``
      -> interleaved ``{"op": "heartbeat", "ts", "rss_bytes"?}`` messages,
      then ``{"op": "done", "job_id", "report": <CheckReport dict>,
      "stats", "retiring"?}`` or ``{"op": "job-error", "job_id", "error",
      "stats", "retiring"?}``;
    * ``{"op": "stats"}`` -> ``{"op": "stats", "stats"}``;
    * ``{"op": "stop"}`` -> flush KB stores, ``{"op": "stopped"}``, exit.
    """
    settings = dict(DEFAULT_CONFIG)
    if config:
        settings.update(config)
    state = _WorkerState(worker_key)
    send_lock = threading.Lock()
    # Forked siblings inherit copies of this pipe's supervisor end, so a
    # SIGKILLed supervisor never yields EOF here.  Reparenting is the
    # reliable orphan signal: poll with a timeout and watch the ppid.
    supervisor_pid = os.getppid()

    def send(message: Dict[str, object]) -> None:
        with send_lock:
            conn.send(message)

    while True:
        try:
            while not conn.poll(1.0):
                if os.getppid() != supervisor_pid:
                    flush_attached_stores()
                    return
            message = conn.recv()
        except (EOFError, OSError):
            # Supervisor went away: flush what we learned and fold.
            flush_attached_stores()
            return
        op = message.get("op")
        if op == "stop":
            flush_attached_stores()
            try:
                send({"op": "stopped", "stats": state.snapshot()})
            except (BrokenPipeError, OSError):  # pragma: no cover - racing exit
                pass
            return
        if op == "stats":
            send({"op": "stats", "stats": state.snapshot()})
            continue
        if op != "run":
            send({"op": "error", "error": "unknown op %r" % (op,)})
            continue

        job_id = message.get("job_id")
        heartbeat = _Heartbeat(conn, send_lock, settings["heartbeat_interval"])
        heartbeat.start()
        try:
            rule = faults.maybe_fire("worker.run")
            if rule is not None and rule.kind == "hang":
                # A wedged process sends nothing at all -- silence the
                # heartbeats too, so the supervisor's watchdog (not the job
                # timeout) is what fires.
                heartbeat.pause()
                time.sleep(rule.seconds if rule.seconds > 0.05 else 3600.0)
            request = api.CheckRequest.from_dict(message["request"])
            request = _clamped_request(request, message.get("deadline_seconds"))
            state.note_request(request)
            report = api.check(request, design_cache=state.design_cache)
        except Exception as exc:
            heartbeat.stop()
            try:
                send({
                    "op": "job-error",
                    "job_id": job_id,
                    "error": "%s: %s" % (type(exc).__name__, exc),
                    "traceback": traceback.format_exc(),
                    "stats": state.snapshot(),
                })
            except (BrokenPipeError, OSError):
                flush_attached_stores()
                return
            continue
        heartbeat.stop()
        state.note_report(report)
        reply: Dict[str, object] = {
            "op": "done",
            "job_id": job_id,
            "report": report.to_dict(),
        }
        retiring = _apply_watermarks(state, settings)
        if retiring:
            reply["retiring"] = True
        reply["stats"] = state.snapshot()
        try:
            send(reply)
        except (BrokenPipeError, OSError):
            # Orphaned mid-job: nobody will read the verdict, but what the
            # run *learned* still reaches the shard KB for anti-entropy.
            flush_attached_stores()
            return
        if retiring:
            flush_attached_stores()
            return


def _apply_watermarks(state: _WorkerState, settings: Dict) -> bool:
    """Post-job RSS watermark check; returns whether to retire the worker."""
    soft = settings.get("rss_soft_bytes")
    hard = settings.get("rss_hard_bytes")
    if soft is None and hard is None:
        return False
    rss = current_rss_bytes()
    if rss is None:
        return False
    if soft is not None and rss >= soft:
        state.degrade()
    if hard is not None and rss >= hard:
        # Even a degraded cache may not shrink the heap (the allocator keeps
        # its arenas); retiring lets the supervisor respawn a cold process
        # before the kill threshold -- with everything learned flushed.
        if not (soft is not None and rss >= soft):
            state.degrade()
        return True
    return False


__all__ = ["DEFAULT_CONFIG", "current_rss_bytes", "worker_main"]
