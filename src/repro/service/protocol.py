"""The ``repro-service/v1`` wire protocol.

Newline-delimited JSON over a unix domain socket.  Every message -- request
and response -- is one JSON object on one line, tagged with the protocol
schema:

.. code-block:: json

    {"schema": "repro-service/v1", "verb": "submit", "request": {...}}
    {"schema": "repro-service/v1", "verb": "submit", "ok": true, "job_id": "job-1"}

Verbs: ``ping``, ``submit``, ``status``, ``result``, ``cancel``, ``stats``,
``shutdown``.  The payload of ``submit`` is a
:class:`repro.api.CheckRequest` dict *verbatim* (``repro-check-request/v1``)
and the payload of a finished ``result`` is a
:class:`repro.api.CheckReport` dict verbatim -- the service defines no
second schema for either.

Forward compatibility is part of the contract: decoders ignore unknown
fields everywhere, and a peer speaking a *newer minor* revision of the same
major (``repro-service/v1.2``) is accepted.  A different major is rejected
with an ``incompatible-protocol`` error instead of garbage.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional, Tuple

#: The protocol schema tag; bump the major only on incompatible layout
#: changes, the minor on additive revisions (v1.1 added the ``ping`` health
#: probe -- protocol version, pid, uptime and the draining flag without the
#: full stats payload).  Same-major peers interoperate: a v1.1 client
#: probing a v1.0 server gets an ``unknown verb`` error, which health
#: probes treat as *alive, health unknown* rather than down.
PROTOCOL = "repro-service/v1.1"

#: Verbs a client may send (``ping`` since v1.1).
VERBS = ("ping", "submit", "status", "result", "cancel", "stats", "shutdown")

#: Job lifecycle states reported by ``status`` / ``result``.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: Typed causes attached to failed jobs and refused submits (the ``cause``
#: field of ``status`` / ``result`` job blocks and of error responses).
#: Clients branch on these instead of parsing error prose.
FAILURE_CAUSES = (
    "timeout",      # job exceeded its wall-clock budget (service or deadline)
    "crash",        # worker died mid-job and the requeue limit is spent
    "watchdog",     # worker stopped heartbeating and was killed as hung
    "quarantined",  # the request digest killed workers too often (poison job)
    "draining",     # daemon is draining and refuses new submits
    "job-error",    # the check itself raised inside the worker
    "cancelled",    # cancel verb won
    "injected",     # a fault-injection rule fired in the supervisor
)

#: Hard cap on one encoded message line (guards the reader against a
#: runaway/hostile peer; generous enough for large counterexample traces).
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A message violates the ``repro-service/v1`` framing or schema."""


def schema_compatible(schema: object, expected: str = PROTOCOL) -> bool:
    """Same-major acceptance: ``repro-service/v1.3`` is fine, ``v2`` is not.

    Missing tags are tolerated (treated as current) so hand-written test
    messages stay convenient; anything tagged must match the major.
    """
    if schema is None:
        return True
    if not isinstance(schema, str):
        return False
    expected_name, _, expected_version = expected.rpartition("/")
    name, _, version = schema.rpartition("/")
    return (name == expected_name
            and version.split(".", 1)[0] == expected_version.split(".", 1)[0])


def encode(message: Mapping[str, object]) -> bytes:
    """Frame one message as a JSON line (adds the schema tag if absent)."""
    payload = dict(message)
    payload.setdefault("schema", PROTOCOL)
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode(line: bytes) -> Dict[str, object]:
    """Parse one received line into a message dict.

    Raises :class:`ProtocolError` on malformed JSON, a non-object payload
    or an incompatible schema major.  Unknown fields pass through untouched
    (the caller ignores what it does not know).
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("message exceeds %d bytes" % (MAX_LINE_BYTES,))
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError("malformed message: %s" % (exc,)) from exc
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object, got %s" % (type(payload).__name__,))
    if not schema_compatible(payload.get("schema")):
        raise ProtocolError(
            "incompatible protocol %r (this side speaks %s)"
            % (payload.get("schema"), PROTOCOL)
        )
    return payload


def request_message(verb: str, **fields) -> Dict[str, object]:
    """Build a client request message for ``verb``."""
    if verb not in VERBS:
        raise ProtocolError("unknown verb %r" % (verb,))
    message: Dict[str, object] = {"schema": PROTOCOL, "verb": verb}
    message.update(fields)
    return message


def ok_response(verb: str, **fields) -> Dict[str, object]:
    """Build a success response for ``verb``."""
    message: Dict[str, object] = {"schema": PROTOCOL, "verb": verb, "ok": True}
    message.update(fields)
    return message


def error_response(verb: Optional[str], error: str, **fields) -> Dict[str, object]:
    """Build a failure response (``ok: false`` plus a human-readable cause)."""
    message: Dict[str, object] = {
        "schema": PROTOCOL,
        "verb": verb or "error",
        "ok": False,
        "error": error,
    }
    message.update(fields)
    return message


def request_digest(payload: Mapping[str, object]) -> str:
    """Canonical sha256 of a ``CheckRequest`` dict.

    The digest is the request's *identity* for resilience purposes: the
    client keys idempotent resubmits on it and the supervisor keys its
    poison-job quarantine on it, so both sides must hash the same bytes --
    sorted keys, no whitespace.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def parse_verb(message: Mapping[str, object]) -> Tuple[str, Mapping[str, object]]:
    """Extract and validate the verb of a decoded client message."""
    verb = message.get("verb")
    if verb not in VERBS:
        raise ProtocolError("unknown verb %r (known: %s)" % (verb, ", ".join(VERBS)))
    return str(verb), message


__all__ = [
    "FAILURE_CAUSES",
    "JOB_STATES",
    "MAX_LINE_BYTES",
    "PROTOCOL",
    "ProtocolError",
    "VERBS",
    "decode",
    "encode",
    "error_response",
    "ok_response",
    "parse_verb",
    "request_digest",
    "request_message",
    "schema_compatible",
]
