"""Verification as a service: a daemon with warm per-circuit workers.

``repro serve`` runs the asyncio :class:`~repro.service.supervisor.Supervisor`
on a unix socket; ``repro submit`` (or :func:`check_via_service`) sends it
:class:`repro.api.CheckRequest` payloads over the versioned JSON-lines
protocol of :mod:`repro.service.protocol` (``repro-service/v1``).  Jobs are
routed to worker processes keyed by circuit fingerprint, so repeated checks
of the same design reuse warm unrolled models, learned cubes and open
knowledge-base handles instead of paying cold start each time.  See
``docs/service.md`` for the protocol schema and job lifecycle, and
``docs/resilience.md`` for the failure-handling contract (typed causes,
retries, deadlines, quarantine, drain).
"""

from repro.service.client import (
    SOCKET_ENV,
    JobFailure,
    RetryPolicy,
    ServiceClient,
    ServiceConnectionLost,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
    check_in_process,
    check_via_service,
    default_socket_path,
    service_available,
)
from repro.service.fleet import (
    ENDPOINTS_ENV,
    FLEET_FILE_ENV,
    FleetEndpoint,
    FleetError,
    FleetRouter,
    probe_endpoint,
    rendezvous_order,
    resolve_endpoints,
    sync_stores,
)
from repro.service.protocol import (
    FAILURE_CAUSES,
    JOB_STATES,
    PROTOCOL,
    VERBS,
    ProtocolError,
)
from repro.service.supervisor import ServiceOptions, Supervisor, serve

__all__ = [
    "ENDPOINTS_ENV",
    "FAILURE_CAUSES",
    "FLEET_FILE_ENV",
    "FleetEndpoint",
    "FleetError",
    "FleetRouter",
    "JOB_STATES",
    "JobFailure",
    "PROTOCOL",
    "ProtocolError",
    "RetryPolicy",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceConnectionLost",
    "ServiceError",
    "ServiceOptions",
    "ServiceTimeout",
    "ServiceUnavailable",
    "Supervisor",
    "VERBS",
    "check_in_process",
    "check_via_service",
    "default_socket_path",
    "probe_endpoint",
    "rendezvous_order",
    "resolve_endpoints",
    "serve",
    "service_available",
    "sync_stores",
]
