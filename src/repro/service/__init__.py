"""Verification as a service: a daemon with warm per-circuit workers.

``repro serve`` runs the asyncio :class:`~repro.service.supervisor.Supervisor`
on a unix socket; ``repro submit`` (or :func:`check_via_service`) sends it
:class:`repro.api.CheckRequest` payloads over the versioned JSON-lines
protocol of :mod:`repro.service.protocol` (``repro-service/v1``).  Jobs are
routed to worker processes keyed by circuit fingerprint, so repeated checks
of the same design reuse warm unrolled models, learned cubes and open
knowledge-base handles instead of paying cold start each time.  See
``docs/service.md`` for the protocol schema and job lifecycle.
"""

from repro.service.client import (
    SOCKET_ENV,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    check_via_service,
    default_socket_path,
    service_available,
)
from repro.service.protocol import JOB_STATES, PROTOCOL, VERBS, ProtocolError
from repro.service.supervisor import ServiceOptions, Supervisor, serve

__all__ = [
    "JOB_STATES",
    "PROTOCOL",
    "ProtocolError",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceError",
    "ServiceOptions",
    "ServiceUnavailable",
    "Supervisor",
    "VERBS",
    "check_via_service",
    "default_socket_path",
    "serve",
    "service_available",
]
