"""Verification as a service: a daemon with warm per-circuit workers.

``repro serve`` runs the asyncio :class:`~repro.service.supervisor.Supervisor`
on a unix socket; ``repro submit`` (or :func:`check_via_service`) sends it
:class:`repro.api.CheckRequest` payloads over the versioned JSON-lines
protocol of :mod:`repro.service.protocol` (``repro-service/v1``).  Jobs are
routed to worker processes keyed by circuit fingerprint, so repeated checks
of the same design reuse warm unrolled models, learned cubes and open
knowledge-base handles instead of paying cold start each time.  See
``docs/service.md`` for the protocol schema and job lifecycle, and
``docs/resilience.md`` for the failure-handling contract (typed causes,
retries, deadlines, quarantine, drain).
"""

from repro.service.client import (
    SOCKET_ENV,
    JobFailure,
    RetryPolicy,
    ServiceClient,
    ServiceConnectionLost,
    ServiceError,
    ServiceTimeout,
    ServiceUnavailable,
    check_via_service,
    default_socket_path,
    service_available,
)
from repro.service.protocol import (
    FAILURE_CAUSES,
    JOB_STATES,
    PROTOCOL,
    VERBS,
    ProtocolError,
)
from repro.service.supervisor import ServiceOptions, Supervisor, serve

__all__ = [
    "FAILURE_CAUSES",
    "JOB_STATES",
    "JobFailure",
    "PROTOCOL",
    "ProtocolError",
    "RetryPolicy",
    "SOCKET_ENV",
    "ServiceClient",
    "ServiceConnectionLost",
    "ServiceError",
    "ServiceOptions",
    "ServiceTimeout",
    "ServiceUnavailable",
    "Supervisor",
    "VERBS",
    "check_via_service",
    "default_socket_path",
    "serve",
    "service_available",
]
