"""Modular arithmetic constraint solving (Section 4 of the paper).

Datapath constraints are solved in the modulo-``2**n`` number system rather
than over the integers, because hardware signals are fixed-width bit-vectors
and solutions that arise from value wrap-around ("modulation") must not be
missed -- otherwise the checker would report *false negatives* (missed
counterexamples).

* :mod:`repro.modsolver.modular` -- multiplicative inverses of bit-vectors,
  plain and *with product k* (paper Definitions 3-4, Theorems 1-2).
* :mod:`repro.modsolver.linear` -- complete solution of linear systems
  ``A·x = b (mod 2**n)`` in the closed form ``x = x0 + N·f`` of the paper.
* :mod:`repro.modsolver.nonlinear` -- heuristic factoring-based enumeration
  for multiplier / shifter constraints, which are substituted to make the
  remaining system linear.
* :mod:`repro.modsolver.extract` -- extraction of arithmetic constraints from
  the datapath portion of a (time-frame expanded) netlist.
* :mod:`repro.modsolver.result` -- the typed solver results
  (:class:`Solution` / :class:`Infeasible` with an unsatisfiable-core
  certificate / :class:`Unknown` for exhausted budgets), which keep
  "proved infeasible" strictly apart from "gave up" so the search-learning
  layer only ever learns from proofs.
"""

from repro.modsolver.modular import (
    multiplicative_inverse,
    multiplicative_inverse_with_product,
    solve_scalar_congruence,
    odd_part,
    two_adic_valuation,
    ScalarSolutions,
)
from repro.modsolver.linear import (
    ModularLinearSystem,
    ModularSolutionSet,
    LinearConstraint,
)
from repro.modsolver.nonlinear import (
    NonlinearConstraint,
    enumerate_factor_pairs,
    NonlinearSolver,
)
from repro.modsolver.extract import DatapathConstraintExtractor, ArithmeticProblem
from repro.modsolver.result import Infeasible, Solution, Unknown

__all__ = [
    "Solution",
    "Infeasible",
    "Unknown",
    "multiplicative_inverse",
    "multiplicative_inverse_with_product",
    "solve_scalar_congruence",
    "odd_part",
    "two_adic_valuation",
    "ScalarSolutions",
    "ModularLinearSystem",
    "ModularSolutionSet",
    "LinearConstraint",
    "NonlinearConstraint",
    "enumerate_factor_pairs",
    "NonlinearSolver",
    "DatapathConstraintExtractor",
    "ArithmeticProblem",
]
