"""Multiplicative inverses of bit-vectors modulo ``2**n``.

This module implements Definitions 3-4 and Theorems 1-2 of the paper:

* every *odd* ``n``-bit vector has exactly one multiplicative inverse
  modulo ``2**n``;
* an even vector ``a = a' * 2**m`` (``a'`` odd) has no inverse, but its
  *multiplicative inverse with product k* exists exactly when ``2**m``
  divides ``k`` and then has exactly ``2**m`` values, expressible in the
  closed form ``(b + 2**(n-m) * t) mod 2**n`` for ``t = 0 .. 2**m - 1``
  where ``b`` solves ``a' * b = k / 2**m (mod 2**n)``.

:func:`solve_scalar_congruence` packages the theorems as the scalar
congruence solver ``a * x = k (mod 2**n)`` used by the linear system solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


def two_adic_valuation(value: int) -> int:
    """The exponent of the largest power of two dividing ``value``.

    By convention the valuation of 0 is ``+inf``; since callers always work
    modulo ``2**n`` we return a large sentinel instead (callers treat zero
    specially before asking).
    """
    if value == 0:
        raise ValueError("two_adic_valuation(0) is infinite; handle zero separately")
    v = 0
    while value % 2 == 0:
        value //= 2
        v += 1
    return v


def odd_part(value: int) -> int:
    """The greatest odd factor ``a'`` of ``value`` (``value = a' * 2**m``)."""
    if value == 0:
        raise ValueError("zero has no odd part")
    while value % 2 == 0:
        value //= 2
    return value


def multiplicative_inverse(a: int, width: int) -> int:
    """The unique inverse of an odd ``a`` modulo ``2**width`` (Definition 3).

    Raises ``ValueError`` for even ``a`` (Theorem 1: only odd bit-vectors
    have a multiplicative inverse).
    """
    modulus = 1 << width
    a %= modulus
    if a % 2 == 0:
        raise ValueError("%d has no multiplicative inverse modulo 2**%d" % (a, width))
    # Newton / Hensel iteration doubles the number of correct bits each step.
    inverse = 1
    bits = 1
    while bits < width:
        inverse = (inverse * (2 - a * inverse)) % modulus
        bits *= 2
    return inverse % modulus


@dataclass(frozen=True)
class ScalarSolutions:
    """All solutions of ``a * x = k (mod 2**width)`` in closed form.

    The solution set is ``{ (base + step * t) mod 2**width : 0 <= t < count }``.
    For an odd ``a`` the set is the single value given by Theorem 1.1; for an
    even ``a = a' * 2**m`` with ``2**m | k`` it is the ``2**m`` values of
    Theorem 2 (``step = 2**(width-m)``); the special case ``a = 0`` gives the
    full value range when ``k = 0`` and no solution otherwise.
    """

    width: int
    base: int
    step: int
    count: int

    def values(self) -> Iterator[int]:
        """Iterate over every solution value."""
        modulus = 1 << self.width
        for t in range(self.count):
            yield (self.base + self.step * t) % modulus

    def smallest(self) -> int:
        """The smallest solution value."""
        return min(self.values()) if self.count <= 1 << 16 else self.base

    def contains(self, x: int) -> bool:
        """Membership test without enumerating (solves for ``t``)."""
        modulus = 1 << self.width
        x %= modulus
        if self.count == modulus and self.step == 1:
            return True
        delta = (x - self.base) % modulus
        if self.step == 0:
            return delta == 0
        if delta % self.step:
            return False
        return delta // self.step < self.count

    def __len__(self) -> int:
        return self.count


def solve_scalar_congruence(a: int, k: int, width: int) -> Optional[ScalarSolutions]:
    """Solve ``a * x = k (mod 2**width)``; ``None`` when no solution exists.

    This is the operational form of Theorems 1 and 2.
    """
    modulus = 1 << width
    a %= modulus
    k %= modulus
    if a == 0:
        if k == 0:
            return ScalarSolutions(width, 0, 1, modulus)
        return None
    if a % 2 == 1:
        # Theorem 1.1: unique solution inverse(a) * k.
        base = (multiplicative_inverse(a, width) * k) % modulus
        return ScalarSolutions(width, base, 0, 1)
    m = two_adic_valuation(a)
    if k % (1 << m) != 0:
        # Theorem 1.2: no inverse with product k.
        return None
    # Theorem 2: reduce to the odd sub-problem and expand the closed form.
    a_odd = a >> m
    k_reduced = k >> m
    base = (multiplicative_inverse(a_odd, width) * k_reduced) % modulus
    step = 1 << (width - m)
    return ScalarSolutions(width, base % modulus, step, 1 << m)


def multiplicative_inverse_with_product(a: int, k: int, width: int) -> List[int]:
    """All multiplicative inverses of ``a`` with product ``k`` (Definition 4).

    Returns the explicit (possibly empty) list of values; prefer
    :func:`solve_scalar_congruence` when the closed form is enough.  The
    special case ``a = 0`` follows the paper: 0 has no inverse with a
    non-zero product, and *every* bit-vector is an inverse of 0 with
    product 0 (the full list is returned only for widths up to 16 to avoid
    surprising blow-ups; ask :func:`solve_scalar_congruence` otherwise).
    """
    solutions = solve_scalar_congruence(a, k, width)
    if solutions is None:
        return []
    if solutions.count > (1 << 16):
        raise ValueError(
            "solution set of size %d is too large to enumerate; "
            "use solve_scalar_congruence for the closed form" % (solutions.count,)
        )
    return sorted(solutions.values())


def count_inverses_with_product(a: int, k: int, width: int) -> int:
    """Number of multiplicative inverses of ``a`` with product ``k`` (Theorem 1)."""
    solutions = solve_scalar_congruence(a, k, width)
    return 0 if solutions is None else solutions.count
