"""Extraction of arithmetic constraints from the unrolled datapath.

After the word-level ATPG has satisfied the control constraints, the
remaining requirements sit on arithmetic primitives whose operands are not
yet fully determined.  This module walks those primitives and produces an
:class:`ArithmeticProblem`: a set of linear equations (adders, subtractors,
constant-operand multipliers, constant shifts) plus non-linear constraints
(general multipliers, variable shifts), over ``(net, frame)`` variables,
grouped by bit width.

Partial knowledge from implication is preserved in two ways: fully known
operands become constants in the equations, and partially known operands
carry their cube so that candidate solutions from the solver can be checked
against the already-implied bits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple, Union

from repro.bitvector import BV3
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.nonlinear import NonlinearConstraint, NonlinearSolver
from repro.modsolver.result import Infeasible, Solution, Unknown
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.gates import BufGate, ConstGate

#: solver re-invocations spent reconciling a solution with partially
#: implied cubes (the bounded completion retry of :meth:`_solve_width`).
PARTIAL_CUBE_RETRY_BUDGET = 8


@dataclass
class ArithmeticProblem:
    """Arithmetic constraints over unrolled-model variables, grouped by width.

    Every extracted constraint is tagged with the engine keys whose
    *implied values* it encodes (operands folded to constants, plus the
    keys pinned from fully known cubes at solve time), so an infeasible
    answer carries a certificate expressed in engine keys -- exactly what
    conflict analysis needs to lift the clash back to its external roots.
    """

    linear_by_width: Dict[int, ModularLinearSystem] = field(default_factory=dict)
    nonlinear: List[NonlinearConstraint] = field(default_factory=list)
    cubes: Dict[Hashable, BV3] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when no arithmetic constraint was extracted."""
        return not self.nonlinear and all(
            not system.constraints for system in self.linear_by_width.values()
        )

    def variables(self) -> List[Hashable]:
        """All variables that appear in some constraint."""
        seen: List[Hashable] = []
        for system in self.linear_by_width.values():
            for var in system.variables:
                if var not in seen:
                    seen.append(var)
        for constraint in self.nonlinear:
            for var in constraint.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def solve(
        self, budget: int = 256, enumeration_limit: int = 64
    ) -> Union[Solution, Infeasible, Unknown]:
        """Solve every extracted constraint group (typed result).

        Widths are solved independently; the non-linear constraints of each
        width are handled by :class:`NonlinearSolver`.  Candidate solutions
        are filtered against the partially-implied cubes.  Returns

        * :class:`~repro.modsolver.result.Solution` with one combined
          assignment when every group is satisfiable,
        * :class:`~repro.modsolver.result.Infeasible` with an engine-key
          core when some group is *proved* contradictory (any single
          infeasible group certifies the whole problem), or
        * :class:`~repro.modsolver.result.Unknown` when a group ran out of
          budget or no in-budget candidate respected the partial cubes --
          never a proof, so callers must not learn from it.
        """
        solver = NonlinearSolver(budget=budget, enumeration_limit=enumeration_limit)
        combined: Dict[Hashable, int] = {}
        unknown: Optional[Unknown] = None
        widths = sorted(set(self.linear_by_width) | {c.width for c in self.nonlinear})
        for width in widths:
            linear = self.linear_by_width.get(width, ModularLinearSystem(width))
            nonlinear = [c for c in self.nonlinear if c.width == width]
            result = self._solve_width(solver, linear, nonlinear, width)
            if isinstance(result, Infeasible):
                # A certificate beats an Unknown from an earlier group.
                return result
            if isinstance(result, Unknown):
                unknown = result
                continue
            combined.update(result.assignment)
        if unknown is not None:
            return unknown
        return Solution(combined)

    def _solve_width(
        self,
        solver: NonlinearSolver,
        linear: ModularLinearSystem,
        nonlinear: List[NonlinearConstraint],
        width: int,
    ) -> Union[Solution, Infeasible, Unknown]:
        # Pin fully known variables, and try a small set of completions for
        # partially known ones (their cube's min/max completions).
        fixed: Dict[Hashable, int] = {}
        partial: List[Hashable] = []
        for var in set(linear.variables) | {
            v for c in nonlinear for v in c.variables()
        }:
            cube = self.cubes.get(var)
            if cube is None:
                continue
            if cube.is_fully_known():
                fixed[var] = cube.to_int()
            elif not cube.is_fully_unknown():
                partial.append(var)

        # Only implication-forced pins are present here, so an Infeasible
        # answer is a genuine certificate of the extracted system.
        result = solver.solve(linear, nonlinear, fixed=fixed)
        if not isinstance(result, Solution):
            return result
        return self._respect_partial_cubes(
            solver, linear, nonlinear, fixed, partial, result.assignment
        )

    def _respect_partial_cubes(
        self,
        solver: NonlinearSolver,
        linear: ModularLinearSystem,
        nonlinear: List[NonlinearConstraint],
        fixed: Dict[Hashable, int],
        partial: List[Hashable],
        solution: Dict[Hashable, int],
    ) -> Union[Solution, Unknown]:
        """Reconcile a solution with the partially implied cubes.

        Each violating variable is retried with *both* of its cube's
        boundary completions (min and max), depth-first, bounded by
        :data:`PARTIAL_CUBE_RETRY_BUDGET` solver re-invocations.  The pins
        are heuristic choices, so a failure here -- including an infeasible
        pinned system -- is only ever :class:`Unknown`, never a certificate.
        """
        budget = [PARTIAL_CUBE_RETRY_BUDGET]

        def refine(
            pinned: Dict[Hashable, int], candidate: Dict[Hashable, int]
        ) -> Optional[Solution]:
            violating = [
                var
                for var in partial
                if var in candidate and not self.cubes[var].contains_int(candidate[var])
            ]
            if not violating:
                return Solution(candidate)
            var = violating[0]
            completions = []
            for value in (self.cubes[var].min_value(), self.cubes[var].max_value()):
                if value not in completions:
                    completions.append(value)
            for value in completions:
                if budget[0] <= 0:
                    return None
                budget[0] -= 1
                attempt = dict(pinned)
                attempt[var] = value
                result = solver.solve(linear, nonlinear, fixed=attempt)
                if isinstance(result, Solution):
                    refined = refine(attempt, result.assignment)
                    if refined is not None:
                        return refined
            return None

        refined = refine(dict(fixed), solution)
        if refined is None:
            return Unknown("completion")
        return refined


class DatapathConstraintExtractor:
    """Builds an :class:`ArithmeticProblem` from unjustified arithmetic nodes."""

    def __init__(self, engine: ImplicationEngine):
        self.engine = engine

    def extract(self, nodes: Iterable[ImplicationNode]) -> ArithmeticProblem:
        """Extract constraints from the given (unjustified) nodes.

        Only arithmetic primitives contribute constraints; other node types
        are ignored (their requirements are handled by implication and by the
        completion phase of the justifier).

        The extraction closes over the *connected arithmetic network*: any
        arithmetic node sharing a still-undetermined variable with an already
        extracted constraint is pulled in as well.  Without this closure a
        solution for one equation could silently violate a neighbouring
        arithmetic gate (e.g. ``diff = scaled - a`` solved while ignoring
        ``scaled = 3 * a``), which is exactly the false-negative effect the
        paper's combined solver avoids.
        """
        problem = ArithmeticProblem()
        worklist = deque(nodes)
        processed: set = set()
        while worklist:
            node = worklist.popleft()
            if id(node) in processed:
                continue
            processed.add(id(node))
            tag = node.tag
            gate = tag[0] if isinstance(tag, tuple) else None
            if isinstance(gate, Adder):
                self._extract_adder(problem, node, gate)
            elif isinstance(gate, Subtractor):
                self._extract_subtractor(problem, node, gate)
            elif isinstance(gate, Multiplier):
                self._extract_multiplier(problem, node, gate)
            elif isinstance(gate, (ShiftLeft, ShiftRight)):
                self._extract_shift(problem, node, gate)
            elif isinstance(gate, BufGate) and gate.output.width > 1:
                # Word-level buffers (assign aliases from HDL elaboration)
                # are pure equalities: without them, arithmetic constraints
                # on either side of the alias land on *different* solver
                # variables and the system degenerates to a satisfiable
                # relaxation -- no solution respects the real netlist and
                # no infeasibility can ever be certified.
                self._extract_buffer(problem, node, gate)
            else:
                continue
            # Pull in neighbouring arithmetic nodes (and the word-level
            # buffers gluing them together) connected through any variable
            # that is not yet fully determined.
            for key in node.keys:
                cube = self.engine.assignment.get(key)
                if cube.is_fully_known():
                    continue
                for neighbour in self.engine.watchers(key):
                    if id(neighbour) in processed:
                        continue
                    neighbour_gate = (
                        neighbour.tag[0] if isinstance(neighbour.tag, tuple) else None
                    )
                    if isinstance(
                        neighbour_gate,
                        (Adder, Subtractor, Multiplier, ShiftLeft, ShiftRight),
                    ) or (
                        isinstance(neighbour_gate, BufGate)
                        and neighbour_gate.output.width > 1
                    ):
                        worklist.append(neighbour)
        return problem

    # ------------------------------------------------------------------
    def _linear_system(self, problem: ArithmeticProblem, width: int) -> ModularLinearSystem:
        system = problem.linear_by_width.get(width)
        if system is None:
            system = ModularLinearSystem(width)
            problem.linear_by_width[width] = system
        return system

    def _term(
        self, problem: ArithmeticProblem, key: Hashable
    ) -> Tuple[Optional[Hashable], int, FrozenSet[Hashable]]:
        """Return (variable or None, constant part, provenance) for a pin key.

        A pin folded to a constant contributes its key as provenance: the
        constant is an *implied value*, and any certificate using the
        constraint must be traceable back through that key's trail entries.
        Pins kept as variables carry no assumption and stay untagged.
        """
        cube = self.engine.assignment.get(key)
        problem.cubes[key] = cube
        if cube.is_fully_known():
            return None, cube.to_int(), frozenset((key,))
        return key, 0, frozenset()

    def _add_signed_constraint(
        self,
        problem: ArithmeticProblem,
        width: int,
        signed_keys: Iterable[Tuple[Hashable, int]],
    ) -> None:
        """Fold ``sum(sign * pin) = 0`` into the width's linear system.

        Fully known pins become constants (contributing their keys to the
        constraint's provenance tags); the rest stay solver variables.
        """
        system = self._linear_system(problem, width)
        coefficients: Dict[Hashable, int] = {}
        constant = 0
        tags: FrozenSet[Hashable] = frozenset()
        for key, sign in signed_keys:
            var, const, term_tags = self._term(problem, key)
            tags |= term_tags
            if var is None:
                constant += sign * const
            else:
                coefficients[var] = coefficients.get(var, 0) + sign
        # sum(sign * pin) = 0  ->  sum(coeff * var) = -constant
        system.add_constraint(coefficients, -constant, tags)

    def _extract_adder(self, problem: ArithmeticProblem, node: ImplicationNode, gate: Adder) -> None:
        keys = dict(zip(self._adder_pin_names(gate), node.keys))
        signed = [(keys["a"], 1), (keys["b"], 1), (keys["out"], -1)]
        if "cin" in keys:
            signed.append((keys["cin"], 1))
        self._add_signed_constraint(problem, gate.output.width, signed)

    def _extract_buffer(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate: BufGate
    ) -> None:
        keys = dict(zip(("a", "out"), node.keys))
        self._add_signed_constraint(
            problem, gate.output.width, [(keys["a"], 1), (keys["out"], -1)]
        )

    def _extract_subtractor(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate: Subtractor
    ) -> None:
        keys = dict(zip(("a", "b", "out"), node.keys))
        self._add_signed_constraint(
            problem, gate.output.width,
            [(keys["a"], 1), (keys["b"], -1), (keys["out"], -1)],
        )

    def _extract_multiplier(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate: Multiplier
    ) -> None:
        width = gate.output.width
        keys = dict(zip(("a", "b", "out"), node.keys))
        a_var, a_const, a_tags = self._term(problem, keys["a"])
        b_var, b_const, b_tags = self._term(problem, keys["b"])
        out_var, out_const, out_tags = self._term(problem, keys["out"])
        tags = a_tags | b_tags | out_tags

        constant_operand = None
        if isinstance(gate.a.driver, ConstGate):
            constant_operand = "a"
        elif isinstance(gate.b.driver, ConstGate):
            constant_operand = "b"

        if a_var is None or b_var is None or constant_operand is not None:
            # Linear: at least one operand is a known constant.
            system = self._linear_system(problem, width)
            if a_var is None and b_var is None:
                product = (a_const * b_const) % (1 << width)
                if out_var is None:
                    system.add_constraint({}, product - out_const, tags)
                else:
                    system.add_constraint({out_var: 1}, product, tags)
            else:
                known = a_const if a_var is None else b_const
                variable = b_var if a_var is None else a_var
                coefficients = {variable: known}
                if out_var is None:
                    system.add_constraint(coefficients, out_const, tags)
                else:
                    coefficients[out_var] = coefficients.get(out_var, 0) - 1
                    system.add_constraint(coefficients, 0, tags)
            return

        problem.nonlinear.append(
            NonlinearConstraint(
                kind="mul",
                a=a_var if a_var is not None else a_const,
                b=b_var if b_var is not None else b_const,
                product=out_var if out_var is not None else out_const,
                width=width,
                tags=tags,
            )
        )

    def _extract_shift(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate
    ) -> None:
        width = gate.output.width
        kind = "shl" if isinstance(gate, ShiftLeft) else "shr"
        if gate.amount is None:
            # Constant shift: left shift is a linear multiplication by 2**k;
            # right shift is handled as a non-linear constraint only when the
            # operand is unknown (division is not linear in the modular ring).
            keys = dict(zip(("a", "out"), node.keys))
            a_var, a_const, a_tags = self._term(problem, keys["a"])
            out_var, out_const, out_tags = self._term(problem, keys["out"])
            tags = a_tags | out_tags
            if kind == "shl":
                system = self._linear_system(problem, width)
                factor = (1 << gate.constant) % (1 << width)
                coefficients: Dict[Hashable, int] = {}
                constant = 0
                if a_var is None:
                    constant += factor * a_const
                else:
                    coefficients[a_var] = factor
                if out_var is None:
                    constant -= out_const
                else:
                    coefficients[out_var] = coefficients.get(out_var, 0) - 1
                system.add_constraint(coefficients, -constant, tags)
            else:
                problem.nonlinear.append(
                    NonlinearConstraint(
                        kind="shr",
                        a=a_var if a_var is not None else a_const,
                        b=gate.constant,
                        product=out_var if out_var is not None else out_const,
                        width=width,
                        tags=tags,
                    )
                )
            return
        keys = dict(zip(("a", "amount", "out"), node.keys))
        a_var, a_const, a_tags = self._term(problem, keys["a"])
        amount_var, amount_const, amount_tags = self._term(problem, keys["amount"])
        out_var, out_const, out_tags = self._term(problem, keys["out"])
        problem.nonlinear.append(
            NonlinearConstraint(
                kind=kind,
                a=a_var if a_var is not None else a_const,
                b=amount_var if amount_var is not None else amount_const,
                product=out_var if out_var is not None else out_const,
                width=width,
                tags=a_tags | amount_tags | out_tags,
            )
        )

    @staticmethod
    def _adder_pin_names(gate: Adder) -> List[str]:
        names = ["a", "b"]
        if gate.carry_in is not None:
            names.append("cin")
        names.append("out")
        if gate.carry_out is not None:
            names.append("cout")
        return names
