"""Extraction of arithmetic constraints from the unrolled datapath.

After the word-level ATPG has satisfied the control constraints, the
remaining requirements sit on arithmetic primitives whose operands are not
yet fully determined.  This module walks those primitives and produces an
:class:`ArithmeticProblem`: a set of linear equations (adders, subtractors,
constant-operand multipliers, constant shifts) plus non-linear constraints
(general multipliers, variable shifts), over ``(net, frame)`` variables,
grouped by bit width.

Partial knowledge from implication is preserved in two ways: fully known
operands become constants in the equations, and partially known operands
carry their cube so that candidate solutions from the solver can be checked
against the already-implied bits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.bitvector import BV3
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.nonlinear import NonlinearConstraint, NonlinearSolver
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.gates import ConstGate


@dataclass
class ArithmeticProblem:
    """Arithmetic constraints over unrolled-model variables, grouped by width."""

    linear_by_width: Dict[int, ModularLinearSystem] = field(default_factory=dict)
    nonlinear: List[NonlinearConstraint] = field(default_factory=list)
    cubes: Dict[Hashable, BV3] = field(default_factory=dict)

    def is_empty(self) -> bool:
        """True when no arithmetic constraint was extracted."""
        return not self.nonlinear and all(
            not system.constraints for system in self.linear_by_width.values()
        )

    def variables(self) -> List[Hashable]:
        """All variables that appear in some constraint."""
        seen: List[Hashable] = []
        for system in self.linear_by_width.values():
            for var in system.variables:
                if var not in seen:
                    seen.append(var)
        for constraint in self.nonlinear:
            for var in constraint.variables():
                if var not in seen:
                    seen.append(var)
        return seen

    def solve(
        self, budget: int = 256, enumeration_limit: int = 64
    ) -> Optional[Dict[Hashable, int]]:
        """Find one assignment satisfying every extracted constraint.

        Widths are solved independently; the non-linear constraints of each
        width are handled by :class:`NonlinearSolver`.  Candidate solutions
        are filtered against the partially-implied cubes.  Returns ``None``
        when any group is infeasible (or no candidate within the budget
        respects the cubes).
        """
        solver = NonlinearSolver(budget=budget, enumeration_limit=enumeration_limit)
        combined: Dict[Hashable, int] = {}
        widths = sorted(set(self.linear_by_width) | {c.width for c in self.nonlinear})
        for width in widths:
            linear = self.linear_by_width.get(width, ModularLinearSystem(width))
            nonlinear = [c for c in self.nonlinear if c.width == width]
            solution = self._solve_width(solver, linear, nonlinear, width)
            if solution is None:
                return None
            combined.update(solution)
        return combined

    def _solve_width(
        self,
        solver: NonlinearSolver,
        linear: ModularLinearSystem,
        nonlinear: List[NonlinearConstraint],
        width: int,
    ) -> Optional[Dict[Hashable, int]]:
        # Pin fully known variables, and try a small set of completions for
        # partially known ones (their cube's min/max completions).
        fixed: Dict[Hashable, int] = {}
        partial: List[Hashable] = []
        for var in set(linear.variables) | {
            v for c in nonlinear for v in c.variables()
        }:
            cube = self.cubes.get(var)
            if cube is None:
                continue
            if cube.is_fully_known():
                fixed[var] = cube.to_int()
            elif not cube.is_fully_unknown():
                partial.append(var)

        solution = solver.solve(linear, nonlinear, fixed=fixed)
        if solution is None:
            return None
        # Respect partially implied cubes; when violated, retry with the
        # offending variable pinned to a completion of its cube.
        for attempt in range(4):
            violating = [
                var
                for var in partial
                if var in solution and not self.cubes[var].contains_int(solution[var])
            ]
            if not violating:
                return solution
            for var in violating:
                fixed[var] = self.cubes[var].min_value() if attempt % 2 == 0 else self.cubes[var].max_value()
            solution = solver.solve(linear, nonlinear, fixed=fixed)
            if solution is None:
                return None
        return solution if all(
            var not in solution or self.cubes[var].contains_int(solution[var])
            for var in partial
        ) else None


class DatapathConstraintExtractor:
    """Builds an :class:`ArithmeticProblem` from unjustified arithmetic nodes."""

    def __init__(self, engine: ImplicationEngine):
        self.engine = engine

    def extract(self, nodes: Iterable[ImplicationNode]) -> ArithmeticProblem:
        """Extract constraints from the given (unjustified) nodes.

        Only arithmetic primitives contribute constraints; other node types
        are ignored (their requirements are handled by implication and by the
        completion phase of the justifier).

        The extraction closes over the *connected arithmetic network*: any
        arithmetic node sharing a still-undetermined variable with an already
        extracted constraint is pulled in as well.  Without this closure a
        solution for one equation could silently violate a neighbouring
        arithmetic gate (e.g. ``diff = scaled - a`` solved while ignoring
        ``scaled = 3 * a``), which is exactly the false-negative effect the
        paper's combined solver avoids.
        """
        problem = ArithmeticProblem()
        worklist = deque(nodes)
        processed: set = set()
        while worklist:
            node = worklist.popleft()
            if id(node) in processed:
                continue
            processed.add(id(node))
            tag = node.tag
            gate = tag[0] if isinstance(tag, tuple) else None
            if isinstance(gate, Adder):
                self._extract_adder(problem, node, gate)
            elif isinstance(gate, Subtractor):
                self._extract_subtractor(problem, node, gate)
            elif isinstance(gate, Multiplier):
                self._extract_multiplier(problem, node, gate)
            elif isinstance(gate, (ShiftLeft, ShiftRight)):
                self._extract_shift(problem, node, gate)
            else:
                continue
            # Pull in neighbouring arithmetic nodes connected through any
            # variable that is not yet fully determined.
            for key in node.keys:
                cube = self.engine.assignment.get(key)
                if cube.is_fully_known():
                    continue
                for neighbour in self.engine.watchers(key):
                    if id(neighbour) in processed:
                        continue
                    neighbour_gate = (
                        neighbour.tag[0] if isinstance(neighbour.tag, tuple) else None
                    )
                    if isinstance(
                        neighbour_gate,
                        (Adder, Subtractor, Multiplier, ShiftLeft, ShiftRight),
                    ):
                        worklist.append(neighbour)
        return problem

    # ------------------------------------------------------------------
    def _linear_system(self, problem: ArithmeticProblem, width: int) -> ModularLinearSystem:
        system = problem.linear_by_width.get(width)
        if system is None:
            system = ModularLinearSystem(width)
            problem.linear_by_width[width] = system
        return system

    def _term(self, problem: ArithmeticProblem, key: Hashable) -> Tuple[Optional[Hashable], int]:
        """Return (variable or None, constant part) for a pin key."""
        cube = self.engine.assignment.get(key)
        problem.cubes[key] = cube
        if cube.is_fully_known():
            return None, cube.to_int()
        return key, 0

    def _extract_adder(self, problem: ArithmeticProblem, node: ImplicationNode, gate: Adder) -> None:
        width = gate.output.width
        system = self._linear_system(problem, width)
        keys = dict(zip(self._adder_pin_names(gate), node.keys))
        coefficients: Dict[Hashable, int] = {}
        constant = 0
        for name, sign in (("a", 1), ("b", 1), ("out", -1)):
            var, const = self._term(problem, keys[name])
            if var is None:
                constant += sign * const
            else:
                coefficients[var] = coefficients.get(var, 0) + sign
        if "cin" in keys:
            var, const = self._term(problem, keys["cin"])
            if var is None:
                constant += const
            else:
                coefficients[var] = coefficients.get(var, 0) + 1
        # a + b + cin - out = 0  ->  sum(coeff * var) = -constant
        system.add_constraint(coefficients, -constant)

    def _extract_subtractor(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate: Subtractor
    ) -> None:
        width = gate.output.width
        system = self._linear_system(problem, width)
        keys = dict(zip(("a", "b", "out"), node.keys))
        coefficients: Dict[Hashable, int] = {}
        constant = 0
        for name, sign in (("a", 1), ("b", -1), ("out", -1)):
            var, const = self._term(problem, keys[name])
            if var is None:
                constant += sign * const
            else:
                coefficients[var] = coefficients.get(var, 0) + sign
        system.add_constraint(coefficients, -constant)

    def _extract_multiplier(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate: Multiplier
    ) -> None:
        width = gate.output.width
        keys = dict(zip(("a", "b", "out"), node.keys))
        a_var, a_const = self._term(problem, keys["a"])
        b_var, b_const = self._term(problem, keys["b"])
        out_var, out_const = self._term(problem, keys["out"])

        constant_operand = None
        if isinstance(gate.a.driver, ConstGate):
            constant_operand = "a"
        elif isinstance(gate.b.driver, ConstGate):
            constant_operand = "b"

        if a_var is None or b_var is None or constant_operand is not None:
            # Linear: at least one operand is a known constant.
            system = self._linear_system(problem, width)
            if a_var is None and b_var is None:
                product = (a_const * b_const) % (1 << width)
                if out_var is None:
                    system.add_constraint({}, product - out_const)
                else:
                    system.add_constraint({out_var: 1}, product)
            else:
                known = a_const if a_var is None else b_const
                variable = b_var if a_var is None else a_var
                coefficients = {variable: known}
                if out_var is None:
                    system.add_constraint(coefficients, out_const)
                else:
                    coefficients[out_var] = coefficients.get(out_var, 0) - 1
                    system.add_constraint(coefficients, 0)
            return

        problem.nonlinear.append(
            NonlinearConstraint(
                kind="mul",
                a=a_var if a_var is not None else a_const,
                b=b_var if b_var is not None else b_const,
                product=out_var if out_var is not None else out_const,
                width=width,
            )
        )

    def _extract_shift(
        self, problem: ArithmeticProblem, node: ImplicationNode, gate
    ) -> None:
        width = gate.output.width
        kind = "shl" if isinstance(gate, ShiftLeft) else "shr"
        if gate.amount is None:
            # Constant shift: left shift is a linear multiplication by 2**k;
            # right shift is handled as a non-linear constraint only when the
            # operand is unknown (division is not linear in the modular ring).
            keys = dict(zip(("a", "out"), node.keys))
            a_var, a_const = self._term(problem, keys["a"])
            out_var, out_const = self._term(problem, keys["out"])
            if kind == "shl":
                system = self._linear_system(problem, width)
                factor = (1 << gate.constant) % (1 << width)
                coefficients: Dict[Hashable, int] = {}
                constant = 0
                if a_var is None:
                    constant += factor * a_const
                else:
                    coefficients[a_var] = factor
                if out_var is None:
                    constant -= out_const
                else:
                    coefficients[out_var] = coefficients.get(out_var, 0) - 1
                system.add_constraint(coefficients, -constant)
            else:
                problem.nonlinear.append(
                    NonlinearConstraint(
                        kind="shr",
                        a=a_var if a_var is not None else a_const,
                        b=gate.constant,
                        product=out_var if out_var is not None else out_const,
                        width=width,
                    )
                )
            return
        keys = dict(zip(("a", "amount", "out"), node.keys))
        a_var, a_const = self._term(problem, keys["a"])
        amount_var, amount_const = self._term(problem, keys["amount"])
        out_var, out_const = self._term(problem, keys["out"])
        problem.nonlinear.append(
            NonlinearConstraint(
                kind=kind,
                a=a_var if a_var is not None else a_const,
                b=amount_var if amount_var is not None else amount_const,
                product=out_var if out_var is not None else out_const,
                width=width,
            )
        )

    @staticmethod
    def _adder_pin_names(gate: Adder) -> List[str]:
        names = ["a", "b"]
        if gate.carry_in is not None:
            names.append("cin")
        names.append("out")
        if gate.carry_out is not None:
            names.append("cout")
        return names
