"""Typed results for the modular datapath solver stack.

Historically every layer of the solver (linear system, non-linear
enumeration, extracted arithmetic problem) answered with ``Optional[...]``,
which conflated two very different ``None``\\ s:

* the system is **proved infeasible** -- a theorem about the constraints,
  safe to learn from; and
* the **search budget ran out** -- says nothing about the constraints, so
  nothing may be learned and the caller may only prune *this* branch.

The distinction is load-bearing for the conflict-learning layer riding the
ATPG search: learning from a budget-exhausted "no" would install unsound
cubes.  The three result types below make the distinction explicit:

* :class:`Solution` -- a satisfying assignment was found;
* :class:`Infeasible` -- the constraints are contradictory; ``core`` carries
  the *infeasibility certificate*: the provenance tags of a (minimal-ish)
  set of source constraints that already clash.  When the solver runs
  inside the justifier those tags are implication-engine keys, and seeding
  conflict analysis with them lifts the certificate down to the search
  decisions that produced the clashing values;
* :class:`Unknown` -- the solver gave up (budget exhausted, incomplete
  enumeration, heuristic closure).  Callers must treat this as "prune
  locally, learn nothing".

``Infeasible`` and ``Unknown`` are falsy and ``Solution`` (and the linear
solver's :class:`~repro.modsolver.linear.ModularSolutionSet`) truthy, so
``if result:`` reads as "was a solution found".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable


@dataclass(frozen=True)
class Solution:
    """A satisfying assignment for the queried constraint system."""

    assignment: Dict[Hashable, int] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return True


@dataclass(frozen=True)
class Infeasible:
    """The system is proved unsatisfiable.

    ``core`` is the union of the provenance tags of the source constraints
    participating in the refutation.  It is *minimal-ish*: the linear solver
    reports exactly the constraints with a non-zero multiplier in the row
    combination that produced the unsolvable congruence, which cannot drop
    any necessary member (dropping one changes the combination), though it
    is not guaranteed to be a globally minimal unsatisfiable subset.
    """

    core: FrozenSet[Hashable] = frozenset()

    def __bool__(self) -> bool:
        return False


@dataclass(frozen=True)
class Unknown:
    """No verdict: the solver's budget or enumeration gave out.

    Never a proof of anything -- callers may prune the current branch only
    and must not record learned facts from it.
    """

    reason: str = "budget"

    def __bool__(self) -> bool:
        return False
