"""Heuristic handling of non-linear datapath constraints.

Non-linear constraints arise from multipliers with two variable operands and
from shifters with a variable shift amount.  Completely solving them is hard,
so -- following the paper -- we *enumerate* candidate values analytically
(prime/power-of-two factoring of the product, shift-amount enumeration),
substitute each candidate to make the remaining constraint system linear, and
let the linear solver finish the job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.modular import solve_scalar_congruence
from repro.modsolver.result import Infeasible, Solution, Unknown


@dataclass
class NonlinearConstraint:
    """A constraint ``a * b = product (mod 2**width)`` or a variable shift.

    ``kind`` is ``"mul"`` or ``"shl"``/``"shr"``.  Each operand is either a
    variable identifier or an ``int`` constant; ``product`` likewise.
    ``tags`` is the constraint's provenance (see
    :class:`~repro.modsolver.linear.LinearConstraint`), folded into any
    infeasibility core whose refutation used this constraint.
    """

    kind: str
    a: Hashable
    b: Hashable
    product: Hashable
    width: int
    tags: FrozenSet[Hashable] = field(default_factory=frozenset)

    def operands(self) -> Tuple[Hashable, Hashable, Hashable]:
        return (self.a, self.b, self.product)

    def variables(self) -> List[Hashable]:
        """The non-constant operands."""
        return [op for op in self.operands() if not isinstance(op, int)]

    def is_satisfied(self, assignment: Mapping[Hashable, int]) -> bool:
        """Check the constraint under a full assignment."""
        modulus = 1 << self.width

        def value(op: Hashable) -> int:
            return op % modulus if isinstance(op, int) else assignment[op] % modulus

        a, b, product = value(self.a), value(self.b), value(self.product)
        if self.kind == "mul":
            return (a * b) % modulus == product
        if self.kind == "shl":
            return (a << b) % modulus == product if b < self.width else product == 0
        if self.kind == "shr":
            return (a >> b) % modulus == product
        raise ValueError("unknown nonlinear constraint kind %r" % (self.kind,))


def enumerate_factor_pairs(
    product: int, width: int, limit: int = 256
) -> Iterator[Tuple[int, int]]:
    """Enumerate pairs ``(a, b)`` with ``a * b = product (mod 2**width)``.

    The enumeration is heuristic but sound: every yielded pair satisfies the
    congruence.  It walks candidate values of ``a`` in a factor-first order
    (divisors of the product and of its small modular representatives, then
    odd values, then the remaining even values) and solves for ``b`` with the
    multiplicative-inverse-with-product machinery.  At most ``limit`` pairs
    are produced.
    """
    modulus = 1 << width
    product %= modulus
    produced = 0
    seen = set()

    for a in _candidate_factors(product, width):
        solutions = solve_scalar_congruence(a, product, width)
        if solutions is None:
            continue
        for b in solutions.values():
            if (a, b) in seen:
                continue
            seen.add((a, b))
            yield a, b
            produced += 1
            if produced >= limit:
                return


def _candidate_factors(product: int, width: int) -> Iterator[int]:
    """Candidate values for one multiplier operand, best-first."""
    modulus = 1 << width
    emitted = set()

    def emit(value: int) -> Iterator[int]:
        value %= modulus
        if value not in emitted:
            emitted.add(value)
            yield value

    # Divisors of small modular representatives of the product first: these
    # are the "prime factoring" candidates of the paper.
    for representative in (product, product + modulus, product + 2 * modulus):
        if representative == 0:
            continue
        for divisor in _divisors(representative):
            if divisor < modulus:
                yield from emit(divisor)
    # Then every odd value (each has a unique partner), then the rest.
    for a in range(1, modulus, 2):
        yield from emit(a)
    for a in range(0, modulus, 2):
        yield from emit(a)


def _divisors(value: int) -> List[int]:
    """All positive divisors of ``value`` (small values only)."""
    value = abs(value)
    result = []
    d = 1
    while d * d <= value:
        if value % d == 0:
            result.append(d)
            result.append(value // d)
        d += 1
    return sorted(set(result))


@dataclass
class _CandidatePlan:
    """The substitutions linearising one non-linear constraint.

    ``candidates`` yields ``(substitution, tags)`` pairs, where ``tags`` is
    the provenance of the known values the substitution was derived from.
    ``complete`` is True only when the enumeration covers *every* value the
    substituted variables could take -- the precondition for turning "all
    branches refuted" into an infeasibility certificate.  ``base_tags``
    carries the provenance that already refutes the constraint when the
    plan is complete and empty (e.g. an unsolvable scalar congruence).
    """

    candidates: Iterable[Tuple[Dict[Hashable, int], FrozenSet[Hashable]]]
    complete: bool
    base_tags: FrozenSet[Hashable] = frozenset()


class NonlinearSolver:
    """Solve a mixed linear / non-linear constraint system by enumeration.

    The solver repeatedly picks candidate substitutions for the non-linear
    constraints (factor pairs for multipliers, shift amounts for shifters),
    adds the induced linear equations to a copy of the linear system, solves
    it modulo ``2**width`` and checks the remaining constraints.  The number
    of candidate substitutions explored is bounded by ``budget``.

    Results are typed (see :mod:`repro.modsolver.result`):

    * :class:`~repro.modsolver.result.Solution` -- a satisfying assignment;
    * :class:`~repro.modsolver.result.Infeasible` -- proved unsatisfiable.
      The proof obligation is real: every branch of a *complete*
      substitution enumeration must have been closed by a linear
      infeasibility certificate (or a substitution clash with an existing
      pin); the reported core is the union of the branch cores and the
      constraint's own provenance.
    * :class:`~repro.modsolver.result.Unknown` -- the budget ran out, the
      enumeration was incomplete (factor sampling, shift-amount classes) or
      some branch was closed heuristically.  Never a proof.
    """

    def __init__(self, budget: int = 512, enumeration_limit: int = 64):
        self.budget = budget
        self.enumeration_limit = enumeration_limit

    def solve(
        self,
        linear: ModularLinearSystem,
        nonlinear: Sequence[NonlinearConstraint],
        fixed: Optional[Mapping[Hashable, int]] = None,
        fixed_tags: Optional[Mapping[Hashable, FrozenSet[Hashable]]] = None,
    ) -> Union[Solution, Infeasible, Unknown]:
        """Solve the system with ``fixed`` variables pinned to known values.

        ``fixed_tags`` optionally maps pinned variables to their provenance
        (default: the variable itself), so pins forced by implication can
        enter infeasibility cores under their engine keys.  For purely
        linear systems the answer is exact (never ``Unknown``).
        """
        fixed = dict(fixed or {})
        tags: Dict[Hashable, FrozenSet[Hashable]] = {
            var: frozenset(ts) for var, ts in (fixed_tags or {}).items()
        }
        for var in fixed:
            tags.setdefault(var, frozenset((var,)))
        base = self._with_fixed(linear, fixed, tags)
        if not nonlinear:
            return self._solve_linear(base, fixed, ())
        return self._solve_recursive(base, list(nonlinear), fixed, tags, self.budget)

    # ------------------------------------------------------------------
    def _with_fixed(
        self,
        linear: ModularLinearSystem,
        fixed: Mapping[Hashable, int],
        fixed_tags: Mapping[Hashable, FrozenSet[Hashable]],
    ) -> ModularLinearSystem:
        system = ModularLinearSystem(linear.width, linear.variables)
        for constraint in linear.constraints:
            system.add_constraint(constraint.coefficients, constraint.rhs, constraint.tags)
        for var, value in fixed.items():
            if var in system._var_index or any(
                var in c.coefficients for c in linear.constraints
            ):
                system.add_constraint({var: 1}, value, fixed_tags.get(var, (var,)))
        return system

    def _solve_linear(
        self,
        system: ModularLinearSystem,
        fixed: Mapping[Hashable, int],
        remaining_nonlinear: Sequence[NonlinearConstraint],
    ) -> Union[Solution, Infeasible, Unknown]:
        solutions = system.solve()
        if isinstance(solutions, Infeasible):
            return solutions
        for candidate in solutions.enumerate(limit=self.enumeration_limit):
            assignment = dict(fixed)
            assignment.update(candidate)
            if all(c.is_satisfied(assignment) for c in remaining_nonlinear):
                return Solution(assignment)
        return Unknown("enumeration")

    def _solve_recursive(
        self,
        system: ModularLinearSystem,
        nonlinear: List[NonlinearConstraint],
        fixed: Dict[Hashable, int],
        fixed_tags: Dict[Hashable, FrozenSet[Hashable]],
        budget: int,
    ) -> Union[Solution, Infeasible, Unknown]:
        if budget <= 0:
            return Unknown("budget")
        if not nonlinear:
            return self._solve_linear(system, fixed, ())

        constraint = nonlinear[0]
        rest = nonlinear[1:]
        # Values forced by unit rows of the linear system (e.g. pins added
        # by earlier substitutions, or extracted single-variable equations)
        # are just as "known" as explicit fixes; folding them in lets the
        # exact congruence plans fire -- and certify -- more often.
        effective_fixed, effective_tags = self._implied_pins(system)
        effective_fixed.update(fixed)
        effective_tags.update(fixed_tags)
        plan = self._candidate_substitutions(constraint, effective_fixed, effective_tags)
        spent = 0
        cores: List[FrozenSet[Hashable]] = []
        certified = True
        for substitution, sub_tags in plan.candidates:
            if spent >= budget:
                return Unknown("budget")
            spent += 1
            extended = ModularLinearSystem(system.width, system.variables)
            for c in system.constraints:
                extended.add_constraint(c.coefficients, c.rhs, c.tags)
            new_fixed = dict(fixed)
            new_tags = dict(fixed_tags)
            pin_tags = sub_tags | constraint.tags
            clash: Optional[Hashable] = None
            for var, value in substitution.items():
                if var in new_fixed and new_fixed[var] != value:
                    clash = var
                    break
                new_fixed[var] = value
                new_tags[var] = pin_tags
                extended.add_constraint({var: 1}, value, pin_tags)
            if clash is not None:
                # The substituted value is forced by the constraint, the pin
                # by its own provenance; their disagreement closes the branch
                # with a certificate.
                cores.append(
                    pin_tags | new_tags.get(clash, frozenset((clash,)))
                )
                continue
            result = self._solve_recursive(extended, rest, new_fixed, new_tags, budget - spent)
            if isinstance(result, Solution):
                if constraint.is_satisfied(result.assignment):
                    return result
                # The linearised system is a relaxation (e.g. a pinned shift
                # amount without the shift relation): a solution violating
                # the constraint closes the branch heuristically only.
                certified = False
                continue
            if isinstance(result, Unknown):
                certified = False
                continue
            cores.append(result.core)
        if not plan.complete:
            return Unknown("enumeration")
        if not certified:
            return Unknown("heuristic")
        core = plan.base_tags | constraint.tags
        for branch_core in cores:
            core |= branch_core
        return Infeasible(core=frozenset(core))

    @staticmethod
    def _implied_pins(
        system: ModularLinearSystem,
    ) -> Tuple[Dict[Hashable, int], Dict[Hashable, FrozenSet[Hashable]]]:
        """Variables uniquely determined by single-variable linear rows.

        A row ``coeff * var = rhs`` with a unique modular solution pins
        ``var``; the pin inherits the row's provenance tags.
        """
        pins: Dict[Hashable, int] = {}
        tags: Dict[Hashable, FrozenSet[Hashable]] = {}
        for constraint in system.constraints:
            if len(constraint.coefficients) != 1:
                continue
            (var, coeff), = constraint.coefficients.items()
            if var in pins:
                continue
            scalar = solve_scalar_congruence(coeff, constraint.rhs, system.width)
            if scalar is not None and scalar.count == 1:
                pins[var] = scalar.base
                tags[var] = constraint.tags
        return pins, tags

    def _candidate_substitutions(
        self,
        constraint: NonlinearConstraint,
        fixed: Mapping[Hashable, int],
        fixed_tags: Mapping[Hashable, FrozenSet[Hashable]],
    ) -> _CandidatePlan:
        """The substitutions linearising one constraint, with provenance."""
        modulus = 1 << constraint.width

        def known(op: Hashable) -> Optional[int]:
            if isinstance(op, int):
                return op % modulus
            return fixed.get(op)

        def tags_of(op: Hashable) -> FrozenSet[Hashable]:
            if isinstance(op, int):
                return frozenset()
            return fixed_tags.get(op, frozenset((op,)))

        a, b, product = known(constraint.a), known(constraint.b), known(constraint.product)

        if constraint.kind == "mul":
            if a is not None and b is not None:
                base = tags_of(constraint.a) | tags_of(constraint.b)
                value = (a * b) % modulus
                if isinstance(constraint.product, int):
                    # Fully determined: the single candidate either matches
                    # the required product or refutes the constraint outright.
                    if value == product:
                        return _CandidatePlan([({}, base)], True, base)
                    return _CandidatePlan([], True, base)
                return _CandidatePlan(
                    [({constraint.product: value}, base)], True, base
                )
            if product is not None and a is not None:
                return self._factor_plan(
                    tags_of(constraint.a) | tags_of(constraint.product),
                    a, constraint.b, product, constraint.width,
                )
            if product is not None and b is not None:
                return self._factor_plan(
                    tags_of(constraint.b) | tags_of(constraint.product),
                    b, constraint.a, product, constraint.width,
                )
            base = tags_of(constraint.product)
            if product is not None:
                def factor_pairs() -> Iterator[Tuple[Dict[Hashable, int], FrozenSet[Hashable]]]:
                    for fa, fb in enumerate_factor_pairs(product, constraint.width):
                        combined = self._bind(constraint.a, fa)
                        combined.update(self._bind(constraint.b, fb))
                        yield combined, base

                # Factor sampling is bounded: never a complete enumeration.
                return _CandidatePlan(factor_pairs(), False, base)

            def small_values() -> Iterator[Tuple[Dict[Hashable, int], FrozenSet[Hashable]]]:
                # Nothing known: try small operand values for one side.
                for value in range(min(modulus, 16)):
                    yield self._bind(constraint.a, value), frozenset()

            return _CandidatePlan(small_values(), False, frozenset())
        if constraint.kind in ("shl", "shr"):
            def amounts() -> Iterator[Tuple[Dict[Hashable, int], FrozenSet[Hashable]]]:
                # Enumerate the shift amount; each choice makes the
                # constraint linear (a power-of-two multiply / divide).
                for amount in range(constraint.width + 1):
                    yield self._bind(constraint.b, amount), frozenset()

            # Amounts >= width collapse into one behavioural class but are
            # distinct pin values, so the enumeration is not complete in the
            # certificate sense.
            return _CandidatePlan(amounts(), False, frozenset())
        raise ValueError("unknown nonlinear constraint kind %r" % (constraint.kind,))

    def _factor_plan(
        self,
        base: FrozenSet[Hashable],
        known_value: int,
        other_op: Hashable,
        product: int,
        width: int,
    ) -> _CandidatePlan:
        """All solutions of ``known_value * other = product`` (Theorems 1-2).

        The scalar congruence solver is exact: its solution set is complete,
        and an empty one refutes the constraint under the known values'
        provenance (``base``).
        """
        scalar = solve_scalar_congruence(known_value, product, width)
        if scalar is None:
            return _CandidatePlan([], True, base)

        def values() -> Iterator[Tuple[Dict[Hashable, int], FrozenSet[Hashable]]]:
            for value in scalar.values():
                yield self._bind(other_op, value), base

        return _CandidatePlan(values(), True, base)

    @staticmethod
    def _bind(op: Hashable, value: int) -> Dict[Hashable, int]:
        if isinstance(op, int):
            return {}
        return {op: value}
