"""Heuristic handling of non-linear datapath constraints.

Non-linear constraints arise from multipliers with two variable operands and
from shifters with a variable shift amount.  Completely solving them is hard,
so -- following the paper -- we *enumerate* candidate values analytically
(prime/power-of-two factoring of the product, shift-amount enumeration),
substitute each candidate to make the remaining constraint system linear, and
let the linear solver finish the job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.modsolver.linear import ModularLinearSystem
from repro.modsolver.modular import solve_scalar_congruence


@dataclass
class NonlinearConstraint:
    """A constraint ``a * b = product (mod 2**width)`` or a variable shift.

    ``kind`` is ``"mul"`` or ``"shl"``/``"shr"``.  Each operand is either a
    variable identifier or an ``int`` constant; ``product`` likewise.
    """

    kind: str
    a: Hashable
    b: Hashable
    product: Hashable
    width: int

    def operands(self) -> Tuple[Hashable, Hashable, Hashable]:
        return (self.a, self.b, self.product)

    def variables(self) -> List[Hashable]:
        """The non-constant operands."""
        return [op for op in self.operands() if not isinstance(op, int)]

    def is_satisfied(self, assignment: Mapping[Hashable, int]) -> bool:
        """Check the constraint under a full assignment."""
        modulus = 1 << self.width

        def value(op: Hashable) -> int:
            return op % modulus if isinstance(op, int) else assignment[op] % modulus

        a, b, product = value(self.a), value(self.b), value(self.product)
        if self.kind == "mul":
            return (a * b) % modulus == product
        if self.kind == "shl":
            return (a << b) % modulus == product if b < self.width else product == 0
        if self.kind == "shr":
            return (a >> b) % modulus == product
        raise ValueError("unknown nonlinear constraint kind %r" % (self.kind,))


def enumerate_factor_pairs(
    product: int, width: int, limit: int = 256
) -> Iterator[Tuple[int, int]]:
    """Enumerate pairs ``(a, b)`` with ``a * b = product (mod 2**width)``.

    The enumeration is heuristic but sound: every yielded pair satisfies the
    congruence.  It walks candidate values of ``a`` in a factor-first order
    (divisors of the product and of its small modular representatives, then
    odd values, then the remaining even values) and solves for ``b`` with the
    multiplicative-inverse-with-product machinery.  At most ``limit`` pairs
    are produced.
    """
    modulus = 1 << width
    product %= modulus
    produced = 0
    seen = set()

    for a in _candidate_factors(product, width):
        solutions = solve_scalar_congruence(a, product, width)
        if solutions is None:
            continue
        for b in solutions.values():
            if (a, b) in seen:
                continue
            seen.add((a, b))
            yield a, b
            produced += 1
            if produced >= limit:
                return


def _candidate_factors(product: int, width: int) -> Iterator[int]:
    """Candidate values for one multiplier operand, best-first."""
    modulus = 1 << width
    emitted = set()

    def emit(value: int) -> Iterator[int]:
        value %= modulus
        if value not in emitted:
            emitted.add(value)
            yield value

    # Divisors of small modular representatives of the product first: these
    # are the "prime factoring" candidates of the paper.
    for representative in (product, product + modulus, product + 2 * modulus):
        if representative == 0:
            continue
        for divisor in _divisors(representative):
            if divisor < modulus:
                yield from emit(divisor)
    # Then every odd value (each has a unique partner), then the rest.
    for a in range(1, modulus, 2):
        yield from emit(a)
    for a in range(0, modulus, 2):
        yield from emit(a)


def _divisors(value: int) -> List[int]:
    """All positive divisors of ``value`` (small values only)."""
    value = abs(value)
    result = []
    d = 1
    while d * d <= value:
        if value % d == 0:
            result.append(d)
            result.append(value // d)
        d += 1
    return sorted(set(result))


class NonlinearSolver:
    """Solve a mixed linear / non-linear constraint system by enumeration.

    The solver repeatedly picks candidate substitutions for the non-linear
    constraints (factor pairs for multipliers, shift amounts for shifters),
    adds the induced linear equations to a copy of the linear system, solves
    it modulo ``2**width`` and checks the remaining constraints.  The number
    of candidate substitutions explored is bounded by ``budget``.
    """

    def __init__(self, budget: int = 512, enumeration_limit: int = 64):
        self.budget = budget
        self.enumeration_limit = enumeration_limit

    def solve(
        self,
        linear: ModularLinearSystem,
        nonlinear: Sequence[NonlinearConstraint],
        fixed: Optional[Mapping[Hashable, int]] = None,
    ) -> Optional[Dict[Hashable, int]]:
        """Return a satisfying assignment or ``None`` if none was found.

        ``fixed`` pins selected variables to known values (from implication).
        A ``None`` result means no solution was found within the search
        budget; for purely linear systems the answer is exact.
        """
        fixed = dict(fixed or {})
        base = self._with_fixed(linear, fixed)
        if not nonlinear:
            return self._solve_linear(base, fixed, ())
        return self._solve_recursive(base, list(nonlinear), fixed, self.budget)

    # ------------------------------------------------------------------
    def _with_fixed(
        self, linear: ModularLinearSystem, fixed: Mapping[Hashable, int]
    ) -> ModularLinearSystem:
        system = ModularLinearSystem(linear.width, linear.variables)
        for constraint in linear.constraints:
            system.add_constraint(constraint.coefficients, constraint.rhs)
        for var, value in fixed.items():
            if var in system._var_index or any(
                var in c.coefficients for c in linear.constraints
            ):
                system.add_constraint({var: 1}, value)
        return system

    def _solve_linear(
        self,
        system: ModularLinearSystem,
        fixed: Mapping[Hashable, int],
        remaining_nonlinear: Sequence[NonlinearConstraint],
    ) -> Optional[Dict[Hashable, int]]:
        solutions = system.solve()
        if solutions is None:
            return None
        for candidate in solutions.enumerate(limit=self.enumeration_limit):
            assignment = dict(fixed)
            assignment.update(candidate)
            if all(c.is_satisfied(assignment) for c in remaining_nonlinear):
                return assignment
        return None

    def _solve_recursive(
        self,
        system: ModularLinearSystem,
        nonlinear: List[NonlinearConstraint],
        fixed: Dict[Hashable, int],
        budget: int,
    ) -> Optional[Dict[Hashable, int]]:
        if budget <= 0:
            return None
        if not nonlinear:
            return self._solve_linear(system, fixed, ())

        constraint = nonlinear[0]
        rest = nonlinear[1:]
        spent = 0
        for substitution in self._candidate_substitutions(constraint, fixed):
            if spent >= budget:
                return None
            spent += 1
            extended = ModularLinearSystem(system.width, system.variables)
            for c in system.constraints:
                extended.add_constraint(c.coefficients, c.rhs)
            new_fixed = dict(fixed)
            consistent = True
            for var, value in substitution.items():
                if var in new_fixed and new_fixed[var] != value:
                    consistent = False
                    break
                new_fixed[var] = value
                extended.add_constraint({var: 1}, value)
            if not consistent:
                continue
            result = self._solve_recursive(extended, rest, new_fixed, budget - spent)
            if result is not None and constraint.is_satisfied(result):
                return result
        return None

    def _candidate_substitutions(
        self, constraint: NonlinearConstraint, fixed: Mapping[Hashable, int]
    ) -> Iterator[Dict[Hashable, int]]:
        """Candidate variable substitutions that linearise one constraint."""
        modulus = 1 << constraint.width

        def known(op: Hashable) -> Optional[int]:
            if isinstance(op, int):
                return op % modulus
            return fixed.get(op)

        a, b, product = known(constraint.a), known(constraint.b), known(constraint.product)

        if constraint.kind == "mul":
            if a is not None and b is not None:
                yield self._bind(constraint.product, (a * b) % modulus)
            elif product is not None and a is not None:
                scalar = solve_scalar_congruence(a, product, constraint.width)
                if scalar is not None:
                    for value in scalar.values():
                        yield self._bind(constraint.b, value)
            elif product is not None and b is not None:
                scalar = solve_scalar_congruence(b, product, constraint.width)
                if scalar is not None:
                    for value in scalar.values():
                        yield self._bind(constraint.a, value)
            elif product is not None:
                for fa, fb in enumerate_factor_pairs(product, constraint.width):
                    combined = self._bind(constraint.a, fa)
                    combined.update(self._bind(constraint.b, fb))
                    yield combined
            else:
                # Nothing known: try small operand values for one side.
                for value in range(min(modulus, 16)):
                    yield self._bind(constraint.a, value)
        elif constraint.kind in ("shl", "shr"):
            # Enumerate the shift amount; each choice makes the constraint
            # linear (a power-of-two multiplication / division).
            for amount in range(constraint.width + 1):
                yield self._bind(constraint.b, amount)
        else:
            raise ValueError("unknown nonlinear constraint kind %r" % (constraint.kind,))

    @staticmethod
    def _bind(op: Hashable, value: int) -> Dict[Hashable, int]:
        if isinstance(op, int):
            return {}
        return {op: value}
