"""Complete solution of linear bit-vector systems ``A·x = b (mod 2**n)``.

The paper's linear constraint solver finds *all* solutions of a linear
datapath constraint system under the modular number system and expresses
them in the closed form

    ``x = x0 + N · f``

where ``x0`` is a particular solution, ``N`` the *null matrix* and ``f`` a
column of free variables.  Different values of ``f`` enumerate every
solution -- crucially including the solutions that only exist because of
value wrap-around, which an integral/rational solver would miss.

Implementation: the integer coefficient matrix is diagonalised with
unimodular row/column transformations (a Smith-normal-form style reduction,
exact over Python integers), which reduces the system to independent scalar
congruences ``d_i · y_i = c_i (mod 2**n)``.  Each scalar congruence is solved
with the multiplicative-inverse-with-product machinery of
:mod:`repro.modsolver.modular` (the paper's Theorems 1 and 2), and the
results are transformed back to the original variables.  The overall cost is
O(max(m, n)^3) ring operations, matching the complexity claim in Section 4.1.

Infeasibility certificates: an unsolvable scalar congruence sits in row
``i`` of ``D = U·A·V``; row ``i`` of the left multiplier ``U`` records the
(unimodular) combination of *original* constraints that produced it, so the
constraints with a non-zero entry in that row form a genuine unsatisfiable
core.  :meth:`ModularLinearSystem.solve` returns their provenance tags in
:class:`~repro.modsolver.result.Infeasible` instead of a bare ``None``; the
linear solver is exact, so it never answers
:class:`~repro.modsolver.result.Unknown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product as cartesian_product
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.modsolver.modular import solve_scalar_congruence
from repro.modsolver.result import Infeasible


@dataclass
class LinearConstraint:
    """One linear equation ``sum(coeff_i * var_i) = rhs (mod 2**width)``.

    ``tags`` carries the constraint's provenance (opaque hashables -- the
    datapath extractor stores the implication-engine keys whose implied
    values the equation encodes).  Certificates report the union of the
    tags of the clashing constraints.
    """

    coefficients: Dict[Hashable, int]
    rhs: int
    tags: FrozenSet[Hashable] = field(default_factory=frozenset)

    def evaluate(self, assignment: Mapping[Hashable, int], width: int) -> int:
        """Left-hand side value under ``assignment`` (mod ``2**width``)."""
        modulus = 1 << width
        total = 0
        for var, coeff in self.coefficients.items():
            total += coeff * assignment[var]
        return total % modulus

    def is_satisfied(self, assignment: Mapping[Hashable, int], width: int) -> bool:
        """True when the assignment satisfies this constraint mod ``2**width``."""
        return self.evaluate(assignment, width) == self.rhs % (1 << width)


class ModularSolutionSet:
    """The closed-form solution set ``x = x0 + N·f (mod 2**width)``.

    Attributes
    ----------
    width:
        Bit width of every variable.
    variables:
        Variable identifiers, in the column order of ``null_matrix``.
    particular:
        The particular solution ``x0`` as a mapping variable -> value.
    null_matrix:
        List of *columns*; column ``j`` gives the coefficient of free
        variable ``f_j`` for every variable (mapping variable -> int).
    free_counts:
        For each free variable the number of distinct useful values
        (letting ``f_j`` range over all of ``Z_{2**width}`` yields the same
        set, only with repetitions).
    """

    def __init__(
        self,
        width: int,
        variables: Sequence[Hashable],
        particular: Dict[Hashable, int],
        null_columns: List[Dict[Hashable, int]],
        free_counts: List[int],
    ):
        self.width = width
        self.variables = list(variables)
        self.particular = dict(particular)
        self.null_matrix = [dict(col) for col in null_columns]
        self.free_counts = list(free_counts)

    # ------------------------------------------------------------------
    @property
    def num_free_variables(self) -> int:
        """Number of free variables in the closed form."""
        return len(self.null_matrix)

    def solution_count(self) -> int:
        """Total number of distinct solutions (product of free counts)."""
        count = 1
        for c in self.free_counts:
            count *= c
        return count

    def substitute(self, free_values: Sequence[int]) -> Dict[Hashable, int]:
        """Instantiate the closed form for specific free-variable values."""
        if len(free_values) != self.num_free_variables:
            raise ValueError(
                "expected %d free values, got %d" % (self.num_free_variables, len(free_values))
            )
        modulus = 1 << self.width
        result = dict(self.particular)
        for column, value in zip(self.null_matrix, free_values):
            for var, coeff in column.items():
                result[var] = (result[var] + coeff * value) % modulus
        return result

    def enumerate(self, limit: int = 4096) -> Iterator[Dict[Hashable, int]]:
        """Yield distinct solutions (at most ``limit``)."""
        if self.num_free_variables == 0:
            yield dict(self.particular)
            return
        produced = 0
        seen = set()
        ranges = [range(c) for c in self.free_counts]
        for combo in cartesian_product(*ranges):
            solution = self.substitute(list(combo))
            key = tuple(solution[v] for v in self.variables)
            if key in seen:
                continue
            seen.add(key)
            yield solution
            produced += 1
            if produced >= limit:
                return

    def contains(self, assignment: Mapping[Hashable, int], system: "ModularLinearSystem") -> bool:
        """Convenience: check a full assignment against the original system."""
        return system.is_solution(assignment)

    def __repr__(self) -> str:
        return "ModularSolutionSet(%d vars, %d free, width=%d)" % (
            len(self.variables),
            self.num_free_variables,
            self.width,
        )


class ModularLinearSystem:
    """A system of linear constraints over ``width``-bit bit-vectors."""

    def __init__(self, width: int, variables: Optional[Iterable[Hashable]] = None):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self.variables: List[Hashable] = list(variables) if variables is not None else []
        self._var_index: Dict[Hashable, int] = {v: i for i, v in enumerate(self.variables)}
        self.constraints: List[LinearConstraint] = []

    # ------------------------------------------------------------------
    @classmethod
    def from_matrix(
        cls, rows: Sequence[Sequence[int]], rhs: Sequence[int], width: int
    ) -> "ModularLinearSystem":
        """Build a system from an explicit coefficient matrix (paper examples)."""
        if rows and any(len(r) != len(rows[0]) for r in rows):
            raise ValueError("ragged coefficient matrix")
        num_vars = len(rows[0]) if rows else 0
        variables = ["x%d" % i for i in range(num_vars)]
        system = cls(width, variables)
        for row, b in zip(rows, rhs):
            system.add_constraint({variables[j]: row[j] for j in range(num_vars) if row[j]}, b)
        return system

    def add_variable(self, var: Hashable) -> None:
        """Register a variable (no-op when already present)."""
        if var not in self._var_index:
            self._var_index[var] = len(self.variables)
            self.variables.append(var)

    def add_constraint(
        self,
        coefficients: Mapping[Hashable, int],
        rhs: int,
        tags: Iterable[Hashable] = (),
    ) -> None:
        """Add ``sum(coeff * var) = rhs``; unknown variables are registered.

        ``tags`` is the constraint's provenance, reported in infeasibility
        cores (see :class:`LinearConstraint`).
        """
        clean: Dict[Hashable, int] = {}
        modulus = 1 << self.width
        for var, coeff in coefficients.items():
            coeff %= modulus
            self.add_variable(var)
            if coeff:
                clean[var] = coeff
        self.constraints.append(LinearConstraint(clean, rhs % modulus, frozenset(tags)))

    def is_solution(self, assignment: Mapping[Hashable, int]) -> bool:
        """True when ``assignment`` satisfies every constraint."""
        return all(c.is_satisfied(assignment, self.width) for c in self.constraints)

    def _core_of_row(self, left: Sequence[Sequence[int]], row: int, modulus: int) -> Infeasible:
        """The certificate of an unsolvable congruence in row ``row``.

        The congruence is the ``U``-row combination of the original
        constraints; every constraint entering it with a non-zero multiplier
        (mod ``2**width`` -- a multiplier that vanishes in the ring truly
        contributes nothing) is a core member.
        """
        core: set = set()
        for k, constraint in enumerate(self.constraints):
            if left[row][k] % modulus != 0:
                core |= constraint.tags
        return Infeasible(core=frozenset(core))

    # ------------------------------------------------------------------
    def solve(self) -> Union[ModularSolutionSet, Infeasible]:
        """Find all solutions, or the certificate of why none exist.

        Returns the closed-form :class:`ModularSolutionSet` when the system
        is satisfiable and :class:`~repro.modsolver.result.Infeasible`
        (with the clashing constraints' provenance tags as ``core``)
        otherwise.  The linear solver is exact: it never returns
        :class:`~repro.modsolver.result.Unknown`.
        """
        num_vars = len(self.variables)
        num_rows = len(self.constraints)
        modulus = 1 << self.width

        if num_vars == 0:
            for constraint in self.constraints:
                if constraint.rhs % modulus != 0:
                    return Infeasible(core=constraint.tags)
            return ModularSolutionSet(self.width, [], {}, [], [])

        matrix = [
            [c.coefficients.get(var, 0) for var in self.variables] for c in self.constraints
        ]
        rhs = [c.rhs for c in self.constraints]

        diagonal, left, right = _diagonalize(matrix, num_rows, num_vars, modulus)

        # c = U * b  (exact integer arithmetic, reduced mod 2**width).
        transformed_rhs = [
            sum(left[i][k] * rhs[k] for k in range(num_rows)) % modulus for i in range(num_rows)
        ]

        particular_y = [0] * num_vars
        free_steps: List[Tuple[int, int, int]] = []  # (y index, step, count)

        limit = min(num_rows, num_vars)
        for i in range(num_vars):
            diag = diagonal[i][i] if i < limit else 0
            c_i = transformed_rhs[i] if i < num_rows else 0
            scalar = solve_scalar_congruence(diag, c_i, self.width)
            if scalar is None:
                return self._core_of_row(left, i, modulus)
            particular_y[i] = scalar.base
            if scalar.count > 1:
                free_steps.append((i, scalar.step if scalar.step else 1, scalar.count))
        # Remaining rows (more constraints than variables) must be trivially satisfied.
        for i in range(num_vars, num_rows):
            if transformed_rhs[i] % modulus != 0:
                return self._core_of_row(left, i, modulus)

        # x = V * y
        particular_x = {
            self.variables[r]: sum(right[r][j] * particular_y[j] for j in range(num_vars)) % modulus
            for r in range(num_vars)
        }
        null_columns: List[Dict[Hashable, int]] = []
        free_counts: List[int] = []
        for y_index, step, count in free_steps:
            column = {
                self.variables[r]: (right[r][y_index] * step) % modulus for r in range(num_vars)
            }
            if any(column.values()):
                null_columns.append(column)
                free_counts.append(count)

        return ModularSolutionSet(
            self.width, self.variables, particular_x, null_columns, free_counts
        )

    def __repr__(self) -> str:
        return "ModularLinearSystem(width=%d, %d vars, %d constraints)" % (
            self.width,
            len(self.variables),
            len(self.constraints),
        )


# ----------------------------------------------------------------------
# Integer diagonalisation (Smith-normal-form style, no divisibility chain)
# ----------------------------------------------------------------------
def _symmetric_residue(value: int, modulus: int) -> int:
    """The representative of ``value`` modulo ``modulus`` in
    ``[-modulus/2, modulus/2)``; keeps intermediate entries small."""
    value %= modulus
    if value >= modulus // 2:
        value -= modulus
    return value


def _diagonalize(
    matrix: Sequence[Sequence[int]], num_rows: int, num_cols: int, modulus: int
) -> Tuple[List[List[int]], List[List[int]], List[List[int]]]:
    """Diagonalise an integer matrix with unimodular transformations.

    Returns ``(D, U, V)`` with ``D = U · A · V (mod modulus)``, ``U`` a product
    of row operations (``num_rows`` square) and ``V`` a product of column
    operations (``num_cols`` square).  ``D`` is diagonal but the diagonal
    entries are not required to satisfy the divisibility chain of the true
    Smith normal form -- for solving congruences that refinement is
    unnecessary.

    Because the system is only ever interpreted modulo ``modulus`` (a power of
    two), every entry of ``A``, ``U`` and ``V`` is kept as a small symmetric
    residue.  Without that reduction the transformation matrices can grow
    exponentially large integers on bigger systems, which is where the
    O(n^3) complexity claim of Section 4.1 would otherwise be lost.
    """
    a = [[_symmetric_residue(x, modulus) for x in row] for row in matrix]
    u = [[1 if i == j else 0 for j in range(num_rows)] for i in range(num_rows)]
    v = [[1 if i == j else 0 for j in range(num_cols)] for i in range(num_cols)]

    def swap_rows(i: int, j: int) -> None:
        a[i], a[j] = a[j], a[i]
        u[i], u[j] = u[j], u[i]

    def swap_cols(i: int, j: int) -> None:
        for row in a:
            row[i], row[j] = row[j], row[i]
        for row in v:
            row[i], row[j] = row[j], row[i]

    def add_row(dst: int, src: int, factor: int) -> None:
        a[dst] = [
            _symmetric_residue(x + factor * y, modulus) for x, y in zip(a[dst], a[src])
        ]
        u[dst] = [
            _symmetric_residue(x + factor * y, modulus) for x, y in zip(u[dst], u[src])
        ]

    def add_col(dst: int, src: int, factor: int) -> None:
        for row in a:
            row[dst] = _symmetric_residue(row[dst] + factor * row[src], modulus)
        for row in v:
            row[dst] = _symmetric_residue(row[dst] + factor * row[src], modulus)

    size = min(num_rows, num_cols)
    for t in range(size):
        # Find a non-zero pivot in the remaining submatrix.
        pivot = None
        for i in range(t, num_rows):
            for j in range(t, num_cols):
                if a[i][j] != 0:
                    if pivot is None or abs(a[i][j]) < abs(a[pivot[0]][pivot[1]]):
                        pivot = (i, j)
        if pivot is None:
            break
        if pivot[0] != t:
            swap_rows(t, pivot[0])
        if pivot[1] != t:
            swap_cols(t, pivot[1])

        while True:
            # Clear the pivot column with Euclidean row reductions.
            progressed = False
            for i in range(t + 1, num_rows):
                if a[i][t] == 0:
                    continue
                q = a[i][t] // a[t][t]
                add_row(i, t, -q)
                if a[i][t] != 0:
                    swap_rows(i, t)
                progressed = True
            # Clear the pivot row with Euclidean column reductions.
            for j in range(t + 1, num_cols):
                if a[t][j] == 0:
                    continue
                q = a[t][j] // a[t][t]
                add_col(j, t, -q)
                if a[t][j] != 0:
                    swap_cols(j, t)
                progressed = True
            column_clear = all(a[i][t] == 0 for i in range(t + 1, num_rows))
            row_clear = all(a[t][j] == 0 for j in range(t + 1, num_cols))
            if column_clear and row_clear:
                break
            if not progressed:  # pragma: no cover - defensive
                raise RuntimeError("diagonalisation failed to make progress")
    return a, u, v
