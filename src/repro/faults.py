"""Deterministic, seeded fault injection for resilience testing.

The verification service (and everything it leans on -- the KB flush path,
the client I/O loop, the engine budgets) is instrumented with named *fault
sites*::

    from repro import faults
    ...
    faults.maybe_fire("worker.run")        # generic kinds handled inline
    rule = faults.maybe_fire("kb.flush")   # special kinds returned to the site

A site is inert (one dict lookup on an unarmed process) unless a **fault
plan** is armed, either programmatically (:func:`arm`) or through the
environment (``REPRO_FAULT_PLAN`` / ``REPRO_FAULT_SEED`` /
``REPRO_FAULT_STATE``), which is how a daemon arms its whole worker tree:
forked children inherit the plan and re-read it lazily after the fork.

Determinism is the point: whether a rule fires on the *n*-th hit of a site
is a pure function of ``(seed, site, n)``, so a chaos schedule replays
bit-identically under the same seed regardless of thread/process
interleaving.  Cross-process ``nth``/``limit`` accounting (a worker that
crashed must not re-fire the same one-shot fault after its respawn) uses a
shared *state directory* of append-only counter files.

Fault kinds:

========== ==========================================================
``crash``   ``os._exit(exit_code)`` -- a hard process death.
``sleep``   block the site for ``seconds`` (drives job timeouts).
``error``   raise :class:`InjectedFault` at the site.
``hang``    returned to the site: simulate a wedged process (the
            service worker also suspends its heartbeats).
``torn-write``   returned: the KB flush path truncates the store
            mid-write.
``fsync-fail``   returned: the KB flush path fails its write as if
            fsync had failed (store degrades fail-open).
``exhaust-budget``  returned: the worker clamps the job's engine
            budget to ~zero, forcing budget-exhaustion verdicts.
``drop-connection`` returned: the service client drops its daemon
            connection at the site (drives retry/backoff).
========== ==========================================================

Plan syntax (compact text; JSON with the same field names also accepted)::

    site:kind[:key=value]*[;site:kind...]
    worker.run:crash:nth=1;kb.flush:torn-write;client.send:drop-connection:p=0.5

See ``docs/resilience.md`` for the full contract.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

#: Environment variable carrying the fault plan (compact text or JSON).
PLAN_ENV = "REPRO_FAULT_PLAN"
#: Environment variable carrying the schedule seed (default 0).
SEED_ENV = "REPRO_FAULT_SEED"
#: Environment variable naming the cross-process counter directory.
STATE_ENV = "REPRO_FAULT_STATE"

#: Every fault kind a plan may name.
KINDS = (
    "crash",
    "sleep",
    "error",
    "hang",
    "torn-write",
    "fsync-fail",
    "exhaust-budget",
    "drop-connection",
)

#: Kinds :func:`maybe_fire` executes itself; the rest are returned to the
#: site, which implements the site-specific behaviour.
_GENERIC_KINDS = ("crash", "sleep", "error")


class FaultPlanError(ValueError):
    """A fault plan cannot be parsed."""


class InjectedFault(RuntimeError):
    """An ``error``-kind fault fired at a site."""

    def __init__(self, site: str):
        super().__init__("injected fault at %s" % (site,))
        self.site = site


@dataclass(frozen=True)
class FaultRule:
    """One arm of a fault plan: what happens at a site, and when."""

    #: the site name this rule matches (exact, or a ``prefix.*`` glob).
    site: str
    #: one of :data:`KINDS`.
    kind: str
    #: fire with this probability per hit (deterministic per (seed, site, n)).
    probability: float = 1.0
    #: fire only on exactly the n-th hit of the site (1-based); overrides
    #: ``probability``.
    nth: Optional[int] = None
    #: stop firing after this many firings (``None`` = unlimited).
    limit: Optional[int] = None
    #: duration knob for ``sleep`` / ``hang``.
    seconds: float = 0.05
    #: exit status for ``crash``.
    exit_code: int = 17

    def matches(self, site: str) -> bool:
        """Whether this rule applies to ``site`` (exact or ``prefix.*``)."""
        if self.site == site:
            return True
        return self.site.endswith(".*") and site.startswith(self.site[:-1])

    def to_dict(self) -> Dict[str, object]:
        """JSON form (used by :meth:`FaultPlan.to_json`)."""
        payload: Dict[str, object] = {"site": self.site, "kind": self.kind}
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.nth is not None:
            payload["nth"] = self.nth
        if self.limit is not None:
            payload["limit"] = self.limit
        if self.seconds != 0.05:
            payload["seconds"] = self.seconds
        if self.exit_code != 17:
            payload["exit_code"] = self.exit_code
        return payload


_RULE_KEYS = {
    "p": ("probability", float),
    "probability": ("probability", float),
    "nth": ("nth", int),
    "limit": ("limit", int),
    "seconds": ("seconds", float),
    "exit_code": ("exit_code", int),
}


def _parse_rule_text(text: str) -> FaultRule:
    """``site:kind[:key=value]*`` -> :class:`FaultRule`."""
    parts = [part.strip() for part in text.split(":")]
    if len(parts) < 2 or not parts[0] or not parts[1]:
        raise FaultPlanError("fault rule needs site:kind, got %r" % (text,))
    site, kind = parts[0], parts[1]
    if kind not in KINDS:
        raise FaultPlanError(
            "unknown fault kind %r (known: %s)" % (kind, ", ".join(KINDS))
        )
    fields: Dict[str, object] = {}
    for extra in parts[2:]:
        if "=" not in extra:
            raise FaultPlanError("fault rule option needs key=value, got %r" % (extra,))
        key, value = extra.split("=", 1)
        spec = _RULE_KEYS.get(key.strip())
        if spec is None:
            raise FaultPlanError(
                "unknown fault rule option %r (known: %s)"
                % (key, ", ".join(sorted(_RULE_KEYS)))
            )
        name, cast = spec
        try:
            fields[name] = cast(value)
        except ValueError as exc:
            raise FaultPlanError("bad value for %s: %r" % (key, value)) from exc
    return FaultRule(site=site, kind=kind, **fields)


@dataclass(frozen=True)
class FaultPlan:
    """A parsed, immutable set of fault rules plus the schedule seed."""

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse the compact text syntax or a JSON object/list."""
        text = text.strip()
        if not text:
            return cls(seed=seed)
        if text[0] in "[{":
            try:
                payload = json.loads(text)
            except ValueError as exc:
                raise FaultPlanError("fault plan is not valid JSON: %s" % (exc,)) from exc
            if isinstance(payload, Mapping):
                seed = int(payload.get("seed", seed))
                payload = payload.get("rules") or []
            rules = []
            for item in payload:
                if not isinstance(item, Mapping):
                    raise FaultPlanError("JSON fault rules must be objects")
                spec = "%s:%s" % (item.get("site", ""), item.get("kind", ""))
                rule = _parse_rule_text(spec)
                overrides = {
                    name: cast(item[key])
                    for key, (name, cast) in _RULE_KEYS.items()
                    if key in item
                }
                rules.append(FaultRule(rule.site, rule.kind, **overrides))
            return cls(rules=tuple(rules), seed=seed)
        return cls(
            rules=tuple(
                _parse_rule_text(part)
                for part in text.split(";")
                if part.strip()
            ),
            seed=seed,
        )

    def to_json(self) -> str:
        """The JSON form (round-trips through :meth:`parse`)."""
        return json.dumps(
            {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}
        )


# ----------------------------------------------------------------------
# Deterministic schedule
# ----------------------------------------------------------------------
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def _fnv64(*parts) -> int:
    """FNV-1a over the stringified parts (process-stable, like the KB keys)."""
    value = _FNV_OFFSET
    for part in parts:
        for byte in str(part).encode("utf-8"):
            value = ((value ^ byte) * _FNV_PRIME) & _MASK64
        value = ((value ^ 0x1F) * _FNV_PRIME) & _MASK64
    return value


def _mix64(value: int) -> int:
    """splitmix64 finalizer: avalanche the hash so all 64 bits are uniform.

    Raw FNV-1a concentrates small-input changes in its low bits, and the
    draw below keys off the high ones -- without this mix a probability
    rule would fire in long deterministic streaks.
    """
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def _draw(seed: int, site: str, hit: int) -> float:
    """The deterministic uniform draw deciding hit ``hit`` of ``site``."""
    return _mix64(_fnv64(seed, site, hit)) / float(1 << 64)


_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


class FaultInjector:
    """Evaluates a :class:`FaultPlan` against live site hits.

    Hit counts are per-injector (per-process) unless a ``state_dir`` is
    given, in which case they are shared across every process pointing at
    the same directory via append-only counter files -- one byte per hit,
    so concurrent appends cannot tear.
    """

    def __init__(self, plan: FaultPlan, state_dir: Optional[str] = None):
        """Bind ``plan`` (and optionally a shared counter directory)."""
        self.plan = plan
        self.state_dir = state_dir
        if state_dir:
            os.makedirs(state_dir, exist_ok=True)
        self._hits: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    # -- counters ------------------------------------------------------
    def _counter_path(self, name: str) -> str:
        return os.path.join(self.state_dir or "", _SAFE_NAME.sub("_", name))

    def _bump(self, name: str) -> int:
        """Increment the named counter; returns the new (1-based) value."""
        if not self.state_dir:
            value = self._hits.get(name, 0) + 1
            self._hits[name] = value
            return value
        path = self._counter_path(name)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, b".")
            return os.fstat(fd).st_size
        finally:
            os.close(fd)

    def hits(self, site: str) -> int:
        """How many times ``site`` has been hit so far."""
        if not self.state_dir:
            return self._hits.get(site, 0)
        try:
            return os.stat(self._counter_path(site)).st_size
        except OSError:
            return 0

    # -- evaluation ----------------------------------------------------
    def fire(self, site: str) -> Optional[FaultRule]:
        """Record one hit of ``site``; return the rule that fires, if any.

        Does not execute the fault -- :func:`maybe_fire` layers the generic
        actions on top.
        """
        rules = [rule for rule in self.plan.rules if rule.matches(site)]
        if not rules:
            return None
        hit = self._bump(site)
        for rule in rules:
            if rule.nth is not None:
                if hit != rule.nth:
                    continue
            elif rule.probability < 1.0:
                if _draw(self.plan.seed, site, hit) >= rule.probability:
                    continue
            if rule.limit is not None:
                fired_key = "%s@fired" % (site,)
                if self.hits(fired_key) >= rule.limit:
                    continue
                self._bump(fired_key)
            return rule
        return None


# ----------------------------------------------------------------------
# The per-process injector
# ----------------------------------------------------------------------
#: pid-guarded singleton: (owning pid, injector-or-None).  ``None`` after a
#: lookup means "checked the environment, nothing armed" -- the fast path.
_ARMED: Optional[Tuple[int, Optional[FaultInjector]]] = None


def arm(plan: FaultPlan, state_dir: Optional[str] = None) -> FaultInjector:
    """Programmatically arm fault injection for this process."""
    global _ARMED
    injector = FaultInjector(plan, state_dir=state_dir)
    _ARMED = (os.getpid(), injector)
    return injector


def disarm() -> None:
    """Drop any armed plan (environment arming re-evaluates lazily)."""
    global _ARMED
    _ARMED = None
    if PLAN_ENV in os.environ:
        # A disarm must win over the environment until the env changes.
        _ARMED = (os.getpid(), None)


def injector() -> Optional[FaultInjector]:
    """The process's armed injector, if any (lazily read from the env).

    The pid guard re-arms forked children from the inherited environment,
    so a daemon's fault plan covers its whole worker tree.
    """
    global _ARMED
    if _ARMED is not None and _ARMED[0] == os.getpid():
        return _ARMED[1]
    text = os.environ.get(PLAN_ENV)
    if not text:
        _ARMED = (os.getpid(), None)
        return None
    plan = FaultPlan.parse(text, seed=int(os.environ.get(SEED_ENV, "0") or "0"))
    armed = FaultInjector(plan, state_dir=os.environ.get(STATE_ENV) or None)
    _ARMED = (os.getpid(), armed)
    return armed


def maybe_fire(site: str) -> Optional[FaultRule]:
    """Evaluate ``site`` against the armed plan; execute generic kinds.

    ``crash`` exits the process, ``sleep`` blocks, ``error`` raises
    :class:`InjectedFault`.  Site-specific kinds (``hang``, ``torn-write``,
    ``fsync-fail``, ``exhaust-budget``, ``drop-connection``) are *returned*
    for the call site to implement; generic firings are returned too, for
    sites that want to log them.  Unarmed processes pay one lookup.
    """
    armed = injector()
    if armed is None:
        return None
    rule = armed.fire(site)
    if rule is None:
        return None
    if rule.kind == "crash":
        os._exit(rule.exit_code)
    elif rule.kind == "sleep":
        time.sleep(rule.seconds)
    elif rule.kind == "error":
        raise InjectedFault(site)
    return rule


def plan_environment(
    plan: FaultPlan, state_dir: Optional[str] = None
) -> Dict[str, str]:
    """The env-var triple that arms ``plan`` in a spawned process tree."""
    env = {PLAN_ENV: plan.to_json(), SEED_ENV: str(plan.seed)}
    if state_dir:
        env[STATE_ENV] = state_dir
    return env


#: The instrumented sites (documentation + a typo guard for tests).
SITES = (
    "supervisor.dispatch",
    "worker.run",
    "worker.budget",
    "client.connect",
    "client.send",
    "client.recv",
    "kb.flush",
    "fleet.route",
    "fleet.probe",
    "fleet.hedge",
)

__all__ = [
    "KINDS",
    "PLAN_ENV",
    "SEED_ENV",
    "SITES",
    "STATE_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultRule",
    "InjectedFault",
    "arm",
    "disarm",
    "injector",
    "maybe_fire",
    "plan_environment",
]
