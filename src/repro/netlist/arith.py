"""Arithmetic word-level primitives: adders, subtractors, multipliers, shifters.

These are the datapath primitives whose constraints are handed to the modular
arithmetic solver (Section 4 of the paper).  Adders, subtractors and
multipliers with one constant input generate *linear* constraints; general
multipliers and variable shifters generate *non-linear* constraints.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.netlist.gates import Gate
from repro.netlist.nets import Net


class Adder(Gate):
    """``out = (a + b + carry_in) mod 2**width``.

    ``carry_out``, when connected, is a 1-bit net receiving the carry out of
    the most significant position (used by the Fig. 3 implication example).
    """

    kind = "add"

    def __init__(
        self,
        name: str,
        a: Net,
        b: Net,
        output: Net,
        carry_in: Optional[Net] = None,
        carry_out: Optional[Net] = None,
    ):
        if a.width != b.width or a.width != output.width:
            raise ValueError("adder %s operand/output widths must match" % (name,))
        if carry_in is not None and carry_in.width != 1:
            raise ValueError("adder %s carry_in must be 1 bit" % (name,))
        inputs = [a, b] + ([carry_in] if carry_in is not None else [])
        super().__init__(name, inputs, output)
        self.a = a
        self.b = b
        self.carry_in = carry_in
        self.carry_out = carry_out
        if carry_out is not None:
            if carry_out.width != 1:
                raise ValueError("adder %s carry_out must be 1 bit" % (name,))
            if carry_out.driver is not None:
                raise ValueError("adder %s carry_out already driven" % (name,))
            carry_out.driver = self

    def evaluate(self, values: Dict[Net, int]) -> int:
        cin = values[self.carry_in] & 1 if self.carry_in is not None else 0
        return (values[self.a] + values[self.b] + cin) & self.output.mask()

    def evaluate_carry_out(self, values: Dict[Net, int]) -> int:
        """Concrete carry-out of the most significant bit."""
        cin = values[self.carry_in] & 1 if self.carry_in is not None else 0
        total = (values[self.a] & self.a.mask()) + (values[self.b] & self.b.mask()) + cin
        return 1 if total > self.output.mask() else 0


class Subtractor(Gate):
    """``out = (a - b) mod 2**width``."""

    kind = "sub"

    def __init__(self, name: str, a: Net, b: Net, output: Net):
        if a.width != b.width or a.width != output.width:
            raise ValueError("subtractor %s operand/output widths must match" % (name,))
        super().__init__(name, [a, b], output)
        self.a = a
        self.b = b

    def evaluate(self, values: Dict[Net, int]) -> int:
        return (values[self.a] - values[self.b]) & self.output.mask()


class Multiplier(Gate):
    """``out = (a * b) mod 2**out_width``.

    The output width may differ from the operand widths (the paper's Section 4
    example multiplies two 3-bit operands into a 4-bit product, which is the
    source of the modular "false negative" discussion).
    """

    kind = "mul"

    def __init__(self, name: str, a: Net, b: Net, output: Net):
        super().__init__(name, [a, b], output)
        self.a = a
        self.b = b

    def evaluate(self, values: Dict[Net, int]) -> int:
        return (values[self.a] * values[self.b]) & self.output.mask()

    def constant_operand(self) -> Optional[Net]:
        """Return the operand driven by a constant, if any (linear case)."""
        from repro.netlist.gates import ConstGate

        for operand in (self.a, self.b):
            if isinstance(operand.driver, ConstGate):
                return operand
        return None


class ShiftLeft(Gate):
    """``out = (a << amount) mod 2**width``; ``amount`` may be a net or constant."""

    kind = "shl"

    def __init__(self, name: str, a: Net, output: Net, amount: Optional[Net] = None, constant: Optional[int] = None):
        if (amount is None) == (constant is None):
            raise ValueError("shift %s needs exactly one of amount net / constant" % (name,))
        inputs = [a] + ([amount] if amount is not None else [])
        super().__init__(name, inputs, output)
        self.a = a
        self.amount = amount
        self.constant = constant

    def evaluate(self, values: Dict[Net, int]) -> int:
        shift = self.constant if self.constant is not None else values[self.amount]
        if shift >= self.output.width:
            return 0
        return (values[self.a] << shift) & self.output.mask()


class ShiftRight(Gate):
    """``out = a >> amount`` (logical shift); ``amount`` may be a net or constant."""

    kind = "shr"

    def __init__(self, name: str, a: Net, output: Net, amount: Optional[Net] = None, constant: Optional[int] = None):
        if (amount is None) == (constant is None):
            raise ValueError("shift %s needs exactly one of amount net / constant" % (name,))
        inputs = [a] + ([amount] if amount is not None else [])
        super().__init__(name, inputs, output)
        self.a = a
        self.amount = amount
        self.constant = constant

    def evaluate(self, values: Dict[Net, int]) -> int:
        shift = self.constant if self.constant is not None else values[self.amount]
        if shift >= self.a.width:
            return 0
        return (values[self.a] >> shift) & self.output.mask()
