"""Control / datapath classification of nets.

The paper views the RTL netlist as an interconnection of a control portion
and a datapath portion, with comparator outputs (data-to-control) and
multiplexor selects (control-to-data) as the interface.  The ATPG restricts
its decision making to *control* signals; everything else is left to the
arithmetic constraint solver.

The default classification below follows that model:

* 1-bit nets are control, unless they are squarely inside an arithmetic
  cone (e.g. a carry), in which case they are still treated as control --
  making them decision candidates is safe, just potentially less efficient;
* multi-bit nets are datapath, unless their :class:`~repro.netlist.nets.NetKind`
  was forced to ``CONTROL`` by the designer (e.g. one-hot state registers).
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net, NetKind


class SignalClass(enum.Enum):
    """Final classification of a net."""

    CONTROL = "control"
    DATA = "data"


def classify_nets(circuit: Circuit) -> Dict[Net, SignalClass]:
    """Classify every net of ``circuit`` as control or datapath.

    Returns a mapping usable by the ATPG decision-point selection and by the
    constraint extractor.
    """
    result: Dict[Net, SignalClass] = {}
    for net in circuit.nets:
        if net.kind == NetKind.CONTROL:
            result[net] = SignalClass.CONTROL
        elif net.kind == NetKind.DATA:
            result[net] = SignalClass.DATA
        elif net.width == 1:
            result[net] = SignalClass.CONTROL
        else:
            result[net] = SignalClass.DATA
    return result


def is_control(net: Net) -> bool:
    """Convenience single-net classification (AUTO nets: 1-bit == control)."""
    if net.kind == NetKind.CONTROL:
        return True
    if net.kind == NetKind.DATA:
        return False
    return net.width == 1
