"""Tri-state buffers and bus resolution.

The industrial properties p11-p13 of the paper are *bus contention* checks:
either the tri-state enable signals driving a shared bus are one-hot, or all
simultaneously enabled drivers present consensus data.  To express those
designs we model tri-state drivers explicitly:

* :class:`TristateBuffer` produces a (data, enable) pair feeding a
  :class:`BusResolver`;
* :class:`BusResolver` combines all drivers into the resolved bus value and
  exposes a 1-bit ``contention`` condition used by the property layer.

For the purpose of simulation, a bus with no enabled driver reads as all
zeros (pulled down) and a contended bus reads the bitwise OR of the enabled
drivers; the checker never relies on these values, only on the contention
predicate.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.netlist.gates import Gate
from repro.netlist.nets import Net


class TristateBuffer(Gate):
    """A tri-state driver: drives ``data`` onto the bus when ``enable`` is 1.

    The gate output is a plain net carrying the driver's data value; the
    enable net is exported so that the :class:`BusResolver` (and the property
    converter) can reason about which drivers are active.
    """

    kind = "tribuf"

    def __init__(self, name: str, data: Net, enable: Net, output: Net):
        if enable.width != 1:
            raise ValueError("tristate buffer %s enable must be 1 bit" % (name,))
        if data.width != output.width:
            raise ValueError("tristate buffer %s data/output widths must match" % (name,))
        super().__init__(name, [data, enable], output)
        self.data = data
        self.enable = enable

    def evaluate(self, values: Dict[Net, int]) -> int:
        return values[self.data] & self.output.mask()


class BusResolver(Gate):
    """Resolves a set of tri-state drivers into a single bus value.

    ``drivers`` is a list of ``(data_net, enable_net)`` pairs.  The resolved
    value is the OR of all enabled drivers' data (0 when none is enabled).
    """

    kind = "bus"

    def __init__(self, name: str, drivers: Sequence[Tuple[Net, Net]], output: Net):
        if not drivers:
            raise ValueError("bus resolver %s needs at least one driver" % (name,))
        inputs: List[Net] = []
        for data, enable in drivers:
            if data.width != output.width:
                raise ValueError("bus resolver %s driver width mismatch" % (name,))
            if enable.width != 1:
                raise ValueError("bus resolver %s enable must be 1 bit" % (name,))
            inputs.extend([data, enable])
        super().__init__(name, inputs, output)
        self.drivers: List[Tuple[Net, Net]] = list(drivers)

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for data, enable in self.drivers:
            if values[enable] & 1:
                result |= values[data]
        return result & self.output.mask()

    def has_contention(self, values: Dict[Net, int]) -> bool:
        """True when two enabled drivers present different data values."""
        seen = None
        for data, enable in self.drivers:
            if not values[enable] & 1:
                continue
            value = values[data] & self.output.mask()
            if seen is None:
                seen = value
            elif value != seen:
                return True
        return False

    def gate_count(self) -> int:
        return max(1, self.output.width) * len(self.drivers)
