"""Word-level RTL netlist: nets, primitives and the circuit container.

The paper's "quick synthesis" step maps HDL into a flattened netlist of
high-level primitives:

1. Boolean (bit-wise) gates,
2. arithmetic units (adders, subtractors, multipliers, shifters),
3. comparators (datapath-to-control interface),
4. multiplexors (control-to-datapath interface),
5. memory elements (flip-flops / registers),

plus the structural glue (constants, slices, concatenations, tri-state
buffers and bus resolvers) needed to express the benchmark designs.  The
:class:`~repro.netlist.circuit.Circuit` class is the container and offers a
builder API used by the HDL elaborator, the benchmark circuit generators and
by user code directly.
"""

from repro.netlist.nets import Net, NetKind
from repro.netlist.gates import (
    Gate,
    AndGate,
    OrGate,
    XorGate,
    NotGate,
    BufGate,
    NandGate,
    NorGate,
    XnorGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    ConstGate,
    SliceGate,
    ConcatGate,
    ZeroExtendGate,
)
from repro.netlist.arith import (
    Adder,
    Subtractor,
    Multiplier,
    ShiftLeft,
    ShiftRight,
)
from repro.netlist.compare import Comparator
from repro.netlist.mux import Mux
from repro.netlist.seq import DFF
from repro.netlist.tristate import TristateBuffer, BusResolver
from repro.netlist.circuit import Circuit
from repro.netlist.classify import classify_nets, SignalClass

__all__ = [
    "Net",
    "NetKind",
    "Gate",
    "AndGate",
    "OrGate",
    "XorGate",
    "NotGate",
    "BufGate",
    "NandGate",
    "NorGate",
    "XnorGate",
    "ReduceAnd",
    "ReduceOr",
    "ReduceXor",
    "ConstGate",
    "SliceGate",
    "ConcatGate",
    "ZeroExtendGate",
    "Adder",
    "Subtractor",
    "Multiplier",
    "ShiftLeft",
    "ShiftRight",
    "Comparator",
    "Mux",
    "DFF",
    "TristateBuffer",
    "BusResolver",
    "Circuit",
    "classify_nets",
    "SignalClass",
]
