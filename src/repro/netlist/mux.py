"""Multiplexors: the control-to-datapath interface primitives."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.netlist.gates import Gate
from repro.netlist.nets import Net


class Mux(Gate):
    """N-way multiplexor: ``out = data[select]``.

    ``select`` is a control net of width ``ceil(log2(len(data)))`` (or wider);
    a select value beyond the number of data inputs selects the last input,
    matching common synthesis behaviour for incomplete case statements.

    The implication rules use the paper's cube-union technique: the output is
    implied to the union of the *selectable* input cubes, and an input whose
    cube has empty intersection with the output cube implies that the select
    cannot take the corresponding value.
    """

    kind = "mux"

    def __init__(self, name: str, select: Net, data: Sequence[Net], output: Net):
        if len(data) < 2:
            raise ValueError("mux %s needs at least two data inputs" % (name,))
        widths = {net.width for net in data} | {output.width}
        if len(widths) != 1:
            raise ValueError("mux %s data/output widths must match" % (name,))
        needed_select_bits = max(1, (len(data) - 1).bit_length())
        if select.width < needed_select_bits:
            raise ValueError(
                "mux %s select width %d too small for %d inputs"
                % (name, select.width, len(data))
            )
        super().__init__(name, [select] + list(data), output)
        self.select = select
        self.data: List[Net] = list(data)

    def evaluate(self, values: Dict[Net, int]) -> int:
        index = values[self.select] & self.select.mask()
        if index >= len(self.data):
            index = len(self.data) - 1
        return values[self.data[index]] & self.output.mask()

    def selectable_indices(self, select_value: int) -> int:
        """Map a concrete select value to the index of the selected input."""
        if select_value >= len(self.data):
            return len(self.data) - 1
        return select_value

    def gate_count(self) -> int:
        return max(1, self.output.width) * max(1, len(self.data) - 1)
