"""Sequential primitives: word-level D flip-flops / registers."""

from __future__ import annotations

from typing import Dict, Optional

from repro.netlist.gates import Gate
from repro.netlist.nets import Net


class DFF(Gate):
    """A word-level D register with optional enable and asynchronous set/reset.

    Semantics per clock edge (evaluated by the simulator and by time-frame
    expansion, in priority order):

    1. if ``reset`` is asserted the register is loaded with ``reset_value``;
    2. else if ``set`` is asserted the register is loaded with all ones;
    3. else if ``enable`` is present and deasserted the register holds;
    4. else the register captures ``d``.

    ``init_value`` is the power-on value used to form the initial state set;
    ``None`` means the power-on value is unknown (all ``x``), in which case an
    initialization sequence must drive the register to a known value before
    properties that depend on it can be proved.
    """

    kind = "dff"

    def __init__(
        self,
        name: str,
        d: Net,
        q: Net,
        enable: Optional[Net] = None,
        reset: Optional[Net] = None,
        set_: Optional[Net] = None,
        reset_value: int = 0,
        init_value: Optional[int] = 0,
    ):
        if d.width != q.width:
            raise ValueError("DFF %s data/output widths must match" % (name,))
        for ctrl, label in ((enable, "enable"), (reset, "reset"), (set_, "set")):
            if ctrl is not None and ctrl.width != 1:
                raise ValueError("DFF %s %s must be 1 bit" % (name, label))
        inputs = [d]
        for ctrl in (enable, reset, set_):
            if ctrl is not None:
                inputs.append(ctrl)
        super().__init__(name, inputs, q)
        self.d = d
        self.q = q
        self.enable = enable
        self.reset = reset
        self.set = set_
        self.reset_value = reset_value & q.mask()
        self.init_value = None if init_value is None else (init_value & q.mask())

    def is_sequential(self) -> bool:
        return True

    def next_value(self, values: Dict[Net, int], current: int) -> int:
        """Value captured at the next clock edge given current net values."""
        if self.reset is not None and values[self.reset] & 1:
            return self.reset_value
        if self.set is not None and values[self.set] & 1:
            return self.q.mask()
        if self.enable is not None and not (values[self.enable] & 1):
            return current & self.q.mask()
        return values[self.d] & self.q.mask()

    def evaluate(self, values: Dict[Net, int]) -> int:
        raise RuntimeError(
            "DFF %s has no combinational evaluation; use the simulator" % (self.name,)
        )

    def gate_count(self) -> int:
        return 0

    def flip_flop_count(self) -> int:
        """Number of single-bit flip-flops this register contributes."""
        return self.q.width
