"""Nets: named, fixed-width signals connecting word-level primitives."""

from __future__ import annotations

import enum
from typing import List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.netlist.gates import Gate


class NetKind(enum.Enum):
    """Coarse role of a net in the control/datapath partition.

    ``AUTO`` nets are classified by :func:`repro.netlist.classify.classify_nets`
    based on their width and the primitives they connect; the other values
    force the classification (used e.g. for abstract state registers that the
    ATPG should treat as decision candidates even when they are wide).
    """

    AUTO = "auto"
    CONTROL = "control"
    DATA = "data"


class Net:
    """A named signal of fixed bit width.

    A net has at most one driver (the gate whose output it is, or ``None``
    for primary inputs and undriven nets) and any number of readers.
    """

    __slots__ = (
        "name",
        "width",
        "kind",
        "driver",
        "readers",
        "is_input",
        "is_output",
        "uid",
    )

    def __init__(self, name: str, width: int, kind: NetKind = NetKind.AUTO, uid: int = -1):
        if width <= 0:
            raise ValueError("net %r must have positive width, got %d" % (name, width))
        self.name = name
        self.width = width
        self.kind = kind
        self.driver: Optional["Gate"] = None
        self.readers: List["Gate"] = []
        self.is_input = False
        self.is_output = False
        self.uid = uid

    # ------------------------------------------------------------------
    def is_single_bit(self) -> bool:
        """True for one-bit nets (the natural control candidates)."""
        return self.width == 1

    def fanout(self) -> int:
        """Number of gates reading this net."""
        return len(self.readers)

    def is_primary_input(self) -> bool:
        """True when the net is a primary input of the circuit."""
        return self.is_input

    def is_primary_output(self) -> bool:
        """True when the net is a primary output of the circuit."""
        return self.is_output

    def mask(self) -> int:
        """All-ones mask of this net's width."""
        return (1 << self.width) - 1

    def __str__(self) -> str:
        return "%s[%d]" % (self.name, self.width)

    def __repr__(self) -> str:
        return "Net(%r, width=%d, kind=%s)" % (self.name, self.width, self.kind.value)
