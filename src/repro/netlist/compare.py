"""Comparators: the datapath-to-control interface primitives."""

from __future__ import annotations

from typing import Dict

from repro.netlist.gates import Gate
from repro.netlist.nets import Net

#: Supported (unsigned) comparison operators.
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")


class Comparator(Gate):
    """``out = (a <op> b)`` as a single control bit.

    Comparators form the boundary between datapath and control logic: their
    1-bit outputs are decision candidates for the word-level ATPG, and their
    implications are translated between the Boolean and arithmetic domains
    with the range technique of the paper's Fig. 4.
    """

    kind = "cmp"

    def __init__(self, name: str, op: str, a: Net, b: Net, output: Net):
        if op not in COMPARE_OPS:
            raise ValueError("comparator %s has unsupported operator %r" % (name, op))
        if a.width != b.width:
            raise ValueError("comparator %s operand widths must match" % (name,))
        if output.width != 1:
            raise ValueError("comparator %s output must be 1 bit" % (name,))
        super().__init__(name, [a, b], output)
        self.op = op
        self.a = a
        self.b = b

    def evaluate(self, values: Dict[Net, int]) -> int:
        lhs = values[self.a] & self.a.mask()
        rhs = values[self.b] & self.b.mask()
        if self.op == "==":
            return 1 if lhs == rhs else 0
        if self.op == "!=":
            return 1 if lhs != rhs else 0
        if self.op == "<":
            return 1 if lhs < rhs else 0
        if self.op == "<=":
            return 1 if lhs <= rhs else 0
        if self.op == ">":
            return 1 if lhs > rhs else 0
        return 1 if lhs >= rhs else 0

    def is_control_interface(self) -> bool:
        return True

    def gate_count(self) -> int:
        return max(1, self.a.width)
