"""The circuit container and its builder API.

A :class:`Circuit` owns the nets and gates of one flattened design.  It
offers a fluent builder API (``circuit.add(a, b)``, ``circuit.eq(x, 3)``,
``circuit.dff(d, reset=rst)`` ...) that is used by the HDL elaborator, the
benchmark design generators and directly by library users.

The container also provides the structural services the rest of the engine
needs: topological ordering of the combinational logic (for simulation and
levelized implication), design statistics (for Table 1), and validation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.compare import Comparator
from repro.netlist.gates import (
    AndGate,
    BufGate,
    ConcatGate,
    ConstGate,
    Gate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    SliceGate,
    XnorGate,
    XorGate,
    ZeroExtendGate,
)
from repro.netlist.mux import Mux
from repro.netlist.nets import Net, NetKind
from repro.netlist.seq import DFF
from repro.netlist.tristate import BusResolver, TristateBuffer

#: Operands accepted by the builder: an existing net or a Python int
#: (which is materialised as a constant of the required width).
Operand = Union[Net, int]


@dataclass
class CircuitStats:
    """Design statistics in the shape of the paper's Table 1."""

    name: str
    lines: int
    gates: int
    flip_flops: int
    inputs: int
    outputs: int

    def as_row(self) -> Tuple[str, int, int, int, int, int]:
        return (self.name, self.lines, self.gates, self.flip_flops, self.inputs, self.outputs)


class Circuit:
    """A flattened word-level RTL netlist.

    Parameters
    ----------
    name:
        Design name (used in statistics and reports).
    source_lines:
        Number of HDL source lines the design was elaborated from; purely
        informational (Table 1 column ``#lines``).
    """

    def __init__(self, name: str, source_lines: int = 0):
        self.name = name
        self.source_lines = source_lines
        self.nets: List[Net] = []
        self.gates: List[Gate] = []
        self.inputs: List[Net] = []
        self.outputs: List[Net] = []
        self.flip_flops: List[DFF] = []
        self._nets_by_name: Dict[str, Net] = {}
        self._name_counters: Dict[str, int] = {}
        self._topo_cache: Optional[List[Gate]] = None

    # ------------------------------------------------------------------
    # Net management
    # ------------------------------------------------------------------
    def new_net(self, name: Optional[str] = None, width: int = 1, kind: NetKind = NetKind.AUTO) -> Net:
        """Create a new net; a unique name is generated when none is given."""
        if name is None:
            name = self._unique_name("n")
        elif name in self._nets_by_name:
            raise ValueError("net name %r already exists in circuit %r" % (name, self.name))
        net = Net(name, width, kind, uid=len(self.nets))
        self.nets.append(net)
        self._nets_by_name[name] = net
        self._topo_cache = None
        return net

    def net(self, name: str) -> Net:
        """Look up a net by name."""
        try:
            return self._nets_by_name[name]
        except KeyError:
            raise KeyError("no net named %r in circuit %r" % (name, self.name)) from None

    def has_net(self, name: str) -> bool:
        """True when a net with this name exists."""
        return name in self._nets_by_name

    def input(self, name: str, width: int = 1, kind: NetKind = NetKind.AUTO) -> Net:
        """Declare a primary input."""
        net = self.new_net(name, width, kind)
        net.is_input = True
        self.inputs.append(net)
        return net

    def output(self, net: Net, name: Optional[str] = None) -> Net:
        """Mark ``net`` as a primary output (optionally via a named buffer)."""
        if name is not None and name != net.name:
            buffered = self.new_net(name, net.width, net.kind)
            self._register(BufGate(self._unique_name("buf"), [net], buffered))
            net = buffered
        net.is_output = True
        if net not in self.outputs:
            self.outputs.append(net)
        return net

    # ------------------------------------------------------------------
    # Builder helpers
    # ------------------------------------------------------------------
    def _unique_name(self, prefix: str) -> str:
        while True:
            count = self._name_counters.get(prefix, 0)
            self._name_counters[prefix] = count + 1
            candidate = "%s_%d" % (prefix, count)
            if candidate not in self._nets_by_name:
                return candidate

    def _register(self, gate: Gate) -> Gate:
        gate.uid = len(self.gates)
        self.gates.append(gate)
        if isinstance(gate, DFF):
            self.flip_flops.append(gate)
        self._topo_cache = None
        return gate

    def _coerce(self, operand: Operand, width: int) -> Net:
        """Turn an int operand into a constant net of the given width."""
        if isinstance(operand, Net):
            return operand
        return self.const(operand, width)

    def _operand_width(self, operands: Sequence[Operand]) -> int:
        for operand in operands:
            if isinstance(operand, Net):
                return operand.width
        raise ValueError("at least one operand must be a net to infer the width")

    # ------------------------------------------------------------------
    # Constants and structure
    # ------------------------------------------------------------------
    def const(self, value: int, width: int, name: Optional[str] = None) -> Net:
        """A constant driver of the given value and width."""
        net = self.new_net(name or self._unique_name("const"), width)
        self._register(ConstGate(self._unique_name("constg"), net, value))
        return net

    def slice(self, a: Net, msb: int, lsb: int, name: Optional[str] = None) -> Net:
        """Extract bits ``[msb:lsb]`` of ``a``."""
        out = self.new_net(name, msb - lsb + 1)
        self._register(SliceGate(self._unique_name("slice"), [a], out, msb, lsb))
        return out

    def bit(self, a: Net, index: int, name: Optional[str] = None) -> Net:
        """Extract a single bit of ``a``."""
        return self.slice(a, index, index, name)

    def concat(self, *parts: Net, name: Optional[str] = None) -> Net:
        """Concatenate nets; the first argument is the most significant part."""
        width = sum(p.width for p in parts)
        out = self.new_net(name, width)
        self._register(ConcatGate(self._unique_name("concat"), list(parts), out))
        return out

    def zext(self, a: Net, width: int, name: Optional[str] = None) -> Net:
        """Zero-extend ``a`` to ``width`` bits."""
        if width == a.width:
            return a
        out = self.new_net(name, width)
        self._register(ZeroExtendGate(self._unique_name("zext"), [a], out))
        return out

    # ------------------------------------------------------------------
    # Bit-wise logic
    # ------------------------------------------------------------------
    def _bitwise(self, cls, operands: Sequence[Operand], name: Optional[str]) -> Net:
        width = self._operand_width(operands)
        nets = [self._coerce(op, width) for op in operands]
        out = self.new_net(name, width)
        self._register(cls(self._unique_name(cls.kind), nets, out))
        return out

    def and_(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise AND of the operands."""
        return self._bitwise(AndGate, operands, name)

    def or_(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise OR of the operands."""
        return self._bitwise(OrGate, operands, name)

    def xor(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise XOR of the operands."""
        return self._bitwise(XorGate, operands, name)

    def nand(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise NAND of the operands."""
        return self._bitwise(NandGate, operands, name)

    def nor(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise NOR of the operands."""
        return self._bitwise(NorGate, operands, name)

    def xnor(self, *operands: Operand, name: Optional[str] = None) -> Net:
        """Bit-wise XNOR of the operands."""
        return self._bitwise(XnorGate, operands, name)

    def not_(self, a: Net, name: Optional[str] = None) -> Net:
        """Bit-wise inversion."""
        return self._bitwise(NotGate, [a], name)

    def buf(self, a: Net, name: Optional[str] = None) -> Net:
        """A buffer (useful to rename or isolate a net)."""
        return self._bitwise(BufGate, [a], name)

    def reduce_and(self, a: Net, name: Optional[str] = None) -> Net:
        """1-bit AND reduction of all bits of ``a``."""
        out = self.new_net(name, 1)
        self._register(ReduceAnd(self._unique_name("redand"), [a], out))
        return out

    def reduce_or(self, a: Net, name: Optional[str] = None) -> Net:
        """1-bit OR reduction of all bits of ``a``."""
        out = self.new_net(name, 1)
        self._register(ReduceOr(self._unique_name("redor"), [a], out))
        return out

    def reduce_xor(self, a: Net, name: Optional[str] = None) -> Net:
        """1-bit XOR (parity) reduction of all bits of ``a``."""
        out = self.new_net(name, 1)
        self._register(ReduceXor(self._unique_name("redxor"), [a], out))
        return out

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def add(
        self,
        a: Operand,
        b: Operand,
        carry_in: Optional[Net] = None,
        with_carry_out: bool = False,
        name: Optional[str] = None,
    ) -> Union[Net, Tuple[Net, Net]]:
        """``a + b`` (mod 2**width).  With ``with_carry_out`` returns
        ``(sum, carry_out)``."""
        width = self._operand_width([a, b])
        a_net = self._coerce(a, width)
        b_net = self._coerce(b, width)
        out = self.new_net(name, width)
        cout = self.new_net(None, 1) if with_carry_out else None
        self._register(Adder(self._unique_name("add"), a_net, b_net, out, carry_in, cout))
        if with_carry_out:
            return out, cout
        return out

    def sub(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """``a - b`` (mod 2**width)."""
        width = self._operand_width([a, b])
        out = self.new_net(name, width)
        self._register(
            Subtractor(self._unique_name("sub"), self._coerce(a, width), self._coerce(b, width), out)
        )
        return out

    def mul(self, a: Operand, b: Operand, out_width: Optional[int] = None, name: Optional[str] = None) -> Net:
        """``a * b`` truncated to ``out_width`` bits (default: operand width)."""
        width = self._operand_width([a, b])
        out = self.new_net(name, out_width if out_width is not None else width)
        self._register(
            Multiplier(self._unique_name("mul"), self._coerce(a, width), self._coerce(b, width), out)
        )
        return out

    def shl(self, a: Net, amount: Union[Net, int], name: Optional[str] = None) -> Net:
        """Logical left shift by a net or constant amount."""
        out = self.new_net(name, a.width)
        if isinstance(amount, Net):
            self._register(ShiftLeft(self._unique_name("shl"), a, out, amount=amount))
        else:
            self._register(ShiftLeft(self._unique_name("shl"), a, out, constant=amount))
        return out

    def shr(self, a: Net, amount: Union[Net, int], name: Optional[str] = None) -> Net:
        """Logical right shift by a net or constant amount."""
        out = self.new_net(name, a.width)
        if isinstance(amount, Net):
            self._register(ShiftRight(self._unique_name("shr"), a, out, amount=amount))
        else:
            self._register(ShiftRight(self._unique_name("shr"), a, out, constant=amount))
        return out

    # ------------------------------------------------------------------
    # Comparators
    # ------------------------------------------------------------------
    def _compare(self, op: str, a: Operand, b: Operand, name: Optional[str]) -> Net:
        width = self._operand_width([a, b])
        out = self.new_net(name, 1, NetKind.CONTROL)
        self._register(
            Comparator(self._unique_name("cmp"), op, self._coerce(a, width), self._coerce(b, width), out)
        )
        return out

    def eq(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit ``a == b``."""
        return self._compare("==", a, b, name)

    def ne(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit ``a != b``."""
        return self._compare("!=", a, b, name)

    def lt(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit unsigned ``a < b``."""
        return self._compare("<", a, b, name)

    def le(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit unsigned ``a <= b``."""
        return self._compare("<=", a, b, name)

    def gt(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit unsigned ``a > b``."""
        return self._compare(">", a, b, name)

    def ge(self, a: Operand, b: Operand, name: Optional[str] = None) -> Net:
        """1-bit unsigned ``a >= b``."""
        return self._compare(">=", a, b, name)

    # ------------------------------------------------------------------
    # Multiplexors, registers, buses
    # ------------------------------------------------------------------
    def mux(self, select: Net, *data: Operand, name: Optional[str] = None) -> Net:
        """N-way multiplexor ``data[select]``."""
        width = self._operand_width(list(data))
        nets = [self._coerce(d, width) for d in data]
        out = self.new_net(name, width)
        self._register(Mux(self._unique_name("mux"), select, nets, out))
        return out

    def dff(
        self,
        d: Net,
        enable: Optional[Net] = None,
        reset: Optional[Net] = None,
        set_: Optional[Net] = None,
        reset_value: int = 0,
        init_value: Optional[int] = 0,
        name: Optional[str] = None,
        kind: NetKind = NetKind.AUTO,
    ) -> Net:
        """A word register; returns its output (``q``) net."""
        q = self.new_net(name, d.width, kind)
        self._register(
            DFF(
                self._unique_name("dff"),
                d,
                q,
                enable=enable,
                reset=reset,
                set_=set_,
                reset_value=reset_value,
                init_value=init_value,
            )
        )
        return q

    def state(self, name: str, width: int, kind: NetKind = NetKind.AUTO) -> Net:
        """Declare a register output net whose input logic is connected later.

        Sequential feedback (a register whose next value depends on its own
        output) is built in two phases: declare the output with :meth:`state`,
        build the next-value logic from it, then close the loop with
        :meth:`dff_into`.
        """
        return self.new_net(name, width, kind)

    def dff_into(
        self,
        q: Net,
        d: Net,
        enable: Optional[Net] = None,
        reset: Optional[Net] = None,
        set_: Optional[Net] = None,
        reset_value: int = 0,
        init_value: Optional[int] = 0,
    ) -> DFF:
        """Create the register driving a previously declared :meth:`state` net."""
        ff = DFF(
            self._unique_name("dff"),
            d,
            q,
            enable=enable,
            reset=reset,
            set_=set_,
            reset_value=reset_value,
            init_value=init_value,
        )
        self._register(ff)
        return ff

    def tribuf(self, data: Net, enable: Net, name: Optional[str] = None) -> Net:
        """A tri-state driver; combine drivers with :meth:`bus`."""
        out = self.new_net(name, data.width)
        self._register(TristateBuffer(self._unique_name("tribuf"), data, enable, out))
        return out

    def bus(self, drivers: Sequence[Tuple[Net, Net]], name: Optional[str] = None) -> Net:
        """Resolve ``(data, enable)`` tri-state drivers into a shared bus."""
        width = drivers[0][0].width
        out = self.new_net(name, width)
        self._register(BusResolver(self._unique_name("bus"), drivers, out))
        return out

    # ------------------------------------------------------------------
    # Structural queries
    # ------------------------------------------------------------------
    def combinational_gates(self) -> List[Gate]:
        """All gates except flip-flops."""
        return [g for g in self.gates if not g.is_sequential()]

    def topological_order(self) -> List[Gate]:
        """Combinational gates in topological (input-to-output) order.

        Flip-flop outputs and primary inputs are treated as sources.  Raises
        ``ValueError`` when a combinational cycle exists.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        comb = self.combinational_gates()
        # Map each net to the combinational gate driving it (if any).
        in_degree: Dict[Gate, int] = {}
        dependents: Dict[Gate, List[Gate]] = {g: [] for g in comb}
        for gate in comb:
            count = 0
            for net in gate.inputs:
                driver = net.driver
                if driver is not None and not driver.is_sequential():
                    dependents[driver].append(gate)
                    count += 1
            in_degree[gate] = count
        ready = deque(g for g in comb if in_degree[g] == 0)
        order: List[Gate] = []
        while ready:
            gate = ready.popleft()
            order.append(gate)
            for succ in dependents[gate]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(comb):
            raise ValueError("circuit %r contains a combinational cycle" % (self.name,))
        self._topo_cache = order
        return order

    def validate(self) -> None:
        """Check structural sanity: every non-input net must have a driver."""
        for net in self.nets:
            if net.is_input:
                continue
            if net.driver is None and net.readers:
                raise ValueError("net %s is read but never driven" % (net,))
        self.topological_order()

    def stats(self) -> CircuitStats:
        """Design statistics in the shape of the paper's Table 1."""
        gate_total = sum(g.gate_count() for g in self.gates)
        ff_total = sum(ff.flip_flop_count() for ff in self.flip_flops)
        return CircuitStats(
            name=self.name,
            lines=self.source_lines,
            gates=gate_total,
            flip_flops=ff_total,
            inputs=sum(net.width for net in self.inputs),
            outputs=sum(net.width for net in self.outputs),
        )

    def __repr__(self) -> str:
        return "Circuit(%r, %d nets, %d gates, %d FFs)" % (
            self.name,
            len(self.nets),
            len(self.gates),
            len(self.flip_flops),
        )
