"""Boolean (bit-wise) and structural word-level primitives.

Every primitive derives from :class:`Gate`.  A gate has named input nets, a
single output net, and two evaluation hooks:

``evaluate(values)``
    concrete (two-valued) evaluation used by the cycle simulator and by the
    counterexample validator; ``values`` maps each input net to an ``int``.

The three-valued implication rules live in :mod:`repro.implication`; keeping
them out of the gate classes keeps the netlist a plain data structure that
the front end, the bit-blaster and the constraint extractor can all share.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.netlist.nets import Net


class Gate:
    """Base class for every word-level primitive.

    Parameters
    ----------
    name:
        Unique instance name within the circuit.
    inputs:
        Input nets in positional order (semantics defined by the subclass).
    output:
        The single output net driven by this gate.
    """

    #: short mnemonic used in dumps and statistics, overridden by subclasses.
    kind = "gate"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        self.name = name
        self.inputs: List[Net] = list(inputs)
        self.output = output
        self.uid = -1
        for net in self.inputs:
            net.readers.append(self)
        if output.driver is not None:
            raise ValueError(
                "net %s already driven by %s, cannot also drive from %s"
                % (output.name, output.driver.name, name)
            )
        output.driver = self

    # ------------------------------------------------------------------
    def evaluate(self, values: Dict[Net, int]) -> int:
        """Concrete evaluation; must be overridden by combinational gates."""
        raise NotImplementedError(self.__class__.__name__)

    def is_sequential(self) -> bool:
        """True for state-holding primitives (flip-flops / registers)."""
        return False

    def is_control_interface(self) -> bool:
        """True for primitives whose output feeds control logic from data
        (comparators) -- the datapath/control boundary of the paper."""
        return False

    def gate_count(self) -> int:
        """Equivalent primitive-gate count used for Table 1 statistics.

        Word-level primitives count roughly as their bit-sliced size so that
        reported #gates is comparable across designs of different widths.
        """
        return max(1, self.output.width)

    def __repr__(self) -> str:
        ins = ", ".join(n.name for n in self.inputs)
        return "%s(%s: %s -> %s)" % (self.__class__.__name__, self.name, ins, self.output.name)


# ----------------------------------------------------------------------
# Bit-wise logic
# ----------------------------------------------------------------------
class _BitwiseGate(Gate):
    """Common base for n-ary bit-wise gates (all operands share the output width)."""

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        widths = {net.width for net in inputs} | {output.width}
        if len(widths) != 1:
            raise ValueError(
                "bitwise gate %s requires equal widths, got %s" % (name, sorted(widths))
            )
        if len(inputs) < 1:
            raise ValueError("bitwise gate %s needs at least one input" % (name,))
        super().__init__(name, inputs, output)


class AndGate(_BitwiseGate):
    kind = "and"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = self.output.mask()
        for net in self.inputs:
            result &= values[net]
        return result


class OrGate(_BitwiseGate):
    kind = "or"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for net in self.inputs:
            result |= values[net]
        return result & self.output.mask()


class XorGate(_BitwiseGate):
    kind = "xor"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for net in self.inputs:
            result ^= values[net]
        return result & self.output.mask()


class NandGate(_BitwiseGate):
    kind = "nand"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = self.output.mask()
        for net in self.inputs:
            result &= values[net]
        return (~result) & self.output.mask()


class NorGate(_BitwiseGate):
    kind = "nor"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for net in self.inputs:
            result |= values[net]
        return (~result) & self.output.mask()


class XnorGate(_BitwiseGate):
    kind = "xnor"

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for net in self.inputs:
            result ^= values[net]
        return (~result) & self.output.mask()


class NotGate(_BitwiseGate):
    kind = "not"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        if len(inputs) != 1:
            raise ValueError("NOT gate %s takes exactly one input" % (name,))
        super().__init__(name, inputs, output)

    def evaluate(self, values: Dict[Net, int]) -> int:
        return (~values[self.inputs[0]]) & self.output.mask()


class BufGate(_BitwiseGate):
    kind = "buf"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        if len(inputs) != 1:
            raise ValueError("BUF gate %s takes exactly one input" % (name,))
        super().__init__(name, inputs, output)

    def evaluate(self, values: Dict[Net, int]) -> int:
        return values[self.inputs[0]] & self.output.mask()


# ----------------------------------------------------------------------
# Reduction gates (word -> single bit)
# ----------------------------------------------------------------------
class _ReductionGate(Gate):
    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        if len(inputs) != 1:
            raise ValueError("reduction gate %s takes exactly one input" % (name,))
        if output.width != 1:
            raise ValueError("reduction gate %s output must be 1 bit" % (name,))
        super().__init__(name, inputs, output)


class ReduceAnd(_ReductionGate):
    kind = "redand"

    def evaluate(self, values: Dict[Net, int]) -> int:
        net = self.inputs[0]
        return 1 if values[net] == net.mask() else 0


class ReduceOr(_ReductionGate):
    kind = "redor"

    def evaluate(self, values: Dict[Net, int]) -> int:
        return 1 if values[self.inputs[0]] != 0 else 0


class ReduceXor(_ReductionGate):
    kind = "redxor"

    def evaluate(self, values: Dict[Net, int]) -> int:
        return bin(values[self.inputs[0]]).count("1") & 1


# ----------------------------------------------------------------------
# Structural gates
# ----------------------------------------------------------------------
class ConstGate(Gate):
    """Drives a net with a constant value."""

    kind = "const"

    def __init__(self, name: str, output: Net, value: int):
        super().__init__(name, [], output)
        self.value = value & output.mask()

    def evaluate(self, values: Dict[Net, int]) -> int:
        return self.value

    def gate_count(self) -> int:
        return 0


class SliceGate(Gate):
    """Extracts bits ``[msb:lsb]`` of its input."""

    kind = "slice"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net, msb: int, lsb: int):
        if len(inputs) != 1:
            raise ValueError("slice gate %s takes exactly one input" % (name,))
        if msb < lsb or msb >= inputs[0].width:
            raise ValueError(
                "invalid slice [%d:%d] of %d-bit net in gate %s"
                % (msb, lsb, inputs[0].width, name)
            )
        if output.width != msb - lsb + 1:
            raise ValueError("slice gate %s output width mismatch" % (name,))
        super().__init__(name, inputs, output)
        self.msb = msb
        self.lsb = lsb

    def evaluate(self, values: Dict[Net, int]) -> int:
        return (values[self.inputs[0]] >> self.lsb) & self.output.mask()

    def gate_count(self) -> int:
        return 0


class ConcatGate(Gate):
    """Concatenates its inputs; ``inputs[0]`` is the most significant part."""

    kind = "concat"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        total = sum(net.width for net in inputs)
        if total != output.width:
            raise ValueError(
                "concat gate %s output width %d != sum of input widths %d"
                % (name, output.width, total)
            )
        super().__init__(name, inputs, output)

    def evaluate(self, values: Dict[Net, int]) -> int:
        result = 0
        for net in self.inputs:
            result = (result << net.width) | (values[net] & net.mask())
        return result

    def gate_count(self) -> int:
        return 0


class ZeroExtendGate(Gate):
    """Zero-extends its input to the (wider) output width."""

    kind = "zext"

    def __init__(self, name: str, inputs: Sequence[Net], output: Net):
        if len(inputs) != 1:
            raise ValueError("zero-extend gate %s takes exactly one input" % (name,))
        if output.width < inputs[0].width:
            raise ValueError("zero-extend gate %s output narrower than input" % (name,))
        super().__init__(name, inputs, output)

    def evaluate(self, values: Dict[Net, int]) -> int:
        return values[self.inputs[0]] & self.inputs[0].mask()

    def gate_count(self) -> int:
        return 0
