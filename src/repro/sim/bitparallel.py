"""Bit-parallel execution of a compiled evaluation plan.

:class:`BitParallelSim` simulates K input vectors at once.  Every net of
width W is represented as W Python-int *lanes*; bit ``k`` of lane ``b`` is
bit ``b`` of vector ``k``'s value.  One bitwise gate visit then evaluates all
K vectors with a handful of big-int operations, so the per-gate interpreter
overhead (the dominant cost of the reference simulator) is amortised K ways.

Word-level structure maps onto lanes as follows:

* bitwise logic, reductions, slice/concat/zext, tri-state buses and mux
  select decoding are pure lane operations;
* adders, subtractors and comparators use K-wide ripple carry/borrow chains
  (O(width) lane operations for all K vectors);
* multipliers and variable-amount shifters fall back to per-lane word
  packing: the operand lanes are transposed into K machine words, evaluated
  per vector, and the results transposed back (these gates are rare in the
  benchmark zoo, so the transpose cost is negligible in practice).

Registers update in a separate phase with the same reset > set > enable
priority as the interpreted oracle; unknown power-on values normalise to 0
exactly as :class:`~repro.simulation.simulator.Simulator` does, so lane
outputs are bit-for-bit comparable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net
from repro.sim.compile import CompiledCircuit, FFPlan, PlanOp, compile_circuit

Lanes = List[int]


# ----------------------------------------------------------------------
# Lane transposition helpers
# ----------------------------------------------------------------------
def pack_words(words: Sequence[int], width: int) -> Lanes:
    """Transpose per-vector words into ``width`` bit-lanes (LSB lane first)."""
    lanes = [0] * width
    mask = (1 << width) - 1
    for index, word in enumerate(words):
        word &= mask
        bit = 1 << index
        while word:
            low = word & -word
            lanes[low.bit_length() - 1] |= bit
            word ^= low
    return lanes


def unpack_words(lanes: Sequence[int], count: int) -> List[int]:
    """Transpose bit-lanes back into ``count`` per-vector words."""
    words = [0] * count
    for position, lane in enumerate(lanes):
        bit = 1 << position
        while lane:
            low = lane & -lane
            index = low.bit_length() - 1
            if index >= count:
                break
            words[index] |= bit
            lane ^= low
    return words


# ----------------------------------------------------------------------
# K-wide arithmetic primitives over lanes
# ----------------------------------------------------------------------
def _ripple_add(a: Lanes, b: Lanes, carry: int):
    """K-wide ``a + b + carry``; returns (sum lanes, carry-out lane)."""
    out = []
    for la, lb in zip(a, b):
        axb = la ^ lb
        out.append(axb ^ carry)
        carry = (la & lb) | (carry & axb)
    return out, carry


def _ge_lane(a: Lanes, b: Lanes, full: int) -> int:
    """K-wide unsigned ``a >= b`` (the carry out of ``a + ~b + 1``)."""
    carry = full
    for la, lb in zip(a, b):
        nb = lb ^ full
        carry = (la & nb) | (carry & (la ^ nb))
    return carry


def _eq_lane(a: Lanes, b: Lanes, full: int) -> int:
    """K-wide ``a == b``."""
    result = full
    for la, lb in zip(a, b):
        result &= (la ^ lb) ^ full
    return result


def _const_indicator(select: Lanes, value: int, full: int) -> int:
    """K-wide ``select == value`` for a compile-time constant value."""
    result = full
    for position, lane in enumerate(select):
        result &= lane if (value >> position) & 1 else lane ^ full
    return result


class BitParallelSim:
    """Evaluates a compiled plan over K simultaneous input vectors.

    Parameters
    ----------
    plan:
        A :class:`CompiledCircuit` (or a :class:`Circuit`, compiled on the
        fly for convenience).
    lanes:
        K, the number of vectors evaluated per :meth:`step`.
    initial_state:
        Optional mapping from register output net (or name) to a scalar
        power-on value, broadcast across all K lanes; registers not
        mentioned use their ``init_value`` (0 when unknown), matching the
        interpreted oracle.
    """

    def __init__(
        self,
        plan: Union[CompiledCircuit, Circuit],
        lanes: int = 64,
        initial_state: Optional[Mapping[Union[Net, str], int]] = None,
    ):
        if isinstance(plan, Circuit):
            plan = compile_circuit(plan)
        if lanes < 1:
            raise ValueError("lanes must be >= 1, got %d" % (lanes,))
        self.plan = plan
        self.lanes = lanes
        self.full = (1 << lanes) - 1
        self._kernel: List[Callable] = [self._compile_op(op) for op in plan.ops]
        self.values: List[Optional[Lanes]] = [None] * plan.num_slots
        name_of_slot = {slot: name for name, slot in plan.slot_of_name.items()}
        #: register output-net names, parallel to plan.ffs (reset hot path).
        self._ff_names: List[str] = [name_of_slot[ff.q] for ff in plan.ffs]
        self.state: List[Lanes] = []
        self.reset(initial_state)

    # ------------------------------------------------------------------
    def reset(self, initial_state: Optional[Mapping[Union[Net, str], int]] = None) -> None:
        """Re-broadcast the power-on state across all lanes."""
        overrides: Dict[str, int] = {}
        if initial_state:
            for key, value in initial_state.items():
                overrides[key.name if isinstance(key, Net) else key] = value
        self.state = []
        for ff, name in zip(self.plan.ffs, self._ff_names):
            value = overrides.get(name, ff.init_value)
            self.state.append(self._broadcast(value, ff.width))

    def _broadcast(self, value: int, width: int) -> Lanes:
        full = self.full
        return [full if (value >> b) & 1 else 0 for b in range(width)]

    # ------------------------------------------------------------------
    def step(self, input_lanes: Mapping[str, Sequence[int]]) -> None:
        """Evaluate one clock cycle for all K vectors and update registers.

        ``input_lanes`` maps input net names to their bit-lanes (LSB lane
        first; build them with :func:`pack_words`).  Missing inputs default
        to 0 in every lane, like the interpreted oracle.
        """
        values = self.values
        full = self.full
        for name, slot, width in self.plan.inputs:
            provided = input_lanes.get(name)
            if provided is None:
                values[slot] = [0] * width
            else:
                lanes = [lane & full for lane in provided[:width]]
                if len(lanes) < width:
                    lanes.extend([0] * (width - len(lanes)))
                values[slot] = lanes
        for ff, current in zip(self.plan.ffs, self.state):
            values[ff.q] = current
        for op in self._kernel:
            op(values)
        self.state = [
            self._next_state(ff, current, values)
            for ff, current in zip(self.plan.ffs, self.state)
        ]

    def _next_state(self, ff: FFPlan, current: Lanes, values) -> Lanes:
        full = self.full
        nxt = values[ff.d]
        if ff.enable >= 0:
            enable = values[ff.enable][0]
            disabled = enable ^ full
            nxt = [(enable & n) | (disabled & c) for n, c in zip(nxt, current)]
        if ff.set_ >= 0:
            set_lane = values[ff.set_][0]
            nxt = [n | set_lane for n in nxt]
        if ff.reset >= 0:
            reset = values[ff.reset][0]
            keep = reset ^ full
            value = ff.reset_value
            nxt = [
                ((reset if (value >> b) & 1 else 0) | (keep & n))
                for b, n in enumerate(nxt)
            ]
        return nxt

    # ------------------------------------------------------------------
    def peek(self, net_or_name: Union[Net, str]) -> Lanes:
        """Lanes of a net after the last :meth:`step`."""
        lanes = self.values[self.plan.slot(net_or_name)]
        if lanes is None:
            raise KeyError("net %r has no value; step() first" % (net_or_name,))
        return lanes

    def sample(self, net_or_name: Union[Net, str], lane: int) -> int:
        """Scalar value of one net in one lane after the last :meth:`step`."""
        value = 0
        for position, bits in enumerate(self.peek(net_or_name)):
            if (bits >> lane) & 1:
                value |= 1 << position
        return value

    def register_lanes(self) -> Dict[str, Lanes]:
        """Current register lanes keyed by output net name."""
        return dict(zip(self._ff_names, self.state))

    # ------------------------------------------------------------------
    # Per-opcode kernel compilation (closures capture slots and constants,
    # so the execution loop does zero name resolution or type dispatch).
    # ------------------------------------------------------------------
    def _compile_op(self, op: PlanOp) -> Callable:
        full = self.full
        lanes = self.lanes
        out = op.out
        ins = op.ins
        opcode = op.opcode
        width = op.width

        if opcode in ("and", "or", "xor", "nand", "nor", "xnor"):
            return self._compile_bitwise(op)
        if opcode == "not":
            a = ins[0]

            def op_not(v):
                v[out] = [lane ^ full for lane in v[a]]

            return op_not
        if opcode == "buf":
            a = ins[0]

            def op_buf(v):
                v[out] = v[a]

            return op_buf
        if opcode == "zext":
            a = ins[0]
            pad = [0] * (width - op.params[0])

            def op_zext(v):
                v[out] = v[a] + pad

            return op_zext
        if opcode == "redand":
            a = ins[0]

            def op_redand(v):
                result = full
                for lane in v[a]:
                    result &= lane
                v[out] = [result]

            return op_redand
        if opcode == "redor":
            a = ins[0]

            def op_redor(v):
                result = 0
                for lane in v[a]:
                    result |= lane
                v[out] = [result]

            return op_redor
        if opcode == "redxor":
            a = ins[0]

            def op_redxor(v):
                result = 0
                for lane in v[a]:
                    result ^= lane
                v[out] = [result]

            return op_redxor
        if opcode == "const":
            constant = self._broadcast(op.params[0], width)

            def op_const(v):
                v[out] = constant

            return op_const
        if opcode == "slice":
            a = ins[0]
            msb, lsb = op.params

            def op_slice(v):
                v[out] = v[a][lsb:msb + 1]

            return op_slice
        if opcode == "concat":
            # inputs[0] is the most significant part; lanes are LSB-first.
            reversed_ins = tuple(reversed(ins))

            def op_concat(v):
                result = []
                for slot in reversed_ins:
                    result.extend(v[slot])
                v[out] = result

            return op_concat
        if opcode == "add":
            a, b = ins[0], ins[1]
            has_cin, cout = op.params
            cin = ins[2] if has_cin else -1

            def op_add(v):
                carry = v[cin][0] if cin >= 0 else 0
                total, carry = _ripple_add(v[a], v[b], carry)
                v[out] = total
                if cout >= 0:
                    v[cout] = [carry]

            return op_add
        if opcode == "sub":
            a, b = ins

            def op_sub(v):
                inverted = [lane ^ full for lane in v[b]]
                v[out], _ = _ripple_add(v[a], inverted, full)

            return op_sub
        if opcode == "mul":
            a, b = ins
            out_mask = (1 << width) - 1

            def op_mul(v):
                lhs = unpack_words(v[a], lanes)
                rhs = unpack_words(v[b], lanes)
                v[out] = pack_words(
                    [(x * y) & out_mask for x, y in zip(lhs, rhs)], width
                )

            return op_mul
        if opcode in ("shl_const", "shr_const"):
            a = ins[0]
            shift, in_width = op.params
            left = opcode == "shl_const"

            def op_shift_const(v):
                source = v[a]
                if left:
                    # out bit b is input bit b - shift (0 when shift >= width).
                    v[out] = [
                        source[b - shift] if shift <= b < in_width + shift else 0
                        for b in range(width)
                    ] if shift < width else [0] * width
                else:
                    v[out] = [
                        source[b + shift] if b + shift < in_width else 0
                        for b in range(width)
                    ] if shift < in_width else [0] * width

            return op_shift_const
        if opcode in ("shl_var", "shr_var"):
            a, amount = ins
            in_width = op.params[0]
            out_mask = (1 << width) - 1
            left = opcode == "shl_var"

            def op_shift_var(v):
                operands = unpack_words(v[a], lanes)
                amounts = unpack_words(v[amount], lanes)
                words = []
                for value, shift in zip(operands, amounts):
                    if left:
                        words.append(0 if shift >= width else (value << shift) & out_mask)
                    else:
                        words.append(0 if shift >= in_width else (value >> shift) & out_mask)
                v[out] = pack_words(words, width)

            return op_shift_var
        if opcode == "cmp":
            a, b = ins
            operator = op.params[0]

            def op_cmp(v):
                la, lb = v[a], v[b]
                if operator == "==":
                    result = _eq_lane(la, lb, full)
                elif operator == "!=":
                    result = _eq_lane(la, lb, full) ^ full
                elif operator == ">=":
                    result = _ge_lane(la, lb, full)
                elif operator == "<":
                    result = _ge_lane(la, lb, full) ^ full
                elif operator == "<=":
                    result = _ge_lane(lb, la, full)
                else:  # ">"
                    result = _ge_lane(lb, la, full) ^ full
                v[out] = [result]

            return op_cmp
        if opcode == "mux":
            select = ins[0]
            data = ins[1:]
            count = len(data)

            def op_mux(v):
                sel = v[select]
                indicators = [
                    _const_indicator(sel, index, full) for index in range(count - 1)
                ]
                # Any select value beyond the explicit indicators clamps to
                # the last data input (incomplete-case semantics).
                rest = full
                for indicator in indicators:
                    rest &= indicator ^ full
                indicators.append(rest)
                result = []
                for b in range(width):
                    lane = 0
                    for indicator, slot in zip(indicators, data):
                        lane |= indicator & v[slot][b]
                    result.append(lane)
                v[out] = result

            return op_mux
        if opcode == "bus":
            pairs = tuple(zip(ins[0::2], ins[1::2]))

            def op_bus(v):
                result = [0] * width
                for data_slot, enable_slot in pairs:
                    enable = v[enable_slot][0]
                    if enable:
                        data = v[data_slot]
                        for b in range(width):
                            result[b] |= enable & data[b]
                v[out] = result

            return op_bus
        raise NotImplementedError("opcode %r" % (opcode,))

    def _compile_bitwise(self, op: PlanOp) -> Callable:
        full = self.full
        out = op.out
        ins = op.ins
        invert = op.opcode in ("nand", "nor", "xnor")
        base = {"and": "and", "nand": "and", "or": "or", "nor": "or",
                "xor": "xor", "xnor": "xor"}[op.opcode]

        if len(ins) == 1:
            a = ins[0]
            if invert:
                def op_unary_inv(v):
                    v[out] = [lane ^ full for lane in v[a]]
                return op_unary_inv

            def op_unary(v):
                v[out] = v[a]
            return op_unary

        if len(ins) == 2 and not invert:
            a, b = ins
            if base == "and":
                def op_and2(v):
                    v[out] = [x & y for x, y in zip(v[a], v[b])]
                return op_and2
            if base == "or":
                def op_or2(v):
                    v[out] = [x | y for x, y in zip(v[a], v[b])]
                return op_or2

            def op_xor2(v):
                v[out] = [x ^ y for x, y in zip(v[a], v[b])]
            return op_xor2

        rest = ins[1:]
        first = ins[0]

        def op_nary(v):
            acc = list(v[first])
            for slot in rest:
                operand = v[slot]
                if base == "and":
                    acc = [x & y for x, y in zip(acc, operand)]
                elif base == "or":
                    acc = [x | y for x, y in zip(acc, operand)]
                else:
                    acc = [x ^ y for x, y in zip(acc, operand)]
            if invert:
                acc = [lane ^ full for lane in acc]
            v[out] = acc

        return op_nary
