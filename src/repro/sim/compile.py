"""Levelization of a netlist into a flat, bit-parallel evaluation plan.

The interpreted simulator pays, per vector and per gate, a dict lookup for
every operand plus an ``isinstance``/virtual-dispatch step.  This pass hoists
all of that to compile time: every net gets an integer *slot*, every gate
becomes one :class:`PlanOp` record (opcode string + slot indices + static
parameters) in topological order, and flip-flops become :class:`FFPlan`
records for the state-update phase.  The executor
(:class:`~repro.sim.bitparallel.BitParallelSim`) walks the flat op list with
no per-step name resolution or type dispatch at all.

Opcodes and their ``params`` payloads:

========== =========================================================
``and or xor nand nor xnor``  n-ary bitwise; ``ins`` are operand slots
``not buf``                   unary bitwise
``redand redor redxor``       reductions; ``params=(input_width,)``
``const``                     ``params=(value,)``
``slice``                     ``params=(msb, lsb)``
``concat``                    ``params=(width_0, ..., width_n-1)``
``zext``                      ``params=(input_width,)``
``add``                       ``ins=(a, b[, cin])``; ``params=(has_cin, cout_slot)``
``sub``                       ``ins=(a, b)``
``mul``                       word fallback; ``params=(a_width, b_width)``
``shl_const shr_const``       ``params=(shift, input_width)``
``shl_var shr_var``           word fallback; ``params=(a_width, amt_width)``
``cmp``                       ``params=(op,)`` with op in ``== != < <= > >=``
``mux``                       ``ins=(select, d0, ..., dn-1)``; ``params=(select_width,)``
``bus``                       ``ins=(d0, e0, d1, e1, ...)``
========== =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.circuit import Circuit
from repro.netlist.compare import Comparator
from repro.netlist.gates import (
    AndGate,
    BufGate,
    ConcatGate,
    ConstGate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    SliceGate,
    XnorGate,
    XorGate,
    ZeroExtendGate,
)
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.tristate import BusResolver, TristateBuffer


@dataclass(frozen=True)
class PlanOp:
    """One levelized evaluation step (see the module docstring for payloads)."""

    opcode: str
    out: int
    width: int
    ins: Tuple[int, ...]
    params: Tuple = ()


@dataclass(frozen=True)
class FFPlan:
    """One register in the state-update phase of a cycle."""

    q: int
    d: int
    width: int
    enable: int  # slot or -1
    reset: int  # slot or -1
    set_: int  # slot or -1
    reset_value: int
    init_value: int  # unknown power-on (None) normalises to 0, as the oracle does


@dataclass
class CompiledCircuit:
    """A levelized, slot-indexed evaluation plan for one circuit."""

    name: str
    num_slots: int
    widths: List[int]
    slot_of_name: Dict[str, int]
    inputs: List[Tuple[str, int, int]]  # (name, slot, width)
    ops: List[PlanOp]
    ffs: List[FFPlan]

    def slot(self, net_or_name) -> int:
        """Slot index of a net (by object or name)."""
        name = net_or_name.name if isinstance(net_or_name, Net) else net_or_name
        return self.slot_of_name[name]

    def op_histogram(self) -> Dict[str, int]:
        """Opcode counts, for plan inspection and statistics."""
        histogram: Dict[str, int] = {}
        for op in self.ops:
            histogram[op.opcode] = histogram.get(op.opcode, 0) + 1
        return histogram


_BITWISE_OPCODES = [
    (AndGate, "and"),
    (OrGate, "or"),
    (XorGate, "xor"),
    (NandGate, "nand"),
    (NorGate, "nor"),
    (XnorGate, "xnor"),
]


def compile_circuit(circuit: Circuit) -> CompiledCircuit:
    """Levelize ``circuit`` into a :class:`CompiledCircuit` evaluation plan.

    Raises ``ValueError`` (via the topological sort) on combinational cycles.
    The plan snapshots the circuit at compile time; recompile after adding
    gates (e.g. after compiling a new property monitor into the netlist).
    """
    slots: Dict[Net, int] = {net: index for index, net in enumerate(circuit.nets)}
    widths = [net.width for net in circuit.nets]
    ops: List[PlanOp] = []

    for gate in circuit.topological_order():
        ops.append(_compile_gate(gate, slots))

    ffs: List[FFPlan] = []
    for ff in circuit.flip_flops:
        ffs.append(
            FFPlan(
                q=slots[ff.q],
                d=slots[ff.d],
                width=ff.q.width,
                enable=slots[ff.enable] if ff.enable is not None else -1,
                reset=slots[ff.reset] if ff.reset is not None else -1,
                set_=slots[ff.set] if ff.set is not None else -1,
                reset_value=ff.reset_value,
                init_value=ff.init_value if ff.init_value is not None else 0,
            )
        )

    return CompiledCircuit(
        name=circuit.name,
        num_slots=len(circuit.nets),
        widths=widths,
        slot_of_name={net.name: index for net, index in slots.items()},
        inputs=[(net.name, slots[net], net.width) for net in circuit.inputs],
        ops=ops,
        ffs=ffs,
    )


def _compile_gate(gate, slots: Dict[Net, int]) -> PlanOp:
    """Compile-time dispatch: one gate to one PlanOp record."""
    out = slots[gate.output]
    width = gate.output.width
    ins = tuple(slots[net] for net in gate.inputs)

    for gate_class, opcode in _BITWISE_OPCODES:
        if type(gate) is gate_class:
            return PlanOp(opcode, out, width, ins)
    if isinstance(gate, NotGate):
        return PlanOp("not", out, width, ins)
    if isinstance(gate, (BufGate, TristateBuffer, ZeroExtendGate)):
        # A tri-state buffer's concrete output is its data input (resolution
        # happens in the bus op); zext just pads zero lanes above the input.
        if isinstance(gate, ZeroExtendGate):
            return PlanOp("zext", out, width, ins[:1], (gate.inputs[0].width,))
        return PlanOp("buf", out, width, ins[:1])
    if isinstance(gate, ReduceAnd):
        return PlanOp("redand", out, width, ins, (gate.inputs[0].width,))
    if isinstance(gate, ReduceOr):
        return PlanOp("redor", out, width, ins, (gate.inputs[0].width,))
    if isinstance(gate, ReduceXor):
        return PlanOp("redxor", out, width, ins, (gate.inputs[0].width,))
    if isinstance(gate, ConstGate):
        return PlanOp("const", out, width, (), (gate.value,))
    if isinstance(gate, SliceGate):
        return PlanOp("slice", out, width, ins, (gate.msb, gate.lsb))
    if isinstance(gate, ConcatGate):
        return PlanOp("concat", out, width, ins, tuple(n.width for n in gate.inputs))
    if isinstance(gate, Adder):
        has_cin = gate.carry_in is not None
        cout = slots[gate.carry_out] if gate.carry_out is not None else -1
        operand_slots = (slots[gate.a], slots[gate.b]) + (
            (slots[gate.carry_in],) if has_cin else ()
        )
        return PlanOp("add", out, width, operand_slots, (has_cin, cout))
    if isinstance(gate, Subtractor):
        return PlanOp("sub", out, width, (slots[gate.a], slots[gate.b]))
    if isinstance(gate, Multiplier):
        return PlanOp(
            "mul", out, width, (slots[gate.a], slots[gate.b]),
            (gate.a.width, gate.b.width),
        )
    if isinstance(gate, (ShiftLeft, ShiftRight)):
        left = isinstance(gate, ShiftLeft)
        if gate.amount is None:
            return PlanOp(
                "shl_const" if left else "shr_const",
                out, width, (slots[gate.a],), (gate.constant, gate.a.width),
            )
        return PlanOp(
            "shl_var" if left else "shr_var",
            out, width, (slots[gate.a], slots[gate.amount]),
            (gate.a.width, gate.amount.width),
        )
    if isinstance(gate, Comparator):
        return PlanOp("cmp", out, width, (slots[gate.a], slots[gate.b]), (gate.op,))
    if isinstance(gate, Mux):
        return PlanOp(
            "mux", out, width,
            (slots[gate.select],) + tuple(slots[d] for d in gate.data),
            (gate.select.width,),
        )
    if isinstance(gate, BusResolver):
        driver_slots: List[int] = []
        for data, enable in gate.drivers:
            driver_slots.append(slots[data])
            driver_slots.append(slots[enable])
        return PlanOp("bus", out, width, tuple(driver_slots))
    raise NotImplementedError(
        "cannot compile gate %r of type %s" % (gate.name, type(gate).__name__)
    )
