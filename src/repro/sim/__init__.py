"""Compiled, bit-parallel simulation kernel.

This package is the throughput engine behind every mass-sampling workload:
:func:`compile_circuit` levelizes a :class:`~repro.netlist.circuit.Circuit`
into a flat, topologically-ordered evaluation plan (all ``isinstance``
dispatch happens once, at compile time), and :class:`BitParallelSim`
evaluates K input vectors simultaneously by bit-slicing every net into
K-wide Python-int lanes.  The interpreted
:class:`~repro.simulation.simulator.Simulator` remains the reference oracle;
the cross-check tests assert exact lane-for-lane agreement.
"""

from repro.sim.compile import CompiledCircuit, PlanOp, compile_circuit
from repro.sim.bitparallel import (
    BitParallelSim,
    pack_words,
    unpack_words,
)
from repro.sim.sampler import RandomLaneSampler

__all__ = [
    "BitParallelSim",
    "CompiledCircuit",
    "PlanOp",
    "RandomLaneSampler",
    "compile_circuit",
    "pack_words",
    "unpack_words",
]
