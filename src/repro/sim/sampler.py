"""Random input-lane generation that honours environment constraints.

The interpreted random-simulation baseline draws one vector at a time and
rejection-samples against the environment.  For the bit-parallel kernel we
sample *constructively* instead: free inputs get one ``getrandbits(K)`` draw
per bit lane (K independent uniform vectors in one call), pinned inputs are
broadcast constants, and one-hot groups pick a winner per lane — so every
lane satisfies the pin and one-hot constraints by construction, with no
rejection loop at all.

Draw order is fixed (free inputs in circuit order, then one-hot groups), so
a given seed always produces the same stimulus.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.netlist.circuit import Circuit
from repro.properties.environment import Environment

Lanes = List[int]


class RandomLaneSampler:
    """Draws per-cycle input lanes for :class:`~repro.sim.BitParallelSim`."""

    def __init__(self, circuit: Circuit, environment: Optional[Environment] = None):
        environment = environment if environment is not None else Environment()
        self.pinned: Dict[str, int] = dict(environment.pinned)
        grouped = set()
        self.groups: List[List[str]] = []
        for group in environment.one_hot_groups:
            # A member pinned to 1 always wins its group; members pinned to 0
            # are never eligible.  (Conflicting pins degenerate to the pin.)
            forced = [name for name in group if self.pinned.get(name) == 1]
            eligible = [
                name for name in group
                if name not in self.pinned or self.pinned[name] == 1
            ]
            self.groups.append(forced if forced else (eligible or list(group)))
            grouped.update(group)
        self.group_members = grouped
        #: free inputs: (name, width), sampled uniformly per lane.
        self.free: List[Tuple[str, int]] = [
            (net.name, net.width)
            for net in circuit.inputs
            if net.name not in self.pinned and net.name not in grouped
        ]
        self._broadcast_cache: Dict[int, Dict[str, Lanes]] = {}

    # ------------------------------------------------------------------
    def sample(self, rng: random.Random, lanes: int) -> Dict[str, Lanes]:
        """One cycle of stimulus: input name -> bit-lanes for ``lanes`` vectors."""
        vector = dict(self._pinned_lanes(lanes))
        for name, width in self.free:
            vector[name] = [rng.getrandbits(lanes) for _ in range(width)]
        for group in self.groups:
            if len(group) == 1:
                vector[group[0]] = [(1 << lanes) - 1]
                continue
            member_lanes = [0] * len(group)
            for lane in range(lanes):
                member_lanes[rng.randrange(len(group))] |= 1 << lane
            for name, lane in zip(group, member_lanes):
                vector[name] = [lane]
        return vector

    def scalar_vector(self, packed: Dict[str, Lanes], lane: int) -> Dict[str, int]:
        """Extract one lane of a sampled cycle as a plain input vector."""
        vector: Dict[str, int] = {}
        for name, value_lanes in packed.items():
            value = 0
            for position, bits in enumerate(value_lanes):
                if (bits >> lane) & 1:
                    value |= 1 << position
            vector[name] = value
        return vector

    # ------------------------------------------------------------------
    def _pinned_lanes(self, lanes: int) -> Dict[str, Lanes]:
        cached = self._broadcast_cache.get(lanes)
        if cached is None:
            full = (1 << lanes) - 1
            cached = {}
            for name, value in self.pinned.items():
                if name in self.group_members:
                    continue  # handled (or overridden) by the group draw
                cached[name] = [
                    full if (value >> b) & 1 else 0 for b in range(max(1, value.bit_length()))
                ]
            self._broadcast_cache[lanes] = cached
        return cached
