"""The ``arbiter`` benchmark: a rotating-grant bus arbiter.

A one-hot grant register parks on the current owner while that owner keeps
requesting and rotates to the next station otherwise.  The paper checks (p5)
that the grant signals are one-hot and (p6) that a waiting client obtains the
bus after a bounded number of cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net, NetKind


@dataclass
class ArbiterPorts:
    """Handles to the interesting nets of the generated design."""

    circuit: Circuit
    grants: List[Net]
    requests: List[Net]
    grant_register: Net
    acks: List[Net]


def build_arbiter(num_clients: int = 4, source_lines: int = 303) -> ArbiterPorts:
    """Build the round-robin arbiter with ``num_clients`` requesters."""
    if num_clients < 2:
        raise ValueError("arbiter needs at least two clients")

    circuit = Circuit("arbiter", source_lines=source_lines)
    requests = [circuit.input("req_%d" % index, 1) for index in range(num_clients)]

    grant_register = circuit.state("grant", num_clients, kind=NetKind.CONTROL)

    # The current owner keeps the grant while it is still requesting.
    owner_requesting_terms = []
    grants: List[Net] = []
    for index in range(num_clients):
        grant_bit = circuit.bit(grant_register, index, name="grant_%d" % index)
        circuit.output(grant_bit)
        grants.append(grant_bit)
        owner_requesting_terms.append(circuit.and_(grant_bit, requests[index]))
    owner_requesting = circuit.or_(*owner_requesting_terms, name="owner_requesting")

    low_part = circuit.slice(grant_register, num_clients - 2, 0)
    high_bit = circuit.slice(grant_register, num_clients - 1, num_clients - 1)
    rotated = circuit.concat(low_part, high_bit, name="grant_rotated")

    next_grant = circuit.mux(owner_requesting, rotated, grant_register, name="grant_next")
    circuit.dff_into(grant_register, next_grant, init_value=1)
    circuit.output(grant_register)

    # Acknowledge outputs: a client is acknowledged when it requests and owns
    # the grant in the same cycle.
    acks: List[Net] = []
    for index in range(num_clients):
        ack = circuit.and_(grants[index], requests[index], name="ack_%d" % index)
        circuit.output(ack)
        acks.append(ack)

    return ArbiterPorts(
        circuit=circuit,
        grants=grants,
        requests=requests,
        grant_register=grant_register,
        acks=acks,
    )
