"""The ``alarm_clock`` benchmark: a 12-hour alarm clock.

The clock keeps a 12-hour display (hour 1..12, minute 0..59) advanced by a
``tick`` input, with set buttons that increment the hour / minute directly.
An alarm time and on/off flag complete the design.  The paper's properties:

* p7 -- after the clock passes "11:59" it resets to "12:00";
* p8 -- a witness sequence brings the hour display to "2" after power-on;
* p9 -- the hour display can never show "13" (or any invalid value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net


@dataclass
class AlarmClockPorts:
    """Handles to the interesting nets of the generated design."""

    circuit: Circuit
    hour: Net
    minute: Net
    alarm_hour: Net
    alarm_minute: Net
    alarm_on: Net
    alarm_fire: Net
    tick: Net
    set_time: Net
    set_alarm: Net
    inc_hour: Net
    inc_minute: Net


def build_alarm_clock(
    free_initial_state: bool = False, source_lines: int = 719
) -> AlarmClockPorts:
    """Build the alarm clock design.

    ``free_initial_state`` leaves the time registers uninitialised (any state)
    so that transition properties like p7 can be checked inductively from an
    arbitrary valid state rather than only from the power-on state.
    """
    circuit = Circuit("alarm_clock", source_lines=source_lines)

    tick = circuit.input("tick", 1)
    set_time = circuit.input("set_time", 1)
    set_alarm = circuit.input("set_alarm", 1)
    inc_hour = circuit.input("inc_hour", 1)
    inc_minute = circuit.input("inc_minute", 1)
    alarm_toggle = circuit.input("alarm_toggle", 1)
    snooze = circuit.input("snooze", 1)

    hour_init: Optional[int] = None if free_initial_state else 12
    minute_init: Optional[int] = None if free_initial_state else 0

    hour = circuit.state("hour", 4)
    minute = circuit.state("minute", 6)
    alarm_hour = circuit.state("alarm_hour", 4)
    alarm_minute = circuit.state("alarm_minute", 6)
    alarm_on = circuit.state("alarm_on", 1)

    # ------------------------------------------------------------------
    # Increment logic with 12-hour / 60-minute wrap-around.
    # ------------------------------------------------------------------
    hour_is_12 = circuit.eq(hour, 12, name="hour_is_12")
    hour_plus_one = circuit.add(hour, 1, name="hour_plus_one")
    hour_inc = circuit.mux(hour_is_12, hour_plus_one, circuit.const(1, 4), name="hour_inc")

    minute_is_59 = circuit.eq(minute, 59, name="minute_is_59")
    minute_plus_one = circuit.add(minute, 1, name="minute_plus_one")
    minute_inc = circuit.mux(
        minute_is_59, minute_plus_one, circuit.const(0, 6), name="minute_inc"
    )

    # ------------------------------------------------------------------
    # Time registers: the set buttons take priority over the tick.
    # ------------------------------------------------------------------
    ticking = circuit.and_(tick, circuit.not_(set_time), name="ticking")
    set_hour_press = circuit.and_(set_time, inc_hour, name="set_hour_press")
    set_minute_press = circuit.and_(set_time, inc_minute, name="set_minute_press")

    hour_rolls = circuit.and_(ticking, minute_is_59, name="hour_rolls")
    hour_advance = circuit.or_(hour_rolls, set_hour_press, name="hour_advance")
    hour_next = circuit.mux(hour_advance, hour, hour_inc, name="hour_next")
    circuit.dff_into(hour, hour_next, init_value=hour_init)
    circuit.output(hour)

    minute_advance = circuit.or_(ticking, set_minute_press, name="minute_advance")
    minute_next = circuit.mux(minute_advance, minute, minute_inc, name="minute_next")
    circuit.dff_into(minute, minute_next, init_value=minute_init)
    circuit.output(minute)

    # ------------------------------------------------------------------
    # Alarm registers.
    # ------------------------------------------------------------------
    alarm_hour_is_12 = circuit.eq(alarm_hour, 12, name="alarm_hour_is_12")
    alarm_hour_plus = circuit.add(alarm_hour, 1, name="alarm_hour_plus")
    alarm_hour_inc = circuit.mux(
        alarm_hour_is_12, alarm_hour_plus, circuit.const(1, 4), name="alarm_hour_inc"
    )
    alarm_minute_is_59 = circuit.eq(alarm_minute, 59, name="alarm_minute_is_59")
    alarm_minute_plus = circuit.add(alarm_minute, 1, name="alarm_minute_plus")
    alarm_minute_inc = circuit.mux(
        alarm_minute_is_59, alarm_minute_plus, circuit.const(0, 6), name="alarm_minute_inc"
    )

    alarm_hour_press = circuit.and_(set_alarm, inc_hour, name="alarm_hour_press")
    alarm_minute_press = circuit.and_(set_alarm, inc_minute, name="alarm_minute_press")
    alarm_hour_next = circuit.mux(alarm_hour_press, alarm_hour, alarm_hour_inc)
    alarm_minute_next = circuit.mux(alarm_minute_press, alarm_minute, alarm_minute_inc)
    circuit.dff_into(alarm_hour, alarm_hour_next, init_value=None if free_initial_state else 12)
    circuit.dff_into(
        alarm_minute, alarm_minute_next, init_value=None if free_initial_state else 0
    )
    circuit.output(alarm_hour)
    circuit.output(alarm_minute)

    alarm_on_next = circuit.mux(alarm_toggle, alarm_on, circuit.not_(alarm_on))
    circuit.dff_into(alarm_on, alarm_on_next, init_value=None if free_initial_state else 0)
    circuit.output(alarm_on)

    # ------------------------------------------------------------------
    # Alarm firing condition (masked by snooze).
    # ------------------------------------------------------------------
    time_matches = circuit.and_(
        circuit.eq(hour, alarm_hour), circuit.eq(minute, alarm_minute), name="time_matches"
    )
    alarm_fire = circuit.and_(
        alarm_on, time_matches, circuit.not_(snooze), name="alarm_fire"
    )
    circuit.output(alarm_fire)

    return AlarmClockPorts(
        circuit=circuit,
        hour=hour,
        minute=minute,
        alarm_hour=alarm_hour,
        alarm_minute=alarm_minute,
        alarm_on=alarm_on,
        alarm_fire=alarm_fire,
        tick=tick,
        set_time=set_time,
        set_alarm=set_alarm,
        inc_hour=inc_hour,
        inc_minute=inc_minute,
    )
