"""Synthetic stand-ins for the paper's industrial designs.

The five ``industry_0x`` circuits of the paper are proprietary; these
generators reproduce their *structure classes* so that properties p10-p14
exercise the same code paths:

* ``industry_01`` -- a large control/datapath block whose mode register has
  internal don't-care encodings (p10: the don't-care states are unreachable);
* ``industry_02`` -- a wide tri-state bus whose drivers are enabled by a
  decoded (one-hot by construction) select register (p11: no bus contention);
* ``industry_03`` -- a wide tri-state bus with overlapping enables but a
  single broadcast data source (consensus -- p12: no bus contention);
* ``industry_04`` -- a tri-state bus whose enables are primary inputs
  constrained one-hot by the environment (p13: no bus contention);
* ``industry_05`` -- a small one-hot-encoded controller whose non-one-hot
  states are internal don't-cares (p14: they are unreachable);
* ``industry_06`` -- a datapath-heavy checksum cross-checker in the p12
  consensus style: two adder trees recompute the same sum through different
  paths whose difference is a control-selected offset that can never equal
  the sentinel gap (p15: the sentinel pair is unreachable).  Every search
  leaf bottoms out in the modular arithmetic solver, which makes this the
  exercise bench for datapath infeasibility certificates.

Every generator accepts size parameters so the scalability benchmark can grow
the designs; the defaults keep the Table 2 reproduction fast on a laptop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net, NetKind


# ----------------------------------------------------------------------
# industry_01: don't-care mode register inside a pipelined datapath
# ----------------------------------------------------------------------
@dataclass
class Industry01Ports:
    circuit: Circuit
    mode: Net
    command: Net
    pipeline: List[Net]


def build_industry_01(
    num_stages: int = 4, data_width: int = 16, source_lines: int = 11280
) -> Industry01Ports:
    """A control FSM plus datapath pipeline with don't-care mode encodings.

    The 3-bit mode register is updated from a command input through selection
    logic that only ever produces the values 0..4; encodings 5-7 are internal
    don't-cares (p10 asserts they are unreachable).
    """
    circuit = Circuit("industry_01", source_lines=source_lines)
    command = circuit.input("command", 3)
    operand = circuit.input("operand", data_width)
    enable = circuit.input("enable", 1)

    mode = circuit.state("mode", 3, kind=NetKind.CONTROL)
    # The next mode is a decoded function of the command: commands 0..4 map
    # to modes 0..4, every other command falls back to mode 0.
    command_valid = circuit.le(command, 4, name="command_valid")
    clamped = circuit.mux(command_valid, circuit.const(0, 3), command, name="mode_clamped")
    advance = circuit.and_(enable, circuit.ne(clamped, mode), name="mode_advance")
    mode_next = circuit.mux(advance, mode, clamped, name="mode_next")
    circuit.dff_into(mode, mode_next, init_value=0)
    circuit.output(mode)

    # Datapath pipeline: each stage accumulates the operand scaled by the
    # stage index when its mode matches, otherwise it holds.
    pipeline: List[Net] = []
    previous = operand
    for stage in range(num_stages):
        stage_reg = circuit.state("stage_%d" % stage, data_width)
        selected = circuit.eq(mode, stage % 5, name="stage_sel_%d" % stage)
        summed = circuit.add(previous, stage_reg, name="stage_sum_%d" % stage)
        stage_next = circuit.mux(selected, stage_reg, summed, name="stage_next_%d" % stage)
        circuit.dff_into(stage_reg, stage_next, init_value=0)
        circuit.output(stage_reg)
        pipeline.append(stage_reg)
        previous = stage_reg

    return Industry01Ports(circuit=circuit, mode=mode, command=command, pipeline=pipeline)


# ----------------------------------------------------------------------
# Shared tri-state bus helpers (industry_02/03/04)
# ----------------------------------------------------------------------
@dataclass
class TristateBusPorts:
    circuit: Circuit
    bus: Net
    enables: List[Net]
    driver_data: List[Net]


def build_industry_02(
    num_drivers: int = 4, bus_width: int = 16, source_lines: int = 5726
) -> TristateBusPorts:
    """Bus contention class 1: enables decoded from a select register.

    The select register is loaded from an input; the enables are its decode,
    which is one-hot by construction, so contention is impossible (p11).
    The paper's design uses 152-bit buses; the width is a parameter.
    """
    circuit = Circuit("industry_02", source_lines=source_lines)
    select_width = max(1, (num_drivers - 1).bit_length())
    select_in = circuit.input("select_in", select_width)
    load = circuit.input("load", 1)

    select = circuit.state("select", select_width, kind=NetKind.CONTROL)
    select_next = circuit.mux(load, select, select_in, name="select_next")
    circuit.dff_into(select, select_next, init_value=0)

    enables: List[Net] = []
    driver_data: List[Net] = []
    drivers: List[Tuple[Net, Net]] = []
    for index in range(num_drivers):
        data_in = circuit.input("src_%d" % index, bus_width)
        data_reg = circuit.state("data_%d" % index, bus_width)
        circuit.dff_into(data_reg, data_in, init_value=index)
        enable = circuit.eq(select, index, name="enable_%d" % index)
        circuit.output(enable)
        enables.append(enable)
        driver_data.append(data_reg)
        drivers.append((circuit.tribuf(data_reg, enable), enable))

    bus = circuit.bus(drivers, name="bus")
    circuit.output(bus)
    return TristateBusPorts(circuit=circuit, bus=bus, enables=enables, driver_data=driver_data)


def build_industry_03(
    num_drivers: int = 4, bus_width: int = 16, source_lines: int = 694
) -> TristateBusPorts:
    """Bus contention class 2: overlapping enables with consensus data.

    Every driver forwards the *same* broadcast register, so even when several
    enables are active simultaneously the driven values agree (p12).
    """
    circuit = Circuit("industry_03", source_lines=source_lines)
    broadcast_in = circuit.input("broadcast_in", bus_width)
    load = circuit.input("load", 1)

    broadcast = circuit.state("broadcast", bus_width)
    circuit.dff_into(broadcast, broadcast_in, enable=load, init_value=0)

    enables: List[Net] = []
    driver_data: List[Net] = []
    drivers: List[Tuple[Net, Net]] = []
    for index in range(num_drivers):
        request = circuit.input("req_%d" % index, 1)
        enable = circuit.buf(request, name="enable_%d" % index)
        circuit.output(enable)
        enables.append(enable)
        driver_data.append(broadcast)
        drivers.append((circuit.tribuf(broadcast, enable), enable))

    bus = circuit.bus(drivers, name="bus")
    circuit.output(bus)
    return TristateBusPorts(circuit=circuit, bus=bus, enables=enables, driver_data=driver_data)


def build_industry_04(
    num_drivers: int = 4, bus_width: int = 8, source_lines: int = 599
) -> TristateBusPorts:
    """Bus contention class 3: enables are environment-constrained inputs.

    The enables come straight from primary inputs; the environment of p13
    constrains them to be one-hot, which is what makes the assertion hold.
    """
    circuit = Circuit("industry_04", source_lines=source_lines)

    enables: List[Net] = []
    driver_data: List[Net] = []
    drivers: List[Tuple[Net, Net]] = []
    for index in range(num_drivers):
        enable = circuit.input("en_%d" % index, 1)
        data = circuit.input("d_%d" % index, bus_width)
        enables.append(enable)
        driver_data.append(data)
        drivers.append((circuit.tribuf(data, enable), enable))

    bus = circuit.bus(drivers, name="bus")
    circuit.output(bus)
    return TristateBusPorts(circuit=circuit, bus=bus, enables=enables, driver_data=driver_data)


# ----------------------------------------------------------------------
# industry_05: small one-hot controller with don't-care states
# ----------------------------------------------------------------------
@dataclass
class Industry05Ports:
    circuit: Circuit
    state: Net
    start: Net
    done: Net


def build_industry_05(source_lines: int = 47) -> Industry05Ports:
    """A three-state one-hot controller (IDLE -> BUSY -> DONE -> IDLE).

    Any non-one-hot encoding of the state register is an internal don't-care;
    p14 asserts those encodings are unreachable.
    """
    circuit = Circuit("industry_05", source_lines=source_lines)
    start = circuit.input("start", 1)
    finish = circuit.input("finish", 1)
    abort = circuit.input("abort", 1)

    state = circuit.state("state", 3, kind=NetKind.CONTROL)
    idle = circuit.bit(state, 0, name="state_idle")
    busy = circuit.bit(state, 1, name="state_busy")
    done = circuit.bit(state, 2, name="state_done")

    go_busy = circuit.and_(idle, start, name="go_busy")
    go_done = circuit.and_(busy, finish, name="go_done")
    # An abort only returns to IDLE when the job is not finishing this cycle,
    # which keeps the next state one-hot even when both inputs pulse at once.
    go_idle = circuit.or_(
        circuit.and_(busy, abort, circuit.not_(finish)), done, name="go_idle"
    )

    next_idle = circuit.or_(circuit.and_(idle, circuit.not_(start)), go_idle, name="next_idle")
    next_busy = circuit.or_(
        go_busy, circuit.and_(busy, circuit.not_(finish), circuit.not_(abort)), name="next_busy"
    )
    next_done = circuit.buf(go_done, name="next_done")

    state_next = circuit.concat(next_done, next_busy, next_idle, name="state_next")
    circuit.dff_into(state, state_next, init_value=1)
    circuit.output(state)

    done_out = circuit.buf(done, name="done_out")
    circuit.output(done_out)

    return Industry05Ports(circuit=circuit, state=state, start=start, done=done_out)


# ----------------------------------------------------------------------
# industry_06: datapath checksum cross-check (solver-certificate heavy)
# ----------------------------------------------------------------------
@dataclass
class Industry06Ports:
    circuit: Circuit
    sum_direct: Net
    sum_cross: Net
    selects: List[Net]


def build_industry_06(
    num_selects: int = 5, data_width: int = 16, source_lines: int = 1083
) -> Industry06Ports:
    """Two checksum units recomputing one sum through different adder trees.

    ``sum_direct = x + y`` and ``sum_cross = x + (y + offset)`` where
    ``offset`` is a sum of control-selected per-stage steps, each 3 or 5.
    Whatever the selects choose, ``sum_cross - sum_direct = offset >= 3``,
    so the sentinel pair ``(sum_direct, sum_cross) = (7, 9)`` (gap 2) is
    unreachable -- but proving any single leaf needs the modular linear
    solver: with ``x`` and ``y`` both free, no word-level implication can
    close the three-equation system, and the refutation rests on the row
    combination ``(x+y) - (y+offset... ) - ...`` that cancels the free
    variables.  This is the certificate-exercising design behind p15.
    """
    circuit = Circuit("industry_06", source_lines=source_lines)
    x = circuit.input("x", data_width)
    y = circuit.input("y", data_width)

    selects: List[Net] = []
    offset: Net = None
    for index in range(num_selects):
        select = circuit.input("sel_%d" % index, 1)
        selects.append(select)
        step = circuit.mux(
            select,
            circuit.const(3, data_width),
            circuit.const(5, data_width),
            name="step_%d" % index,
        )
        offset = step if offset is None else circuit.add(
            offset, step, name="offset_%d" % index
        )

    shifted = circuit.add(y, offset, name="shifted")
    sum_direct = circuit.add(x, y, name="sum_direct")
    sum_cross = circuit.add(x, shifted, name="sum_cross")
    circuit.output(sum_direct)
    circuit.output(sum_cross)
    return Industry06Ports(
        circuit=circuit, sum_direct=sum_direct, sum_cross=sum_cross, selects=selects
    )
