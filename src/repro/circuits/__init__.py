"""The paper's benchmark designs and assertion properties (Table 1 / Table 2).

The four public designs (addr_decoder, token_ring, arbiter, alarm_clock) are
reimplemented from the paper's functional descriptions; the five industrial
designs are synthetic generators reproducing the published structure classes
(wide tri-state buses with one-hot or consensus drivers, internal don't-care
control blocks) at configurable scale.  See DESIGN.md for the substitution
rationale.

:mod:`repro.circuits.properties` defines the 14 property cases p1-p14 with
their environments, initial states and expected verdicts.
"""

from repro.circuits.addr_decoder import build_addr_decoder
from repro.circuits.token_ring import build_token_ring
from repro.circuits.arbiter import build_arbiter
from repro.circuits.alarm_clock import build_alarm_clock
from repro.circuits.industry import (
    build_industry_01,
    build_industry_02,
    build_industry_03,
    build_industry_04,
    build_industry_05,
    build_industry_06,
)
from repro.circuits.properties import (
    PropertyCase,
    all_case_ids,
    build_case,
    all_cases,
    circuit_statistics,
    extended_case_ids,
)

__all__ = [
    "build_addr_decoder",
    "build_token_ring",
    "build_arbiter",
    "build_alarm_clock",
    "build_industry_01",
    "build_industry_02",
    "build_industry_03",
    "build_industry_04",
    "build_industry_05",
    "build_industry_06",
    "PropertyCase",
    "all_case_ids",
    "all_cases",
    "build_case",
    "circuit_statistics",
    "extended_case_ids",
]
