"""The ``addr_decoder`` benchmark: a write-decoded register file.

The design decodes an address into one-hot cell-select lines and writes the
input data into the selected cell when write-enable is asserted.  The paper
checks (p1) that any selected cell can be written successfully and (p2) that
no two address lines are ever selected simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net


@dataclass
class AddrDecoderPorts:
    """Handles to the interesting nets of the generated design."""

    circuit: Circuit
    addr: Net
    data_in: Net
    write_enable: Net
    selects: List[Net]
    cells: List[Net]


def build_addr_decoder(
    num_cells: int = 8, data_width: int = 4, source_lines: int = 52
) -> AddrDecoderPorts:
    """Build the address decoder / register file design.

    Parameters
    ----------
    num_cells:
        Number of memory cells (must be a power of two so that the decode is
        exhaustive, as in the original design).
    data_width:
        Width of each memory cell.
    source_lines:
        Reported HDL line count (Table 1 bookkeeping only).
    """
    if num_cells < 2 or num_cells & (num_cells - 1):
        raise ValueError("num_cells must be a power of two >= 2")
    addr_width = (num_cells - 1).bit_length()

    circuit = Circuit("addr_decoder", source_lines=source_lines)
    addr = circuit.input("addr", addr_width)
    data_in = circuit.input("data_in", data_width)
    write_enable = circuit.input("we", 1)

    selects: List[Net] = []
    cells: List[Net] = []
    for index in range(num_cells):
        select = circuit.eq(addr, index, name="select_%d" % index)
        circuit.output(select)
        selects.append(select)

        cell_write = circuit.and_(select, write_enable, name="write_%d" % index)
        cell = circuit.state("cell_%d" % index, data_width)
        circuit.dff_into(cell, data_in, enable=cell_write, init_value=0)
        circuit.output(cell)
        cells.append(cell)

    return AddrDecoderPorts(
        circuit=circuit,
        addr=addr,
        data_in=data_in,
        write_enable=write_enable,
        selects=selects,
        cells=cells,
    )
