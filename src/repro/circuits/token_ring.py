"""The ``token_ring`` benchmark: a rotating-token shared bus.

A one-hot token register rotates by one position every clock cycle; the
client holding the token drives the shared data bus through a tri-state
driver.  The paper checks (p3) that the bus-select signals are one-hot and
(p4) that every client is granted the bus after waiting a bounded number of
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net, NetKind


@dataclass
class TokenRingPorts:
    """Handles to the interesting nets of the generated design."""

    circuit: Circuit
    grants: List[Net]
    requests: List[Net]
    client_data: List[Net]
    bus: Net
    token: Net


def build_token_ring(
    num_clients: int = 6, data_width: int = 8, source_lines: int = 157
) -> TokenRingPorts:
    """Build the token-ring bus design with ``num_clients`` stations."""
    if num_clients < 2:
        raise ValueError("token ring needs at least two clients")

    circuit = Circuit("token_ring", source_lines=source_lines)

    requests: List[Net] = []
    client_data: List[Net] = []
    for index in range(num_clients):
        requests.append(circuit.input("req_%d" % index, 1))
        client_data.append(circuit.input("data_%d" % index, data_width))

    # One-hot token register, rotated left by one position every cycle.
    token = circuit.state("token", num_clients, kind=NetKind.CONTROL)
    low_part = circuit.slice(token, num_clients - 2, 0)
    high_bit = circuit.slice(token, num_clients - 1, num_clients - 1)
    rotated = circuit.concat(low_part, high_bit, name="token_rotated")
    circuit.dff_into(token, rotated, init_value=1)
    circuit.output(token)

    grants: List[Net] = []
    drivers = []
    for index in range(num_clients):
        grant = circuit.bit(token, index, name="grant_%d" % index)
        circuit.output(grant)
        grants.append(grant)
        driver_out = circuit.tribuf(client_data[index], grant, name="drive_%d" % index)
        drivers.append((driver_out, grant))

    bus = circuit.bus(drivers, name="bus")
    circuit.output(bus)

    return TokenRingPorts(
        circuit=circuit,
        grants=grants,
        requests=requests,
        client_data=client_data,
        bus=bus,
        token=token,
    )
