"""The paper's fourteen property cases (p1-p14) ready to run.

Each :class:`PropertyCase` bundles a circuit builder, the property, its
environment / initial-state configuration, the unrolling bound and the
verdict the paper reports (every assertion holds; every witness exists).
``build_case`` instantiates the circuit fresh so cases never share state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.checker.result import CheckStatus
from repro.circuits.addr_decoder import build_addr_decoder
from repro.circuits.alarm_clock import build_alarm_clock
from repro.circuits.arbiter import build_arbiter
from repro.circuits.industry import (
    build_industry_01,
    build_industry_02,
    build_industry_03,
    build_industry_04,
    build_industry_05,
    build_industry_06,
)
from repro.circuits.token_ring import build_token_ring
from repro.netlist.circuit import Circuit, CircuitStats
from repro.properties.environment import Environment
from repro.properties.spec import (
    And,
    Assertion,
    AtMostOneHot,
    Delayed,
    Implies,
    Not,
    OneHot,
    Property,
    Signal,
    Witness,
)


@dataclass
class PreparedCase:
    """A fully instantiated property case ready for the checker."""

    case_id: str
    design: str
    circuit: Circuit
    prop: Property
    environment: Environment
    initial_state: Optional[Dict[str, int]]
    max_frames: int
    expected_status: CheckStatus
    description: str


@dataclass
class PropertyCase:
    """Description of one paper property (builder + expected verdict)."""

    case_id: str
    design: str
    description: str
    expected_status: CheckStatus
    max_frames: int
    builder: Callable[[], PreparedCase] = field(repr=False, default=None)

    def build(self) -> PreparedCase:
        """Instantiate the circuit, property and environment for this case."""
        return self.builder()


# ----------------------------------------------------------------------
# Case builders
# ----------------------------------------------------------------------
def _case_p1() -> PreparedCase:
    ports = build_addr_decoder()
    target_cell, target_value = 3, 9
    prop = Witness(
        "p1",
        Signal("cell_%d" % target_cell) == target_value,
        description="a selected memory cell can be written with a chosen value",
    )
    return PreparedCase(
        "p1", "addr_decoder", ports.circuit, prop, Environment(), None, 4,
        CheckStatus.WITNESS_FOUND, prop.description,
    )


def _case_p2() -> PreparedCase:
    ports = build_addr_decoder()
    selects = [Signal(net.name) for net in ports.selects]
    prop = Assertion(
        "p2",
        AtMostOneHot(*selects),
        description="no two address select lines are active simultaneously",
    )
    return PreparedCase(
        "p2", "addr_decoder", ports.circuit, prop, Environment(), None, 3,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p3() -> PreparedCase:
    ports = build_token_ring()
    grants = [Signal(net.name) for net in ports.grants]
    prop = Assertion("p3", OneHot(*grants), description="bus-select signals are one-hot")
    return PreparedCase(
        "p3", "token_ring", ports.circuit, prop, Environment(), None, 4,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p4() -> PreparedCase:
    ports = build_token_ring()
    last = len(ports.grants) - 1
    prop = Witness(
        "p4",
        Signal(ports.grants[last].name) == 1,
        description="the last client is granted the bus after a bounded wait",
    )
    return PreparedCase(
        "p4", "token_ring", ports.circuit, prop, Environment(), None,
        len(ports.grants) + 1, CheckStatus.WITNESS_FOUND, prop.description,
    )


def _case_p5() -> PreparedCase:
    ports = build_arbiter()
    grants = [Signal(net.name) for net in ports.grants]
    prop = Assertion("p5", OneHot(*grants), description="arbiter grants are one-hot")
    return PreparedCase(
        "p5", "arbiter", ports.circuit, prop, Environment(), None, 4,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p6() -> PreparedCase:
    ports = build_arbiter()
    target = len(ports.grants) - 1
    prop = Witness(
        "p6",
        And(Signal(ports.grants[target].name) == 1, Signal("req_%d" % target) == 1),
        description="a waiting client is eventually granted the bus",
    )
    return PreparedCase(
        "p6", "arbiter", ports.circuit, prop, Environment(), None,
        len(ports.grants) + 2, CheckStatus.WITNESS_FOUND, prop.description,
    )


def _case_p7() -> PreparedCase:
    ports = build_alarm_clock(free_initial_state=True)
    environment = Environment()
    # Any *valid* display state is allowed as the starting state.
    environment.assume(And(Signal("hour") >= 1, Signal("hour") <= 12))
    environment.assume(Signal("minute") <= 59)
    passed_1159 = And(
        Signal("hour") == 11,
        Signal("minute") == 59,
        Signal("tick") == 1,
        Signal("set_time") == 0,
    )
    prop = Assertion(
        "p7",
        Implies(Delayed(passed_1159), And(Signal("hour") == 12, Signal("minute") == 0)),
        description="after the clock passes 11:59 it resets to 12:00",
    )
    return PreparedCase(
        "p7", "alarm_clock", ports.circuit, prop, environment, None, 3,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p8() -> PreparedCase:
    ports = build_alarm_clock()
    prop = Witness(
        "p8",
        Signal("hour") == 2,
        description="the hour display reaches 2 after power-on",
    )
    return PreparedCase(
        "p8", "alarm_clock", ports.circuit, prop, Environment(), None, 5,
        CheckStatus.WITNESS_FOUND, prop.description,
    )


def _case_p9() -> PreparedCase:
    ports = build_alarm_clock()
    prop = Assertion(
        "p9",
        And(Signal("hour") >= 1, Signal("hour") <= 12),
        description="the hour display can never show 13 (or any invalid value)",
    )
    return PreparedCase(
        "p9", "alarm_clock", ports.circuit, prop, Environment(), None, 5,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p10() -> PreparedCase:
    ports = build_industry_01()
    prop = Assertion(
        "p10",
        Signal("mode") <= 4,
        description="the internal don't-care mode encodings are unreachable",
    )
    return PreparedCase(
        "p10", "industry_01", ports.circuit, prop, Environment(), None, 4,
        CheckStatus.HOLDS, prop.description,
    )


def _contention_expr(enables: List[str], data: List[str]):
    """No two enabled drivers present different data values."""
    terms = []
    for i in range(len(enables)):
        for j in range(i + 1, len(enables)):
            terms.append(
                Not(
                    And(
                        Signal(enables[i]) == 1,
                        Signal(enables[j]) == 1,
                        Signal(data[i]) != Signal(data[j]),
                    )
                )
            )
    return terms[0] if len(terms) == 1 else And(*terms)


def _case_p11() -> PreparedCase:
    ports = build_industry_02()
    prop = Assertion(
        "p11",
        _contention_expr([n.name for n in ports.enables], [n.name for n in ports.driver_data]),
        description="no bus contention: decoded enables are one-hot",
    )
    return PreparedCase(
        "p11", "industry_02", ports.circuit, prop, Environment(), None, 3,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p12() -> PreparedCase:
    ports = build_industry_03()
    prop = Assertion(
        "p12",
        _contention_expr([n.name for n in ports.enables], [n.name for n in ports.driver_data]),
        description="no bus contention: overlapping drivers carry consensus data",
    )
    return PreparedCase(
        "p12", "industry_03", ports.circuit, prop, Environment(), None, 3,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p13() -> PreparedCase:
    ports = build_industry_04()
    environment = Environment()
    environment.one_hot([net.name for net in ports.enables])
    prop = Assertion(
        "p13",
        _contention_expr([n.name for n in ports.enables], [n.name for n in ports.driver_data]),
        description="no bus contention under the one-hot enable environment",
    )
    return PreparedCase(
        "p13", "industry_04", ports.circuit, prop, environment, None, 3,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p14() -> PreparedCase:
    ports = build_industry_05()
    state_bits = [Signal("state_idle"), Signal("state_busy"), Signal("state_done")]
    prop = Assertion(
        "p14",
        OneHot(*state_bits),
        description="the controller's non-one-hot (don't-care) states are unreachable",
    )
    return PreparedCase(
        "p14", "industry_05", ports.circuit, prop, Environment(), None, 5,
        CheckStatus.HOLDS, prop.description,
    )


def _case_p15() -> PreparedCase:
    ports = build_industry_06()
    prop = Assertion(
        "p15",
        Not(
            And(
                Signal(ports.sum_direct.name) == 7,
                Signal(ports.sum_cross.name) == 9,
            )
        ),
        description="the cross-checked checksums never report the (7, 9) sentinel pair",
    )
    return PreparedCase(
        "p15", "industry_06", ports.circuit, prop, Environment(), None, 3,
        CheckStatus.HOLDS, prop.description,
    )


_CASE_BUILDERS: Dict[str, Tuple[str, str, CheckStatus, int, Callable[[], PreparedCase]]] = {
    "p1": ("addr_decoder", "write a selected memory cell", CheckStatus.WITNESS_FOUND, 4, _case_p1),
    "p2": ("addr_decoder", "address selects never overlap", CheckStatus.HOLDS, 3, _case_p2),
    "p3": ("token_ring", "bus selects are one-hot", CheckStatus.HOLDS, 4, _case_p3),
    "p4": ("token_ring", "every client gets the bus", CheckStatus.WITNESS_FOUND, 7, _case_p4),
    "p5": ("arbiter", "grants are one-hot", CheckStatus.HOLDS, 4, _case_p5),
    "p6": ("arbiter", "a waiting client is granted", CheckStatus.WITNESS_FOUND, 6, _case_p6),
    "p7": ("alarm_clock", "11:59 rolls over to 12:00", CheckStatus.HOLDS, 3, _case_p7),
    "p8": ("alarm_clock", "hour display reaches 2", CheckStatus.WITNESS_FOUND, 5, _case_p8),
    "p9": ("alarm_clock", "hour never shows 13", CheckStatus.HOLDS, 5, _case_p9),
    "p10": ("industry_01", "don't-care modes unreachable", CheckStatus.HOLDS, 4, _case_p10),
    "p11": ("industry_02", "no bus contention (decoded)", CheckStatus.HOLDS, 3, _case_p11),
    "p12": ("industry_03", "no bus contention (consensus)", CheckStatus.HOLDS, 3, _case_p12),
    "p13": ("industry_04", "no bus contention (one-hot env)", CheckStatus.HOLDS, 3, _case_p13),
    "p14": ("industry_05", "don't-care states unreachable", CheckStatus.HOLDS, 5, _case_p14),
}

#: cases beyond the paper's fourteen -- workloads grown by this repo.
#: ``p15`` is the datapath-certificate sweep: every justification leaf is
#: refuted by the modular solver, so it exercises infeasibility-certificate
#: learning (and is the workload of the datapath rows in bench_learning).
_EXTENDED_CASE_BUILDERS: Dict[str, Tuple[str, str, CheckStatus, int, Callable[[], PreparedCase]]] = {
    "p15": ("industry_06", "checksum sentinel pair unreachable", CheckStatus.HOLDS, 3, _case_p15),
}


def all_case_ids() -> List[str]:
    """The fourteen property identifiers in paper order."""
    return list(_CASE_BUILDERS.keys())


def extended_case_ids() -> List[str]:
    """Identifiers of the repo's extra (non-paper) property cases."""
    return list(_EXTENDED_CASE_BUILDERS.keys())


def all_cases() -> List[PropertyCase]:
    """Descriptors (without instantiating circuits) for all fourteen cases."""
    cases = []
    for case_id, (design, description, expected, frames, builder) in _CASE_BUILDERS.items():
        cases.append(
            PropertyCase(
                case_id=case_id,
                design=design,
                description=description,
                expected_status=expected,
                max_frames=frames,
                builder=builder,
            )
        )
    return cases


def build_case(case_id: str) -> PreparedCase:
    """Instantiate one property case (``"p1"`` .. ``"p14"``, or extended)."""
    entry = _CASE_BUILDERS.get(case_id)
    if entry is None:
        entry = _EXTENDED_CASE_BUILDERS.get(case_id)
    if entry is None:
        raise KeyError(
            "unknown property case %r (valid: p1..p14 and extended %s)"
            % (case_id, ", ".join(_EXTENDED_CASE_BUILDERS))
        )
    return entry[4]()


def circuit_statistics() -> List[CircuitStats]:
    """Statistics of every benchmark design (the Table 1 reproduction)."""
    builders = [
        build_addr_decoder,
        build_token_ring,
        build_arbiter,
        build_alarm_clock,
        build_industry_01,
        build_industry_02,
        build_industry_03,
        build_industry_04,
        build_industry_05,
    ]
    return [builder().circuit.stats() for builder in builders]
