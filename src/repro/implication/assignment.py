"""Three-valued assignment store with decision levels and a restore trail.

Unlike bit-level ATPG, where a backtracked signal simply returns to ``x``, a
word-level signal may have been refined several times before the decision
being undone; the store therefore records, per decision level, the previous
cube of every signal it changes and restores those cubes on backtrack
(Section 3.1, last paragraph).

Every trail entry also carries the *reason* of the refinement: the
implication node that derived it, or a :class:`RootCause` describing an
external assignment (a search decision, an environment constraint, the
property goal, an initial-state value...).  Walking the trail backward from
a conflict therefore recovers the set of external facts that produced it --
the basis of the conflict lifting in :mod:`repro.atpg.justify`.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterator, List, Optional, Tuple

from repro.bitvector import BV3, BV3Conflict

#: Opaque savepoint handle: (trail length, number of open decision levels).
Savepoint = Tuple[int, int]


class RootCause:
    """External (non-implied) cause of an assignment.

    ``kind`` classifies the origin so conflict analysis can decide whether a
    learned fact is reusable:

    * ``"decision"`` -- a branch-and-bound decision (becomes a cube literal);
    * ``"env"`` -- an environment constraint (asserted in every frame of
      every check sharing the model, so it never needs to be recorded);
    * ``"goal"`` -- the property goal at the target frame (facts depending
      on it are only reusable for the same property, re-based to the new
      target);
    * ``"base"`` -- part of the base model (initial state values);
    * ``"state"`` -- an illegal-state cube literal asserted during the
      conflict re-check guard (see the checker's candidate verification);
    * ``"solver"`` / ``"completion"`` -- datapath solver choices (their
      failures are heuristic, so cones containing them are never learned
      as proofs).  Note the asymmetry with solver *certificates*: a proved
      :class:`~repro.modsolver.result.Infeasible` answer never assigns
      anything, so no ``"solver"`` root enters its cone -- the certificate
      is seeded from the clashing keys directly and analysed like any
      implication conflict.
    """

    __slots__ = ("kind", "key", "cube")

    def __init__(self, kind: str, key: Optional[Hashable] = None, cube: Optional[BV3] = None):
        self.kind = kind
        self.key = key
        self.cube = cube

    def __repr__(self) -> str:
        return "RootCause(%s, %r)" % (self.kind, self.key)


class ImplicationConflict(Exception):
    """Raised when an implication contradicts the current assignment.

    Also constructed *synthetically* (never raised) by the justifier to
    seed conflict analysis with the key core of a datapath-solver
    infeasibility certificate -- the analysis only consumes
    :attr:`conflict_keys`, so a refutation found outside the implication
    engine is traced exactly like one found inside it.
    """

    def __init__(
        self,
        message: str,
        key: Optional[Hashable] = None,
        keys: Optional[Tuple[Hashable, ...]] = None,
    ):
        super().__init__(message)
        self.key = key
        #: keys of the node whose rule detected the contradiction (seeds of
        #: the antecedent walk); falls back to ``(key,)`` when the conflict
        #: surfaced in a direct cube intersection.
        self.keys = keys

    @property
    def conflict_keys(self) -> Tuple[Hashable, ...]:
        """Keys seeding the backward antecedent walk."""
        if self.keys is not None:
            return tuple(self.keys)
        if self.key is not None:
            return (self.key,)
        return ()


class Assignment:
    """Maps variable keys to three-valued cubes, with chronological backtracking.

    A *key* is any hashable object; the unrolled model uses ``(net, frame)``
    tuples.  The width of a key is fixed the first time it is assigned or
    registered via :meth:`register`.

    Besides plain chronological decision levels, the store supports
    :meth:`savepoint` / :meth:`rollback_to`: a savepoint may be taken while
    levels are already open, and rolling back to it also closes every level
    opened after it.  The incremental checker uses this to retract a whole
    per-bound goal (including the search's decision stack) in one step.

    ``on_restore`` (when set) is invoked with every key whose cube is
    restored by :meth:`pop_level` / :meth:`rollback_to`; the implication
    engine uses it to keep the unjustified-node frontier in sync with
    backtracking at O(changed keys) cost.
    """

    __slots__ = ("_values", "_widths", "_trail", "_level_marks", "on_restore")

    def __init__(self):
        self._values: Dict[Hashable, BV3] = {}
        self._widths: Dict[Hashable, int] = {}
        # Each trail entry is (key, previous cube or None when first
        # assigned, reason or None).
        self._trail: List[Tuple[Hashable, Optional[BV3], Optional[object]]] = []
        self._level_marks: List[int] = []
        #: optional callback invoked with each restored key on backtrack.
        self.on_restore: Optional[Callable[[Hashable], None]] = None

    # ------------------------------------------------------------------
    def register(self, key: Hashable, width: int) -> None:
        """Declare a key's width without assigning it a value."""
        existing = self._widths.get(key)
        if existing is not None and existing != width:
            raise ValueError("key %r re-registered with width %d (was %d)" % (key, width, existing))
        self._widths[key] = width

    def width(self, key: Hashable) -> int:
        """Width of a registered key."""
        return self._widths[key]

    def get(self, key: Hashable) -> BV3:
        """Current cube of ``key`` (fully unknown if never assigned)."""
        value = self._values.get(key)
        if value is not None:
            return value
        width = self._widths.get(key)
        if width is None:
            raise KeyError("key %r was never registered" % (key,))
        return BV3.unknown(width)

    def is_assigned(self, key: Hashable) -> bool:
        """True when at least one bit of ``key`` is known."""
        value = self._values.get(key)
        return value is not None and not value.is_fully_unknown()

    def known_keys(self) -> Iterator[Hashable]:
        """Keys with at least one known bit."""
        for key, value in self._values.items():
            if not value.is_fully_unknown():
                yield key

    def snapshot(self) -> Dict[Hashable, BV3]:
        """A copy of all current (partially) known values."""
        return dict(self._values)

    # ------------------------------------------------------------------
    def assign(self, key: Hashable, cube: BV3, reason: Optional[object] = None) -> bool:
        """Refine ``key`` with ``cube`` (cube intersection).

        Returns ``True`` when new information was added, ``False`` when the
        cube was already implied.  Raises :class:`ImplicationConflict` when
        the refinement contradicts the current value.  ``reason`` (an
        implication node or a :class:`RootCause`) is recorded on the trail
        for conflict analysis.
        """
        width = self._widths.get(key)
        if width is None:
            self._widths[key] = cube.width
        elif width != cube.width:
            raise ValueError(
                "cube width %d does not match key %r width %d" % (cube.width, key, width)
            )
        current = self._values.get(key)
        if current is None:
            if cube.is_fully_unknown():
                return False
            self._trail.append((key, None, reason))
            self._values[key] = cube
            return True
        try:
            refined = current.intersect(cube)
        except BV3Conflict as exc:
            raise ImplicationConflict(
                "conflict on %r: %s vs %s" % (key, current, cube), key=key
            ) from exc
        if refined == current:
            return False
        self._trail.append((key, current, reason))
        self._values[key] = refined
        return True

    # ------------------------------------------------------------------
    # Conflict analysis support
    # ------------------------------------------------------------------
    @property
    def trail_length(self) -> int:
        """Current trail position (usable as a walk boundary)."""
        return len(self._trail)

    def trail_entry(self, index: int) -> Tuple[Hashable, Optional[BV3], Optional[object]]:
        """The (key, previous cube, reason) record at trail position ``index``."""
        return self._trail[index]

    # ------------------------------------------------------------------
    # Decision levels
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        """Current decision depth (0 = no decisions made)."""
        return len(self._level_marks)

    def push_level(self) -> None:
        """Open a new decision level."""
        self._level_marks.append(len(self._trail))

    def pop_level(self) -> None:
        """Undo every refinement made since the last :meth:`push_level`.

        Signals return to their *previous partially implied* cubes, not to
        fully unknown.
        """
        if not self._level_marks:
            raise RuntimeError("pop_level called with no open decision level")
        self._restore_to(self._level_marks.pop())

    def pop_all_levels(self) -> None:
        """Return to decision level 0."""
        while self._level_marks:
            self.pop_level()

    def _restore_to(self, mark: int) -> None:
        on_restore = self.on_restore
        while len(self._trail) > mark:
            key, previous, _reason = self._trail.pop()
            if previous is None:
                del self._values[key]
            else:
                self._values[key] = previous
            if on_restore is not None:
                on_restore(key)

    # ------------------------------------------------------------------
    # Savepoints (retraction across decision levels)
    # ------------------------------------------------------------------
    def savepoint(self) -> Savepoint:
        """Capture the current trail position and decision depth.

        Unlike :meth:`push_level`, a savepoint can be taken *below*
        already-open decision levels and rolled back to while further levels
        are open: :meth:`rollback_to` closes every level opened after the
        savepoint before restoring the trail.
        """
        return (len(self._trail), len(self._level_marks))

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Undo every refinement (and close every level) after ``savepoint``."""
        trail_mark, level_depth = savepoint
        if trail_mark > len(self._trail) or level_depth > len(self._level_marks):
            raise RuntimeError(
                "stale savepoint %r (trail=%d, levels=%d)"
                % (savepoint, len(self._trail), len(self._level_marks))
            )
        del self._level_marks[level_depth:]
        self._restore_to(trail_mark)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return "Assignment(%d assigned, level=%d)" % (len(self._values), self.decision_level)
