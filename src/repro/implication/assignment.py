"""Three-valued assignment store with decision levels and a restore trail.

Unlike bit-level ATPG, where a backtracked signal simply returns to ``x``, a
word-level signal may have been refined several times before the decision
being undone; the store therefore records, per decision level, the previous
cube of every signal it changes and restores those cubes on backtrack
(Section 3.1, last paragraph).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.bitvector import BV3, BV3Conflict

#: Opaque savepoint handle: (trail length, number of open decision levels).
Savepoint = Tuple[int, int]


class ImplicationConflict(Exception):
    """Raised when an implication contradicts the current assignment."""

    def __init__(self, message: str, key: Optional[Hashable] = None):
        super().__init__(message)
        self.key = key


class Assignment:
    """Maps variable keys to three-valued cubes, with chronological backtracking.

    A *key* is any hashable object; the unrolled model uses ``(net, frame)``
    tuples.  The width of a key is fixed the first time it is assigned or
    registered via :meth:`register`.

    Besides plain chronological decision levels, the store supports
    :meth:`savepoint` / :meth:`rollback_to`: a savepoint may be taken while
    levels are already open, and rolling back to it also closes every level
    opened after it.  The incremental checker uses this to retract a whole
    per-bound goal (including the search's decision stack) in one step.
    """

    __slots__ = ("_values", "_widths", "_trail", "_level_marks")

    def __init__(self):
        self._values: Dict[Hashable, BV3] = {}
        self._widths: Dict[Hashable, int] = {}
        # Each trail entry is (key, previous cube or None when first assigned).
        self._trail: List[Tuple[Hashable, Optional[BV3]]] = []
        self._level_marks: List[int] = []

    # ------------------------------------------------------------------
    def register(self, key: Hashable, width: int) -> None:
        """Declare a key's width without assigning it a value."""
        existing = self._widths.get(key)
        if existing is not None and existing != width:
            raise ValueError("key %r re-registered with width %d (was %d)" % (key, width, existing))
        self._widths[key] = width

    def width(self, key: Hashable) -> int:
        """Width of a registered key."""
        return self._widths[key]

    def get(self, key: Hashable) -> BV3:
        """Current cube of ``key`` (fully unknown if never assigned)."""
        value = self._values.get(key)
        if value is not None:
            return value
        width = self._widths.get(key)
        if width is None:
            raise KeyError("key %r was never registered" % (key,))
        return BV3.unknown(width)

    def is_assigned(self, key: Hashable) -> bool:
        """True when at least one bit of ``key`` is known."""
        value = self._values.get(key)
        return value is not None and not value.is_fully_unknown()

    def known_keys(self) -> Iterator[Hashable]:
        """Keys with at least one known bit."""
        for key, value in self._values.items():
            if not value.is_fully_unknown():
                yield key

    def snapshot(self) -> Dict[Hashable, BV3]:
        """A copy of all current (partially) known values."""
        return dict(self._values)

    # ------------------------------------------------------------------
    def assign(self, key: Hashable, cube: BV3) -> bool:
        """Refine ``key`` with ``cube`` (cube intersection).

        Returns ``True`` when new information was added, ``False`` when the
        cube was already implied.  Raises :class:`ImplicationConflict` when
        the refinement contradicts the current value.
        """
        width = self._widths.get(key)
        if width is None:
            self._widths[key] = cube.width
        elif width != cube.width:
            raise ValueError(
                "cube width %d does not match key %r width %d" % (cube.width, key, width)
            )
        current = self._values.get(key)
        if current is None:
            if cube.is_fully_unknown():
                return False
            self._trail.append((key, None))
            self._values[key] = cube
            return True
        try:
            refined = current.intersect(cube)
        except BV3Conflict as exc:
            raise ImplicationConflict(
                "conflict on %r: %s vs %s" % (key, current, cube), key=key
            ) from exc
        if refined == current:
            return False
        self._trail.append((key, current))
        self._values[key] = refined
        return True

    # ------------------------------------------------------------------
    # Decision levels
    # ------------------------------------------------------------------
    @property
    def decision_level(self) -> int:
        """Current decision depth (0 = no decisions made)."""
        return len(self._level_marks)

    def push_level(self) -> None:
        """Open a new decision level."""
        self._level_marks.append(len(self._trail))

    def pop_level(self) -> None:
        """Undo every refinement made since the last :meth:`push_level`.

        Signals return to their *previous partially implied* cubes, not to
        fully unknown.
        """
        if not self._level_marks:
            raise RuntimeError("pop_level called with no open decision level")
        mark = self._level_marks.pop()
        while len(self._trail) > mark:
            key, previous = self._trail.pop()
            if previous is None:
                del self._values[key]
            else:
                self._values[key] = previous

    def pop_all_levels(self) -> None:
        """Return to decision level 0."""
        while self._level_marks:
            self.pop_level()

    # ------------------------------------------------------------------
    # Savepoints (retraction across decision levels)
    # ------------------------------------------------------------------
    def savepoint(self) -> Savepoint:
        """Capture the current trail position and decision depth.

        Unlike :meth:`push_level`, a savepoint can be taken *below*
        already-open decision levels and rolled back to while further levels
        are open: :meth:`rollback_to` closes every level opened after the
        savepoint before restoring the trail.
        """
        return (len(self._trail), len(self._level_marks))

    def rollback_to(self, savepoint: Savepoint) -> None:
        """Undo every refinement (and close every level) after ``savepoint``."""
        trail_mark, level_depth = savepoint
        if trail_mark > len(self._trail) or level_depth > len(self._level_marks):
            raise RuntimeError(
                "stale savepoint %r (trail=%d, levels=%d)"
                % (savepoint, len(self._trail), len(self._level_marks))
            )
        del self._level_marks[level_depth:]
        while len(self._trail) > trail_mark:
            key, previous = self._trail.pop()
            if previous is None:
                del self._values[key]
            else:
                self._values[key] = previous

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        return "Assignment(%d assigned, level=%d)" % (len(self._values), self.decision_level)
