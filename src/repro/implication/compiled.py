"""Compiled slot-indexed implication kernel.

This is the check-loop counterpart of :mod:`repro.sim.compile`: the same
network of :class:`~repro.implication.engine.ImplicationNode` objects, but
*lowered once* onto flat slot-indexed arrays instead of dict-of-objects
traversal.  Interning happens while the unrolled model is built (and again
incrementally on ``extend_to()``): every variable key gets a dense integer
*slot*, and from then on the hot loop never hashes a ``(net, frame)`` tuple
or constructs a :class:`~repro.bitvector.BV3` --

* the ternary value store is a pair of parallel Python-int lanes
  (``known[slot]`` / ``value[slot]``), refined with the same two bitwise
  operations :meth:`BV3.intersect` performs, minus the object churn;
* watcher lists live in a list-of-lists indexed by slot;
* per-node rule memos are keyed by the flat int signature of the node's
  lanes, which is bijective with the tuple-of-cubes key the interpreted
  engine uses (the slot widths are fixed), so hit/miss/eviction streams --
  and therefore all reported counters -- are *bit-identical*;
* the restore trail, savepoints and the dirty-set frontier operate on slot
  indices, translating back to keys only on the cold paths (conflict
  analysis, trace extraction, diagnostics).

Rules themselves are still the specialised closures built per gate by
:func:`repro.implication.rules.build_rule`; they only run on memo misses
(a few percent of evaluations on search-heavy sweeps), where cubes are
materialised, the rule is applied, and the refinement is re-encoded as int
pairs for cheap replay on every later hit.

The interpreted :class:`~repro.implication.engine.ImplicationEngine` remains
the soundness oracle: both engines expose the same key-based API, make the
same assignments in the same order, raise the same conflicts and report the
same statistics, which ``tests/test_compiled_justify.py`` pins A/B.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bitvector import BV3, BV3Conflict
from repro.implication.assignment import (
    Assignment,
    ImplicationConflict,
    RootCause,
    Savepoint,
)
from repro.implication.engine import (
    ConflictAnalysis,
    ImplicationEngine,
    ImplicationNode,
)

__all__ = ["CompiledAssignment", "CompiledEngine", "compile_model"]


class CompiledAssignment(Assignment):
    """Slot-indexed ternary assignment store.

    Keys are interned to dense slots on first sight; the cube of slot ``s``
    is the pair ``(_known[s], _value[s])`` with the :class:`BV3` invariant
    ``value & ~known == 0`` maintained throughout.  The public key-based
    API (``get`` / ``assign`` / ``width`` / ``is_assigned`` / trail
    introspection) behaves exactly like the base class -- including error
    messages -- so every layer written against :class:`Assignment` runs
    unchanged on top of the compiled lanes.

    Trail entries are ``(slot, previous_known, previous_value, reason)``
    with ``previous_known == -1`` marking a first assignment (the base
    class stores ``None``); :meth:`trail_entry` translates back to the
    base-class shape.  ``on_restore`` is invoked with the restored *slot*,
    not the key -- the compiled engine is the only intended subscriber.
    """

    __slots__ = (
        "_slot_of",
        "_key_of",
        "_known",
        "_value",
        "_slot_widths",
        "_unknowns",
        "_live",
    )

    def __init__(self):
        super().__init__()
        #: key -> slot interning table (hashing happens only at the edges).
        self._slot_of: Dict[Hashable, int] = {}
        self._key_of: List[Hashable] = []
        #: parallel ternary lanes: known-bit mask and value bits per slot.
        self._known: List[int] = []
        self._value: List[int] = []
        #: declared width per slot (``None`` until registered / assigned).
        self._slot_widths: List[Optional[int]] = []
        #: shared fully-unknown cube per slot (lazy), so ``get`` on an
        #: unassigned slot allocates once, not per call.
        self._unknowns: List[Optional[BV3]] = []
        #: slots with at least one known bit, in base-class ``_values``
        #: insertion order (dict-as-ordered-set), so ``known_keys`` /
        #: ``snapshot`` / ``len`` stay bit-identical to the oracle.
        self._live: Dict[int, None] = {}

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    def slot_of(self, key: Hashable) -> int:
        """The slot interned for ``key`` (interning it if new)."""
        slot = self._slot_of.get(key)
        if slot is None:
            slot = len(self._key_of)
            self._slot_of[key] = slot
            self._key_of.append(key)
            self._known.append(0)
            self._value.append(0)
            self._slot_widths.append(None)
            self._unknowns.append(None)
        return slot

    def key_of(self, slot: int) -> Hashable:
        """The key interned at ``slot``."""
        return self._key_of[slot]

    @property
    def num_slots(self) -> int:
        return len(self._key_of)

    # ------------------------------------------------------------------
    # Base API (key-addressed)
    # ------------------------------------------------------------------
    def register(self, key: Hashable, width: int) -> int:
        slot = self.slot_of(key)
        existing = self._slot_widths[slot]
        if existing is not None and existing != width:
            raise ValueError(
                "key %r re-registered with width %d (was %d)" % (key, width, existing)
            )
        self._slot_widths[slot] = width
        return slot

    def width(self, key: Hashable) -> int:
        slot = self._slot_of.get(key)
        if slot is not None:
            width = self._slot_widths[slot]
            if width is not None:
                return width
        raise KeyError(key)

    def get(self, key: Hashable) -> BV3:
        slot = self._slot_of.get(key)
        if slot is None:
            raise KeyError("key %r was never registered" % (key,))
        return self.get_slot(slot)

    def get_slot(self, slot: int) -> BV3:
        """Materialise the cube of ``slot`` as a :class:`BV3`."""
        known = self._known[slot]
        if known:
            return BV3(self._slot_widths[slot], self._value[slot], known)
        unknown = self._unknowns[slot]
        if unknown is None:
            width = self._slot_widths[slot]
            if width is None:
                raise KeyError(
                    "key %r was never registered" % (self._key_of[slot],)
                )
            unknown = self._unknowns[slot] = BV3.unknown(width)
        return unknown

    def unknown_slot(self, slot: int) -> BV3:
        """The shared fully-unknown cube for ``slot``."""
        unknown = self._unknowns[slot]
        if unknown is None:
            unknown = self._unknowns[slot] = BV3.unknown(self._slot_widths[slot])
        return unknown

    def is_assigned(self, key: Hashable) -> bool:
        slot = self._slot_of.get(key)
        return slot is not None and self._known[slot] != 0

    def known_keys(self):
        key_of = self._key_of
        for slot in self._live:
            yield key_of[slot]

    def snapshot(self) -> Dict[Hashable, BV3]:
        key_of = self._key_of
        return {key_of[slot]: self.get_slot(slot) for slot in self._live}

    def assign(self, key: Hashable, cube: BV3, reason: Optional[object] = None) -> bool:
        return self.assign_slot(
            self.slot_of(key), cube.width, cube.value, cube.known, reason
        )

    # ------------------------------------------------------------------
    # Slot-addressed hot path
    # ------------------------------------------------------------------
    def assign_slot(
        self,
        slot: int,
        width: int,
        value: int,
        known: int,
        reason: Optional[object] = None,
    ) -> bool:
        """Refine ``slot`` with the int-encoded cube ``(known, value)``.

        Same semantics (and error messages) as :meth:`Assignment.assign`,
        expressed as the two bitwise operations :meth:`BV3.intersect`
        performs: conflict iff the cubes disagree on a mutually known bit,
        refinement is the bitwise union of knowledge.
        """
        slot_width = self._slot_widths[slot]
        if slot_width is None:
            self._slot_widths[slot] = width
        elif slot_width != width:
            raise ValueError(
                "cube width %d does not match key %r width %d"
                % (width, self._key_of[slot], slot_width)
            )
        current_known = self._known[slot]
        if current_known == 0:
            if known == 0:
                return False
            self._trail.append((slot, -1, 0, reason))
            self._known[slot] = known
            self._value[slot] = value
            self._live[slot] = None
            return True
        current_value = self._value[slot]
        if (current_value ^ value) & current_known & known:
            key = self._key_of[slot]
            raise ImplicationConflict(
                "conflict on %r: %s vs %s"
                % (
                    key,
                    BV3(self._slot_widths[slot], current_value, current_known),
                    BV3(self._slot_widths[slot], value, known),
                ),
                key=key,
            )
        refined_known = current_known | known
        if refined_known == current_known:
            return False
        self._trail.append((slot, current_known, current_value, reason))
        self._known[slot] = refined_known
        self._value[slot] = current_value | value
        return True

    # ------------------------------------------------------------------
    # Trail introspection (translated back to the base-class shape)
    # ------------------------------------------------------------------
    def trail_entry(self, index: int) -> Tuple[Hashable, Optional[BV3], Optional[object]]:
        slot, previous_known, previous_value, reason = self._trail[index]
        key = self._key_of[slot]
        if previous_known < 0:
            return (key, None, reason)
        return (key, BV3(self._slot_widths[slot], previous_value, previous_known), reason)

    def trail_slot_reason(self, index: int) -> Tuple[int, Optional[object]]:
        """The (slot, reason) of a trail entry, without materialisation."""
        entry = self._trail[index]
        return (entry[0], entry[3])

    def _restore_to(self, mark: int) -> None:
        on_restore = self.on_restore
        trail = self._trail
        known = self._known
        value = self._value
        live = self._live
        while len(trail) > mark:
            slot, previous_known, previous_value, _reason = trail.pop()
            if previous_known < 0:
                known[slot] = 0
                value[slot] = 0
                del live[slot]
            else:
                known[slot] = previous_known
                value[slot] = previous_value
            if on_restore is not None:
                on_restore(slot)

    def __len__(self) -> int:
        return len(self._live)


class CompiledEngine(ImplicationEngine):
    """Implication engine running on :class:`CompiledAssignment` lanes.

    Drop-in replacement for :class:`ImplicationEngine`: identical public
    API, assignment order, conflict attribution and statistics counters;
    the difference is purely mechanical (slot arrays instead of dicts of
    objects on every hot path).  ``node.slots`` / ``node.in_slots`` /
    ``node.out_slots`` / ``node.index`` are populated at :meth:`add_node`
    time -- the lowering pass of the compiled kernel.
    """

    is_compiled = True

    def __init__(self, assignment: Optional[CompiledAssignment] = None):
        if assignment is None:
            assignment = CompiledAssignment()
        super().__init__(assignment)
        #: watcher lists indexed by slot (replaces the key-hashed dict).
        self._slot_watchers: List[List[ImplicationNode]] = []
        #: per-node rule memos / justification memos, indexed by node.index
        #: (replaces the id()-keyed dicts).  ``None`` until first touched.
        self._rule_rows: List[Optional[dict]] = []
        self._justified_rows: List[Optional[tuple]] = []
        #: per-node three-valued forward-simulation memos (input signature ->
        #: int-encoded outputs, or ``False`` for a conflicting simulation).
        #: Purely internal: justification *results* stay in
        #: ``_justified_rows`` with oracle-identical hit/miss counting; this
        #: row only makes recomputing a missed result cheap.
        self._forward_rows: List[Optional[dict]] = []
        #: slots restored since the last frontier refresh.  ``on_restore``
        #: binds straight to ``set.add`` -- one C call per restored trail
        #: entry instead of a Python frame (the set itself is never rebound).
        self._dirty_slots: Set[int] = set()
        assignment.on_restore = self._dirty_slots.add

    # ------------------------------------------------------------------
    def add_node(self, node: ImplicationNode, widths: Optional[Sequence[int]] = None) -> None:
        assignment = self.assignment
        if widths is not None:
            slots = [
                assignment.register(key, width)
                for key, width in zip(node.keys, widths)
            ]
        else:
            slots = [assignment.slot_of(key) for key in node.keys]
        node.slots = tuple(slots)
        num_inputs = len(slots) - node.num_outputs
        node.in_slots = node.slots[:num_inputs]
        node.out_slots = node.slots[num_inputs:]
        index = len(self.nodes)
        node.index = index
        self.nodes.append(node)
        watchers = self._slot_watchers
        while len(watchers) < assignment.num_slots:
            watchers.append([])
        for slot in slots:
            watchers[slot].append(node)
        self._rule_rows.append(None)
        self._justified_rows.append(None)
        self._forward_rows.append(None)
        self._dirty_nodes[index] = node

    def watchers(self, key: Hashable) -> List[ImplicationNode]:
        slot = self.assignment._slot_of.get(key)
        if slot is None or slot >= len(self._slot_watchers):
            return []
        return self._slot_watchers[slot]

    # ------------------------------------------------------------------
    def assign(
        self,
        key: Hashable,
        cube: BV3,
        propagate: bool = True,
        reason: Optional[object] = None,
    ) -> bool:
        assignment = self.assignment
        slot = assignment.slot_of(key)
        changed = assignment.assign_slot(
            slot, cube.width, cube.value, cube.known, reason
        )
        if changed:
            self.implication_count += 1
            self._enqueue_watchers_slot(slot)
            if propagate:
                self.propagate()
        return changed

    def _enqueue_watchers(self, key: Hashable) -> None:
        slot = self.assignment._slot_of.get(key)
        if slot is not None:
            self._enqueue_watchers_slot(slot)

    def _enqueue_watchers_slot(self, slot: int) -> None:
        watchers = self._slot_watchers
        if slot >= len(watchers):
            return
        dirty = self._dirty_nodes
        queued = self._queued
        queue = self._queue
        for node in watchers[slot]:
            index = node.index
            dirty[index] = node
            if node.active and index not in queued:
                queued.add(index)
                queue.append(node)

    def _mark_key_dirty(self, slot: int) -> None:
        # ``on_restore`` hands the compiled assignment's *slot* over.
        self._dirty_slots.add(slot)

    def mark_dirty(self, nodes: Iterable[ImplicationNode]) -> None:
        dirty = self._dirty_nodes
        for node in nodes:
            dirty[node.index] = node

    def enqueue(self, nodes: Iterable[ImplicationNode]) -> None:
        dirty = self._dirty_nodes
        queued = self._queued
        queue = self._queue
        for node in nodes:
            index = node.index
            dirty[index] = node
            if node.active and index not in queued:
                queued.add(index)
                queue.append(node)

    def propagate(self) -> None:
        # The worklist drain is THE hot loop of a check: the evaluation fast
        # path (signature build, memo hit, no-op replay) is inlined here with
        # counters batched in locals, falling back to :meth:`_evaluate` only
        # for entries that actually refine a pin.  Counter semantics are
        # identical to the interpreted engine's; the batching is written
        # back in ``finally`` so conflicts observe exact totals too.
        queue = self._queue
        queued = self._queued
        assignment = self.assignment
        known = assignment._known
        value = assignment._value
        trail = assignment._trail
        live = assignment._live
        rule_rows = self._rule_rows
        lru = self.rule_cache_lru
        watchers = self._slot_watchers
        num_watched = len(watchers)
        dirty = self._dirty_nodes
        evaluations = hits = misses = implications = 0
        try:
            while queue:
                node = queue.popleft()
                queued.discard(node.index)
                if not node.active:
                    continue
                evaluations += 1
                slots = node.slots
                signature = (
                    *map(known.__getitem__, slots),
                    *map(value.__getitem__, slots),
                )
                cache = rule_rows[node.index]
                if cache is None:
                    cache = rule_rows[node.index] = {}
                entry = cache.get(signature)
                if entry is None:
                    misses += 1
                    entry = self._miss_evaluate(node, cache, signature)
                else:
                    hits += 1
                    if lru:
                        del cache[signature]
                        cache[signature] = entry
                refined = entry[0]
                if entry[1]:
                    continue  # memoised no-op: every pin would be skipped
                num_pins = len(slots)
                for position in range(num_pins):
                    pair = refined[position]
                    new_known = pair[0]
                    # Skip pins unchanged w.r.t. the value *read for the
                    # memo key* (the interpreted engine compares against the
                    # same snapshot); duplicate pins re-read the live lane
                    # below, exactly like a second assign call would.
                    if (
                        new_known == signature[position]
                        and pair[1] == signature[num_pins + position]
                    ):
                        continue
                    slot = slots[position]
                    new_value = pair[1]
                    current_known = known[slot]
                    if current_known == 0:
                        if new_known == 0:
                            continue
                        trail.append((slot, -1, 0, node))
                        known[slot] = new_known
                        value[slot] = new_value
                        live[slot] = None
                    else:
                        current_value = value[slot]
                        if (current_value ^ new_value) & current_known & new_known:
                            slot_width = assignment._slot_widths[slot]
                            key = assignment._key_of[slot]
                            raise ImplicationConflict(
                                "conflict on %r: %s vs %s"
                                % (
                                    key,
                                    BV3(slot_width, current_value, current_known),
                                    BV3(slot_width, new_value, new_known),
                                ),
                                key=key,
                                keys=tuple(node.keys),
                            )
                        refined_known = current_known | new_known
                        if refined_known == current_known:
                            continue
                        trail.append((slot, current_known, current_value, node))
                        known[slot] = refined_known
                        value[slot] = current_value | new_value
                    implications += 1
                    if slot < num_watched:
                        for watcher in watchers[slot]:
                            windex = watcher.index
                            dirty[windex] = watcher
                            if watcher.active and windex not in queued:
                                queued.add(windex)
                                queue.append(watcher)
        except (ImplicationConflict, BV3Conflict) as exc:
            queue.clear()
            queued.clear()
            if isinstance(exc, ImplicationConflict):
                raise
            raise ImplicationConflict(str(exc)) from exc
        finally:
            self.node_evaluations += evaluations
            self.rule_cache_hits += hits
            self.rule_cache_misses += misses
            self.implication_count += implications

    # ------------------------------------------------------------------
    def _evaluate(self, node: ImplicationNode) -> None:
        self.node_evaluations += 1
        assignment = self.assignment
        known = assignment._known
        value = assignment._value
        slots = node.slots
        # Flat int signature of the node's lanes: bijective with the
        # interpreted engine's tuple-of-cubes memo key (widths are fixed),
        # so the hit/miss/eviction stream is identical.
        signature = (*map(known.__getitem__, slots), *map(value.__getitem__, slots))
        index = node.index
        cache = self._rule_rows[index]
        if cache is None:
            cache = self._rule_rows[index] = {}
        entry = cache.get(signature)
        if entry is None:
            self.rule_cache_misses += 1
            entry = self._miss_evaluate(node, cache, signature)
        else:
            self.rule_cache_hits += 1
            if self.rule_cache_lru:
                del cache[signature]
                cache[signature] = entry
        refined, noop = entry
        if noop:
            # The memoised refinement equals its own input signature: the
            # interpreted engine would skip every pin, so skip the loop.
            return
        self._apply_refinement(node, signature, refined)

    def _apply_refinement(
        self,
        node: ImplicationNode,
        signature: Tuple[int, ...],
        refined: Tuple[Tuple[int, int], ...],
    ) -> None:
        assignment = self.assignment
        known = assignment._known
        value = assignment._value
        slots = node.slots
        num_pins = len(slots)
        trail = assignment._trail
        live = assignment._live
        # Watcher notification is inlined (the second-hottest call after
        # evaluation itself); ``implication_count`` is batched in a local.
        watchers = self._slot_watchers
        num_watched = len(watchers)
        dirty = self._dirty_nodes
        queued = self._queued
        queue = self._queue
        implications = 0
        try:
            for position in range(num_pins):
                pair = refined[position]
                new_known = pair[0]
                # Skip pins unchanged w.r.t. the value *read for the memo key*
                # (the interpreted engine compares against the same snapshot);
                # duplicate pins re-read the live lane below, exactly like a
                # second Assignment.assign call would.
                if new_known == signature[position] and pair[1] == signature[num_pins + position]:
                    continue
                slot = slots[position]
                new_value = pair[1]
                current_known = known[slot]
                if current_known == 0:
                    if new_known == 0:
                        continue
                    trail.append((slot, -1, 0, node))
                    known[slot] = new_known
                    value[slot] = new_value
                    live[slot] = None
                else:
                    current_value = value[slot]
                    if (current_value ^ new_value) & current_known & new_known:
                        slot_width = assignment._slot_widths[slot]
                        key = assignment._key_of[slot]
                        raise ImplicationConflict(
                            "conflict on %r: %s vs %s"
                            % (
                                key,
                                BV3(slot_width, current_value, current_known),
                                BV3(slot_width, new_value, new_known),
                            ),
                            key=key,
                            keys=tuple(node.keys),
                        )
                    refined_known = current_known | new_known
                    if refined_known == current_known:
                        continue
                    trail.append((slot, current_known, current_value, node))
                    known[slot] = refined_known
                    value[slot] = current_value | new_value
                implications += 1
                if slot < num_watched:
                    for watcher in watchers[slot]:
                        windex = watcher.index
                        dirty[windex] = watcher
                        if watcher.active and windex not in queued:
                            queued.add(windex)
                            queue.append(watcher)
        finally:
            self.implication_count += implications

    def _miss_evaluate(
        self, node: ImplicationNode, cache: dict, signature: Tuple[int, ...]
    ) -> Tuple[Tuple[Tuple[int, int], ...], bool]:
        """Memo miss: materialise cubes, run the rule, re-encode as ints.

        Returns ``(refined pairs, noop)`` where ``noop`` marks evaluations
        whose refinement equals the input signature -- the common fixpoint
        re-visit, which later hits replay without touching any pin.
        """
        assignment = self.assignment
        slot_widths = assignment._slot_widths
        slots = node.slots
        num_pins = len(slots)
        cubes = [
            BV3(slot_widths[slots[i]], signature[num_pins + i], signature[i])
            if signature[i]
            else assignment.unknown_slot(slots[i])
            for i in range(num_pins)
        ]
        try:
            out = node.rule(cubes)
        except BV3Conflict as exc:
            # Conflicting evaluations are never cached (the interpreted
            # engine's exception propagates before the memo store).
            raise ImplicationConflict(
                "%s: %s" % (node.name, exc), keys=tuple(node.keys)
            ) from exc
        refined: List[Tuple[int, int]] = []
        for i in range(num_pins):
            cube = out[i]
            slot = slots[i]
            width = slot_widths[slot]
            if width is None:
                slot_widths[slot] = cube.width
            elif cube.width != width:
                raise ValueError(
                    "cube width %d does not match key %r width %d"
                    % (cube.width, assignment._key_of[slot], width)
                )
            refined.append((cube.known, cube.value))
        noop = True
        for i in range(num_pins):
            pair = refined[i]
            if pair[0] != signature[i] or pair[1] != signature[num_pins + i]:
                noop = False
                break
        result = (tuple(refined), noop)
        if len(cache) >= self._rule_cache_limit:
            del cache[next(iter(cache))]
            self.rule_cache_evictions += 1
        cache[signature] = result
        return result

    # ------------------------------------------------------------------
    # Conflict analysis on raw slot trail entries (no BV3 materialisation)
    # ------------------------------------------------------------------
    def analyze_conflict(self, conflict: ImplicationConflict, stop_mark: int) -> ConflictAnalysis:
        assignment = self.assignment
        slot_of = assignment._slot_of
        key_of = assignment._key_of
        cone: Set[Hashable] = set(conflict.conflict_keys)
        analysis = ConflictAnalysis(cone=cone, opaque=not cone)
        relevant: Set[int] = {slot_of[key] for key in cone if key in slot_of}
        trail = assignment._trail
        roots = analysis.roots
        for index in range(len(trail) - 1, stop_mark - 1, -1):
            entry = trail[index]
            if entry[0] not in relevant:
                continue
            reason = entry[3]
            if reason is None:
                analysis.opaque = True
            elif isinstance(reason, RootCause):
                roots.append(reason)
            else:  # an ImplicationNode: pull its pins into the cone
                for slot in reason.slots:
                    if slot not in relevant:
                        relevant.add(slot)
                        cone.add(key_of[slot])
        return analysis

    # ------------------------------------------------------------------
    def _retire_nodes(self, mark: int) -> None:
        retired = self.nodes[mark:]
        del self.nodes[mark:]
        slot_watchers = self._slot_watchers
        seen: Set[int] = set()
        for node in retired:
            for slot in node.slots:
                if slot in seen:
                    continue
                seen.add(slot)
                watchers = slot_watchers[slot]
                while watchers and watchers[-1].index >= mark:
                    watchers.pop()
        del self._rule_rows[mark:]
        del self._justified_rows[mark:]
        del self._forward_rows[mark:]
        for container in (self._dirty_nodes, self._unjustified):
            stale = [index for index in container if index >= mark]
            for index in stale:
                del container[index]

    # ------------------------------------------------------------------
    # Justification support
    # ------------------------------------------------------------------
    def forward_outputs(self, node: ImplicationNode) -> List[BV3]:
        assignment = self.assignment
        cubes = [assignment.get_slot(slot) for slot in node.in_slots]
        cubes += [assignment.unknown_slot(slot) for slot in node.out_slots]
        refined = node.rule(cubes)
        return refined[len(node.in_slots):]

    def is_justified(self, node: ImplicationNode) -> bool:
        assignment = self.assignment
        known = assignment._known
        value = assignment._value
        slots = node.slots
        signature = (*map(known.__getitem__, slots), *map(value.__getitem__, slots))
        index = node.index
        cached = self._justified_rows[index]
        if cached is not None and cached[0] == signature:
            self.justified_cache_hits += 1
            return cached[1]
        self.justified_cache_misses += 1
        result = self._compute_justified(node)
        self._justified_rows[index] = (signature, result)
        return result

    def _compute_justified(self, node: ImplicationNode) -> bool:
        assignment = self.assignment
        known = assignment._known
        value = assignment._value
        in_slots = node.in_slots
        in_signature = (
            *map(known.__getitem__, in_slots),
            *map(value.__getitem__, in_slots),
        )
        index = node.index
        row = self._forward_rows[index]
        if row is None:
            row = self._forward_rows[index] = {}
        forward = row.get(in_signature)
        if forward is None:
            try:
                simulated = self.forward_outputs(node)
            except BV3Conflict:
                forward = False
            else:
                forward = tuple((cube.known, cube.value) for cube in simulated)
            if len(row) >= self._rule_cache_limit:
                del row[next(iter(row))]
            row[in_signature] = forward
        if forward is False:
            return False
        for slot, (forward_known, forward_value) in zip(node.out_slots, forward):
            required_known = known[slot]
            if required_known == 0:
                continue
            # required.covers(simulated) at the int level.
            if required_known & ~forward_known:
                return False
            if (value[slot] ^ forward_value) & required_known:
                return False
        return True

    # ------------------------------------------------------------------
    # Incremental unjustified frontier
    # ------------------------------------------------------------------
    def _refresh_frontier(self) -> None:
        dirty_nodes = self._dirty_nodes
        if self._dirty_slots:
            slot_watchers = self._slot_watchers
            num_watched = len(slot_watchers)
            for slot in self._dirty_slots:
                if slot < num_watched:
                    for node in slot_watchers[slot]:
                        dirty_nodes[node.index] = node
            self._dirty_slots.clear()
        if not dirty_nodes:
            return
        unjustified = self._unjustified
        known = self.assignment._known
        for marker, node in dirty_nodes.items():
            if node.active:
                has_requirement = False
                for slot in node.out_slots:
                    if known[slot]:
                        has_requirement = True
                        break
                if has_requirement and not self.is_justified(node):
                    unjustified[marker] = node
                    continue
            unjustified.pop(marker, None)
        dirty_nodes.clear()
        if len(unjustified) > self.frontier_peak:
            self.frontier_peak = len(unjustified)


def compile_model(engine: ImplicationEngine) -> Optional[CompiledEngine]:
    """Return ``engine`` if it is a compiled kernel, else ``None``.

    Lowering is *incremental by construction*: the unrolled model interns
    slots as each frame's nodes are added (see
    :meth:`CompiledEngine.add_node`), so there is no separate batch pass to
    run -- this helper only answers "is this engine compiled?" in a
    forward-compatible way.
    """
    return engine if isinstance(engine, CompiledEngine) else None
