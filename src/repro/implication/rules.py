"""Dispatch from netlist primitives to their implication rules.

:func:`build_rule` inspects a gate and returns a :class:`GateSemantics`
object bundling

* the pin list (nets) in the canonical order expected by the rule,
* ``imply(cubes)`` -- forward+backward implication over all pins,
* ``forward(input_cubes)`` -- three-valued forward simulation of the outputs
  only, used for the paper's *unjustified gate* test (a gate is justified
  when its forward simulation value covers the required output value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.bitvector import BV3
from repro.implication import rules_arith, rules_bool, rules_compare, rules_mux
from repro.netlist.arith import Adder, Multiplier, ShiftLeft, ShiftRight, Subtractor
from repro.netlist.compare import Comparator
from repro.netlist.gates import (
    AndGate,
    BufGate,
    ConcatGate,
    ConstGate,
    Gate,
    NandGate,
    NorGate,
    NotGate,
    OrGate,
    ReduceAnd,
    ReduceOr,
    ReduceXor,
    SliceGate,
    XnorGate,
    XorGate,
    ZeroExtendGate,
)
from repro.netlist.mux import Mux
from repro.netlist.nets import Net
from repro.netlist.tristate import BusResolver, TristateBuffer


@dataclass
class GateSemantics:
    """Implication semantics of one combinational primitive."""

    gate: Gate
    pins: List[Net]
    num_outputs: int
    imply: Callable[[Sequence[BV3]], List[BV3]]

    def forward(self, input_cubes: Sequence[BV3]) -> List[BV3]:
        """Three-valued forward simulation: outputs implied from inputs only."""
        num_inputs = len(self.pins) - self.num_outputs
        cubes = list(input_cubes) + [
            BV3.unknown(net.width) for net in self.pins[num_inputs:]
        ]
        refined = self.imply(cubes)
        return refined[num_inputs:]

    @property
    def input_pins(self) -> List[Net]:
        return self.pins[: len(self.pins) - self.num_outputs]

    @property
    def output_pins(self) -> List[Net]:
        return self.pins[len(self.pins) - self.num_outputs :]


_SIMPLE_BITWISE = {
    AndGate: rules_bool.imply_and,
    OrGate: rules_bool.imply_or,
    XorGate: rules_bool.imply_xor,
    NandGate: rules_bool.imply_nand,
    NorGate: rules_bool.imply_nor,
    XnorGate: rules_bool.imply_xnor,
    NotGate: rules_bool.imply_not,
    BufGate: rules_bool.imply_buf,
    ReduceAnd: rules_bool.imply_reduce_and,
    ReduceOr: rules_bool.imply_reduce_or,
    ReduceXor: rules_bool.imply_reduce_xor,
    ZeroExtendGate: rules_bool.imply_zext,
}


def build_rule(gate: Gate) -> GateSemantics:
    """Build the :class:`GateSemantics` for a combinational gate."""
    gate_type = type(gate)

    if gate_type in _SIMPLE_BITWISE:
        rule = _SIMPLE_BITWISE[gate_type]
        pins = list(gate.inputs) + [gate.output]
        return GateSemantics(gate, pins, 1, rule)

    if isinstance(gate, ConstGate):
        value = gate.value
        return GateSemantics(
            gate, [gate.output], 1, lambda cubes: rules_bool.imply_const(value, cubes)
        )

    if isinstance(gate, SliceGate):
        msb, lsb = gate.msb, gate.lsb
        pins = [gate.inputs[0], gate.output]
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_bool.imply_slice(msb, lsb, cubes)
        )

    if isinstance(gate, ConcatGate):
        widths = [net.width for net in gate.inputs]
        pins = list(gate.inputs) + [gate.output]
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_bool.imply_concat(widths, cubes)
        )

    if isinstance(gate, Adder):
        has_cin = gate.carry_in is not None
        has_cout = gate.carry_out is not None
        pins = [gate.a, gate.b]
        if has_cin:
            pins.append(gate.carry_in)
        pins.append(gate.output)
        num_outputs = 1
        if has_cout:
            pins.append(gate.carry_out)
            num_outputs = 2
        return GateSemantics(
            gate,
            pins,
            num_outputs,
            lambda cubes: rules_arith.imply_adder(has_cin, has_cout, cubes),
        )

    if isinstance(gate, Subtractor):
        pins = [gate.a, gate.b, gate.output]
        return GateSemantics(gate, pins, 1, rules_arith.imply_subtractor)

    if isinstance(gate, Multiplier):
        pins = [gate.a, gate.b, gate.output]
        return GateSemantics(gate, pins, 1, rules_arith.imply_multiplier)

    if isinstance(gate, (ShiftLeft, ShiftRight)):
        kind = "shl" if isinstance(gate, ShiftLeft) else "shr"
        if gate.amount is None:
            amount = gate.constant
            pins = [gate.a, gate.output]
            return GateSemantics(
                gate, pins, 1, lambda cubes: rules_arith.imply_shift_const(kind, amount, cubes)
            )
        pins = [gate.a, gate.amount, gate.output]
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_arith.imply_shift_var(kind, cubes)
        )

    if isinstance(gate, Comparator):
        op = gate.op
        pins = [gate.a, gate.b, gate.output]
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_compare.imply_comparator(op, cubes)
        )

    if isinstance(gate, Mux):
        num_data = len(gate.data)
        pins = [gate.select] + list(gate.data) + [gate.output]
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_mux.imply_mux(num_data, cubes)
        )

    if isinstance(gate, TristateBuffer):
        pins = [gate.data, gate.enable, gate.output]
        return GateSemantics(gate, pins, 1, rules_mux.imply_tristate)

    if isinstance(gate, BusResolver):
        num_drivers = len(gate.drivers)
        pins: List[Net] = []
        for data, enable in gate.drivers:
            pins.extend([data, enable])
        pins.append(gate.output)
        return GateSemantics(
            gate, pins, 1, lambda cubes: rules_mux.imply_bus(num_drivers, cubes)
        )

    raise TypeError("no implication rule for gate type %s" % (gate_type.__name__,))


def forward_simulate(gate: Gate, input_cubes: Sequence[BV3]) -> List[BV3]:
    """Convenience wrapper: three-valued forward simulation of one gate."""
    return build_rule(gate).forward(input_cubes)
