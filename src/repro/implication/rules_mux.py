"""Implication rules for multiplexors, tri-state buffers and bus resolvers.

Multiplexors are the control-to-datapath interface.  The output cube is the
*cube union* of the still-selectable data inputs; a data input whose cube has
an empty intersection with the output cube rules out the corresponding select
value (paper Section 3.1, "Multiplexors").
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bitvector import BV3, BV3Conflict


def imply_mux(num_data: int, cubes: Sequence[BV3]) -> List[BV3]:
    """Mux pins: ``select, data_0 .. data_{n-1}, out``."""
    select = cubes[0]
    data = list(cubes[1 : 1 + num_data])
    out = cubes[1 + num_data]

    if select.num_unknown() > 12:
        # Degenerate very-wide unknown select: only propagate the output
        # union, do not enumerate select completions.
        union = data[0]
        for cube in data[1:]:
            union = union.union(cube)
        return [select] + data + [out.intersect(union)]

    # Which select values are still possible?  Select values beyond the
    # number of data inputs alias onto the last input (matching Mux.evaluate).
    feasible_selects = []
    feasible_indices = set()
    for select_value in select.completions():
        index = select_value if select_value < num_data else num_data - 1
        if data[index].compatible(out):
            feasible_selects.append(select_value)
            feasible_indices.add(index)
    if not feasible_selects:
        raise BV3Conflict("no mux input is compatible with the required output")

    # Refine the select: keep only bits common to every feasible select value.
    new_select = select
    common_known = select.mask
    common_value = feasible_selects[0]
    for value in feasible_selects[1:]:
        common_known &= ~(common_value ^ value)
    new_select = select.intersect(BV3(select.width, common_value & common_known, common_known))

    # Output: union of the cubes of the feasible inputs, intersected with the
    # current output knowledge.
    union = None
    for index in feasible_indices:
        union = data[index] if union is None else union.union(data[index])
    new_out = out.intersect(union)

    # When exactly one input remains selectable, it must equal the output.
    new_data = list(data)
    if len(feasible_indices) == 1:
        index = next(iter(feasible_indices))
        merged = new_data[index].intersect(new_out)
        new_data[index] = merged
        new_out = merged

    return [new_select] + new_data + [new_out]


def imply_tristate(cubes: Sequence[BV3]) -> List[BV3]:
    """Tri-state buffer pins: ``data, enable, out``.

    The buffer output mirrors its data input (bus resolution is modelled by
    the :class:`~repro.netlist.tristate.BusResolver`); the enable pin is not
    constrained here.
    """
    data, enable, out = cubes
    merged = data.intersect(out)
    return [merged, enable, merged]


def imply_bus(num_drivers: int, cubes: Sequence[BV3]) -> List[BV3]:
    """Bus resolver pins: ``data_0, en_0, ..., data_{n-1}, en_{n-1}, out``.

    Conservative rules: when exactly one driver is known-enabled and every
    other driver is known-disabled, the bus equals that driver's data; when
    every driver is known-disabled the bus is zero.
    """
    pins = list(cubes)
    out = pins[-1]
    data = [pins[2 * i] for i in range(num_drivers)]
    enables = [pins[2 * i + 1] for i in range(num_drivers)]

    enable_bits = [e.bit(0) for e in enables]
    if all(bit == 0 for bit in enable_bits):
        new_out = out.intersect(BV3.from_int(out.width, 0))
        return _reassemble(data, enables, new_out)
    known_on = [i for i, bit in enumerate(enable_bits) if bit == 1]
    known_off = [i for i, bit in enumerate(enable_bits) if bit == 0]
    if len(known_on) == 1 and len(known_off) == num_drivers - 1:
        index = known_on[0]
        merged = data[index].intersect(out)
        data[index] = merged
        return _reassemble(data, enables, merged)
    return _reassemble(data, enables, out)


def _reassemble(data: List[BV3], enables: List[BV3], out: BV3) -> List[BV3]:
    pins: List[BV3] = []
    for d, e in zip(data, enables):
        pins.extend([d, e])
    pins.append(out)
    return pins
