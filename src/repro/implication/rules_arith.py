"""Implication rules for arithmetic units (adders, subtractors, multipliers,
shifters).

Adders and subtractors use the three-valued ripple-carry propagation of
:mod:`repro.bitvector.arith3`, which realises the paper's Fig. 3 example
(learning missing input bits *and* the carry-out from a partially known sum).
Multipliers propagate exact values when both operands are known and use the
scalar congruence solver (Theorem 1/2) backwards when the product and one
operand are known; everything else is deferred to the arithmetic constraint
solver.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bitvector import BV3, BV3Conflict, propagate_adder, propagate_subtractor
from repro.bitvector.arith3 import mul3
from repro.modsolver.modular import solve_scalar_congruence


def imply_adder(has_cin: bool, has_cout: bool, cubes: Sequence[BV3]) -> List[BV3]:
    """Adder pins: ``a, b, [cin], out, [cout]`` (cin/cout are 1-bit cubes)."""
    index = 0
    a = cubes[index]; index += 1
    b = cubes[index]; index += 1
    cin_cube: Optional[BV3] = None
    if has_cin:
        cin_cube = cubes[index]; index += 1
    out = cubes[index]; index += 1
    cout_cube: Optional[BV3] = None
    if has_cout:
        cout_cube = cubes[index]; index += 1

    cin_bit = cin_cube.bit(0) if cin_cube is not None else 0
    cout_bit = cout_cube.bit(0) if cout_cube is not None else None

    new_a, new_b, new_out, new_cin, new_cout = propagate_adder(
        a, b, out, carry_in=cin_bit, carry_out=cout_bit
    )

    result = [new_a, new_b]
    if has_cin:
        refined_cin = cin_cube
        if new_cin is not None:
            refined_cin = cin_cube.intersect(BV3.from_int(1, new_cin))
        result.append(refined_cin)
    result.append(new_out)
    if has_cout:
        refined_cout = cout_cube
        if new_cout is not None:
            refined_cout = cout_cube.intersect(BV3.from_int(1, new_cout))
        result.append(refined_cout)
    return result


def imply_subtractor(cubes: Sequence[BV3]) -> List[BV3]:
    """Subtractor pins: ``a, b, out`` with ``out = a - b``."""
    a, b, out = cubes
    new_a, new_b, new_out = propagate_subtractor(a, b, out)
    return [new_a, new_b, new_out]


def imply_multiplier(cubes: Sequence[BV3]) -> List[BV3]:
    """Multiplier pins: ``a, b, out`` with ``out = a * b (mod 2**out.width)``.

    Backward implication uses the paper's modular machinery: when the product
    and one operand are fully known, the other operand's solution set is the
    multiplicative inverse with product ``k``; a unique solution is implied
    directly, an empty one is a conflict, and multiple solutions are left for
    the arithmetic constraint solver.
    """
    a, b, out = cubes
    width = out.width

    new_out = out
    if a.is_fully_known() and b.is_fully_known():
        product = (a.to_int() * b.to_int()) & out.mask
        new_out = out.intersect(BV3.from_int(width, product))
        return [a, b, new_out]

    forward = mul3(a, b, out_width=width)
    new_out = out.intersect(forward)

    new_a, new_b = a, b
    if new_out.is_fully_known():
        product = new_out.to_int()
        if a.is_fully_known():
            new_b = _imply_factor(a.to_int(), product, b, width)
        elif b.is_fully_known():
            new_a = _imply_factor(b.to_int(), product, a, width)
    return [new_a, new_b, new_out]


def _imply_factor(known_operand: int, product: int, other: BV3, width: int) -> BV3:
    """Refine the unknown multiplier operand when the solution is unique."""
    solutions = solve_scalar_congruence(known_operand % (1 << width), product, width)
    if solutions is None:
        raise BV3Conflict(
            "no %d-bit operand satisfies %d * x = %d (mod 2**%d)"
            % (other.width, known_operand, product, width)
        )
    if solutions.count == 1:
        value = solutions.base & other.mask
        return other.intersect(BV3.from_int(other.width, value))
    # Multiple modular solutions: check at least one is compatible.
    if solutions.count <= 64:
        compatible = [v for v in solutions.values() if other.contains_int(v & other.mask)]
        if not compatible:
            raise BV3Conflict("no modular factor compatible with %s" % (other,))
        if len(compatible) == 1:
            return other.intersect(BV3.from_int(other.width, compatible[0] & other.mask))
    return other


def imply_shift_const(kind: str, amount: int, cubes: Sequence[BV3]) -> List[BV3]:
    """Constant-amount shift: exact bidirectional bit remapping.

    ``kind`` is ``"shl"`` or ``"shr"``; pins are ``a, out``.
    """
    a, out = cubes
    width = out.width
    new_a_bits = list(a.bits())
    new_out_bits = list(out.bits())

    for i in range(width):
        if kind == "shl":
            src = i - amount
        else:
            src = i + amount
        if 0 <= src < a.width:
            merged = _merge(new_a_bits[src], new_out_bits[i])
            new_a_bits[src] = merged
            new_out_bits[i] = merged
        else:
            # Shifted-in position: always zero.
            if new_out_bits[i] == 1:
                raise BV3Conflict("shift fills bit %d with 0 but output requires 1" % (i,))
            new_out_bits[i] = 0
    return [BV3.from_bits(new_a_bits), BV3.from_bits(new_out_bits)]


def imply_shift_var(kind: str, cubes: Sequence[BV3]) -> List[BV3]:
    """Variable-amount shift: pins ``a, amount, out``.

    Forward only, and only when the amount is fully known (the general case
    is a non-linear constraint handled by the arithmetic solver).
    """
    a, amount, out = cubes
    if not amount.is_fully_known():
        return [a, amount, out]
    refined = imply_shift_const(kind, amount.to_int(), [a, out])
    return [refined[0], amount, refined[1]]


def _merge(x, y):
    if x is None:
        return y
    if y is None:
        return x
    if x != y:
        raise BV3Conflict("shift wiring conflict")
    return x
