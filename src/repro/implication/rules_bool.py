"""Forward/backward implication rules for bit-wise and reduction gates.

All rules operate on lists of three-valued cubes (one per pin, inputs first,
output last), return the refined cubes in the same order, and raise
:class:`repro.bitvector.BV3Conflict` when the current knowledge is
inconsistent with the gate function.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bitvector import BV3, BV3Conflict
from repro.bitvector.bv3 import Bit


def _imply_bitwise(kind: str, cubes: Sequence[BV3]) -> List[BV3]:
    """Generic n-ary bit-wise rule; ``kind`` in and/or/xor/nand/nor/xnor."""
    *input_cubes, output_cube = cubes
    width = output_cube.width
    invert = kind in ("nand", "nor", "xnor")
    base = {"nand": "and", "nor": "or", "xnor": "xor"}.get(kind, kind)

    new_inputs = [list(c.bits()) for c in input_cubes]
    new_output = list(output_cube.bits())

    for position in range(width):
        ins = [bits[position] for bits in new_inputs]
        out = new_output[position]
        core_out = out if out is None or not invert else 1 - out
        ins, core_out = _imply_bit(base, ins, core_out)
        for bits, value in zip(new_inputs, ins):
            bits[position] = value
        if core_out is not None:
            new_output[position] = core_out if not invert else 1 - core_out

    refined = [BV3.from_bits(bits) for bits in new_inputs]
    refined.append(BV3.from_bits(new_output))
    return refined


def _imply_bit(kind: str, ins: List[Bit], out: Bit) -> (List[Bit], Bit):
    """Single-bit implication for an n-ary AND/OR/XOR cell."""
    known = [b for b in ins if b is not None]
    unknown_count = len(ins) - len(known)

    if kind == "and":
        if out == 1:
            for b in ins:
                if b == 0:
                    raise BV3Conflict("AND output 1 with a 0 input")
            ins = [1] * len(ins)
        elif out == 0:
            if all(b == 1 for b in ins):
                raise BV3Conflict("AND output 0 with all inputs 1")
            if unknown_count == 1 and all(b == 1 for b in known):
                ins = [0 if b is None else b for b in ins]
        if any(b == 0 for b in ins):
            out = _merge_out(out, 0)
        elif all(b == 1 for b in ins):
            out = _merge_out(out, 1)
    elif kind == "or":
        if out == 0:
            for b in ins:
                if b == 1:
                    raise BV3Conflict("OR output 0 with a 1 input")
            ins = [0] * len(ins)
        elif out == 1:
            if all(b == 0 for b in ins):
                raise BV3Conflict("OR output 1 with all inputs 0")
            if unknown_count == 1 and all(b == 0 for b in known):
                ins = [1 if b is None else b for b in ins]
        if any(b == 1 for b in ins):
            out = _merge_out(out, 1)
        elif all(b == 0 for b in ins):
            out = _merge_out(out, 0)
    elif kind == "xor":
        if unknown_count == 0:
            parity = sum(ins) & 1
            out = _merge_out(out, parity)
        elif unknown_count == 1 and out is not None:
            needed = (out - sum(known)) & 1
            ins = [needed if b is None else b for b in ins]
    else:  # pragma: no cover - guarded by callers
        raise ValueError("unknown bitwise kind %r" % (kind,))
    return ins, out


def _merge_out(current: Bit, forced: int) -> Bit:
    if current is not None and current != forced:
        raise BV3Conflict("output bit forced to %d but already %d" % (forced, current))
    return forced


# ----------------------------------------------------------------------
# Public rules
# ----------------------------------------------------------------------
def imply_and(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise AND."""
    return _imply_bitwise("and", cubes)


def imply_or(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise OR."""
    return _imply_bitwise("or", cubes)


def imply_xor(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise XOR."""
    return _imply_bitwise("xor", cubes)


def imply_nand(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise NAND."""
    return _imply_bitwise("nand", cubes)


def imply_nor(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise NOR."""
    return _imply_bitwise("nor", cubes)


def imply_xnor(cubes: Sequence[BV3]) -> List[BV3]:
    """n-ary bit-wise XNOR."""
    return _imply_bitwise("xnor", cubes)


def imply_not(cubes: Sequence[BV3]) -> List[BV3]:
    """Bit-wise inverter: fully bidirectional."""
    a, out = cubes
    new_out = out.intersect(~a)
    new_a = a.intersect(~new_out)
    return [new_a, new_out]


def imply_buf(cubes: Sequence[BV3]) -> List[BV3]:
    """Buffer: the two pins always share the same cube."""
    a, out = cubes
    merged = a.intersect(out)
    return [merged, merged]


def imply_reduce_and(cubes: Sequence[BV3]) -> List[BV3]:
    """AND-reduction of a word to one bit."""
    a, out = cubes
    out_bit = out.bit(0)
    new_a = a
    # Forward.
    if all(b == 1 for b in a.bits()):
        out = out.intersect(BV3.from_int(1, 1))
    elif any(b == 0 for b in a.bits()):
        out = out.intersect(BV3.from_int(1, 0))
    # Backward.
    out_bit = out.bit(0)
    if out_bit == 1:
        new_a = a.intersect(BV3.from_int(a.width, a.mask))
    elif out_bit == 0:
        bits = list(a.bits())
        unknown = [i for i, b in enumerate(bits) if b is None]
        if all(b == 1 for b in bits if b is not None) and len(unknown) == 1:
            new_a = a.set_bit(unknown[0], 0)
        elif all(b == 1 for b in bits):
            raise BV3Conflict("AND-reduction is 0 but every bit is 1")
    return [new_a, out]


def imply_reduce_or(cubes: Sequence[BV3]) -> List[BV3]:
    """OR-reduction of a word to one bit."""
    a, out = cubes
    new_a = a
    if any(b == 1 for b in a.bits()):
        out = out.intersect(BV3.from_int(1, 1))
    elif all(b == 0 for b in a.bits()):
        out = out.intersect(BV3.from_int(1, 0))
    out_bit = out.bit(0)
    if out_bit == 0:
        new_a = a.intersect(BV3.from_int(a.width, 0))
    elif out_bit == 1:
        bits = list(a.bits())
        unknown = [i for i, b in enumerate(bits) if b is None]
        if all(b == 0 for b in bits if b is not None) and len(unknown) == 1:
            new_a = a.set_bit(unknown[0], 1)
        elif all(b == 0 for b in bits):
            raise BV3Conflict("OR-reduction is 1 but every bit is 0")
    return [new_a, out]


def imply_reduce_xor(cubes: Sequence[BV3]) -> List[BV3]:
    """XOR (parity) reduction of a word to one bit."""
    a, out = cubes
    bits = list(a.bits())
    unknown = [i for i, b in enumerate(bits) if b is None]
    new_a = a
    if not unknown:
        parity = sum(b for b in bits if b) & 1
        out = out.intersect(BV3.from_int(1, parity))
    elif len(unknown) == 1 and out.bit(0) is not None:
        parity_known = sum(b for b in bits if b == 1) & 1
        needed = (out.bit(0) ^ parity_known) & 1
        new_a = a.set_bit(unknown[0], needed)
    return [new_a, out]


def imply_const(value: int, cubes: Sequence[BV3]) -> List[BV3]:
    """Constant driver: the output is always the constant."""
    (out,) = cubes
    return [out.intersect(BV3.from_int(out.width, value))]


def imply_slice(msb: int, lsb: int, cubes: Sequence[BV3]) -> List[BV3]:
    """Bit-slice: fully bidirectional bit remapping."""
    a, out = cubes
    new_out = out.intersect(a.slice(msb, lsb))
    # Push output knowledge back into the corresponding input bits.
    new_a = a
    for i in range(new_out.width):
        bit = new_out.bit(i)
        if bit is not None:
            new_a = new_a.set_bit(lsb + i, bit)
    return [new_a, new_out]


def imply_concat(widths: Sequence[int], cubes: Sequence[BV3]) -> List[BV3]:
    """Concatenation: bidirectional remapping; ``widths`` are input widths,
    most significant part first."""
    *input_cubes, out = cubes
    # Forward: assemble the output from the parts.
    assembled = input_cubes[0]
    for part in input_cubes[1:]:
        assembled = assembled.concat(part)
    new_out = out.intersect(assembled)
    # Backward: split the output back onto the parts.
    new_inputs: List[BV3] = []
    offset = new_out.width
    for cube, width in zip(input_cubes, widths):
        offset -= width
        piece = new_out.slice(offset + width - 1, offset)
        new_inputs.append(cube.intersect(piece))
    return new_inputs + [new_out]


def imply_zext(cubes: Sequence[BV3]) -> List[BV3]:
    """Zero extension: low bits mirror the input, high bits are 0."""
    a, out = cubes
    new_out = out.intersect(a.zero_extend(out.width))
    new_a = a.intersect(new_out.slice(a.width - 1, 0))
    return [new_a, new_out]
