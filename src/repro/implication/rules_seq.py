"""Implication rules for registers / flip-flops across a clock edge.

In the time-frame expanded model a register instance relates the value of its
output in frame ``t+1`` to its data/control pins in frame ``t`` (and to its
own previous output, for the hold case).  The rule below performs the case
analysis of the paper: which of {reset, set, hold, capture} can still explain
the required next value?  If only one case remains, the corresponding control
values are implied (e.g. the paper's example: next value all-zero while the
data input has a one bit implies that the asynchronous reset is asserted).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bitvector import BV3, BV3Conflict


def imply_dff(
    has_enable: bool,
    has_reset: bool,
    has_set: bool,
    reset_value: int,
    cubes: Sequence[BV3],
) -> List[BV3]:
    """Register pins: ``d, [enable], [reset], [set], q_prev, q_next``.

    ``q_prev`` is the register output in the current frame (frame ``t``),
    ``q_next`` the output in the following frame.
    """
    index = 0
    d = cubes[index]; index += 1
    enable = cubes[index] if has_enable else None
    if has_enable:
        index += 1
    reset = cubes[index] if has_reset else None
    if has_reset:
        index += 1
    set_ = cubes[index] if has_set else None
    if has_set:
        index += 1
    q_prev = cubes[index]; index += 1
    q_next = cubes[index]

    width = q_next.width
    reset_cube = BV3.from_int(width, reset_value)
    ones_cube = BV3.from_int(width, (1 << width) - 1)

    # Case analysis: which load sources remain possible?
    cases = []  # (name, source cube or None, guard condition checks)
    reset_bit = reset.bit(0) if reset is not None else 0
    set_bit = set_.bit(0) if set_ is not None else 0
    enable_bit = enable.bit(0) if enable is not None else 1

    possible_reset = reset is not None and reset_bit != 0
    possible_set = set_ is not None and set_bit != 0 and reset_bit != 1
    possible_hold = enable is not None and enable_bit != 1 and reset_bit != 1 and set_bit != 1
    possible_capture = enable_bit != 0 and reset_bit != 1 and set_bit != 1

    if possible_reset and q_next.compatible(reset_cube):
        cases.append("reset")
    if possible_set and q_next.compatible(ones_cube):
        cases.append("set")
    if possible_hold and q_next.compatible(q_prev):
        cases.append("hold")
    if possible_capture and q_next.compatible(d):
        cases.append("capture")

    if not cases:
        raise BV3Conflict("no register load case can produce the required next value")

    new_d, new_enable, new_reset, new_set, new_q_prev, new_q_next = (
        d,
        enable,
        reset,
        set_,
        q_prev,
        q_next,
    )

    if len(cases) == 1:
        case = cases[0]
        if case == "reset":
            new_q_next = q_next.intersect(reset_cube)
            new_reset = reset.intersect(BV3.from_int(1, 1))
        elif case == "set":
            new_q_next = q_next.intersect(ones_cube)
            new_set = set_.intersect(BV3.from_int(1, 1))
            if reset is not None:
                new_reset = reset.intersect(BV3.from_int(1, 0))
        elif case == "hold":
            merged = q_next.intersect(q_prev)
            new_q_next, new_q_prev = merged, merged
            new_enable = enable.intersect(BV3.from_int(1, 0))
            if reset is not None:
                new_reset = reset.intersect(BV3.from_int(1, 0))
            if set_ is not None:
                new_set = set_.intersect(BV3.from_int(1, 0))
        else:  # capture
            merged = q_next.intersect(d)
            new_q_next, new_d = merged, merged
            if enable is not None:
                new_enable = enable.intersect(BV3.from_int(1, 1))
            if reset is not None:
                new_reset = reset.intersect(BV3.from_int(1, 0))
            if set_ is not None:
                new_set = set_.intersect(BV3.from_int(1, 0))
    else:
        # Multiple cases: only forward-imply the output with the union of the
        # possible sources.
        union: Optional[BV3] = None
        for case in cases:
            source = {
                "reset": reset_cube,
                "set": ones_cube,
                "hold": q_prev,
                "capture": d,
            }[case]
            union = source if union is None else union.union(source)
        new_q_next = q_next.intersect(union)

    result = [new_d]
    if has_enable:
        result.append(new_enable)
    if has_reset:
        result.append(new_reset)
    if has_set:
        result.append(new_set)
    result.extend([new_q_prev, new_q_next])
    return result
