"""Event-driven word-level implication engine.

The engine is agnostic of frames and netlists: it operates on
:class:`ImplicationNode` objects, each of which relates a list of variable
*keys* (hashable identifiers, e.g. ``(net, frame)`` tuples) through an
implication rule.  Whenever a key's cube is refined, every node watching that
key is re-evaluated, until a fixpoint is reached or a conflict surfaces.

Three mechanisms make the engine reusable across incremental checking runs:

* **Retractable node groups** -- nodes added while a decision level (or a
  :meth:`ImplicationEngine.savepoint`) is open are *retired* when that level
  is popped / rolled back: they are removed from the node list, their watcher
  entries are unhooked and their memoisation entries dropped, so a retracted
  goal leaves no trace behind.
* **Node activation** -- a node can be deactivated (``node.active = False``)
  without being removed; inactive nodes are skipped by the propagation
  worklist.  The unrolled model uses this to keep time frames beyond the
  current check bound physically present but logically inert.
* **The unjustified frontier** -- the engine incrementally maintains the set
  of nodes whose required output is not implied by their inputs.  Keys
  touched by assignment or backtracking land in a dirty set; a frontier
  query re-tests only the nodes watching dirty keys, so each step of the
  branch-and-bound search costs O(changed keys) instead of O(active nodes).

Conflict analysis: every trail refinement records its *reason* (the deriving
node, or a :class:`~repro.implication.assignment.RootCause` for external
assignments).  :meth:`ImplicationEngine.analyze_conflict` walks the trail
backward from a conflict to the external roots that produced it, which is
what lets the justifier lift learned illegal cubes down to the decisions
that actually participated.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.bitvector import BV3, BV3Conflict
from repro.implication.assignment import (
    Assignment,
    ImplicationConflict,
    RootCause,
    Savepoint,
)

#: Engine savepoint: (assignment savepoint, node count).
EngineSavepoint = Tuple[Savepoint, int]


class ImplicationNode:
    """One constraint node relating several keys through a gate rule.

    Parameters
    ----------
    name:
        Diagnostic name (usually ``"<gate>@<frame>"``).
    keys:
        Variable keys in the rule's canonical pin order (inputs first).
    rule:
        Callable refining a list of cubes (same order as ``keys``).
    num_outputs:
        How many trailing keys are outputs (used by the justification test).
        Pure constraint nodes (e.g. learned illegal cubes) use 0: they can
        conflict but never carry a requirement of their own.
    """

    __slots__ = (
        "name",
        "keys",
        "rule",
        "num_outputs",
        "tag",
        "active",
        # Populated by the compiled kernel's lowering pass (see
        # repro.implication.compiled); unset on interpreted engines.
        "slots",
        "in_slots",
        "out_slots",
        "index",
    )

    def __init__(
        self,
        name: str,
        keys: Sequence[Hashable],
        rule: Callable[[Sequence[BV3]], List[BV3]],
        num_outputs: int = 1,
        tag: Optional[object] = None,
    ):
        self.name = name
        self.keys = list(keys)
        self.rule = rule
        self.num_outputs = num_outputs
        self.tag = tag
        #: inactive nodes are skipped by propagation (see module docstring).
        self.active = True

    @property
    def input_keys(self) -> List[Hashable]:
        return self.keys[: len(self.keys) - self.num_outputs]

    @property
    def output_keys(self) -> List[Hashable]:
        if self.num_outputs == 0:
            return []
        return self.keys[len(self.keys) - self.num_outputs :]

    def __repr__(self) -> str:
        return "ImplicationNode(%s)" % (self.name,)


@dataclass
class ConflictAnalysis:
    """External antecedents of one implication conflict.

    ``roots`` are the :class:`RootCause` records that fed the conflict (in
    reverse-chronological order, possibly with duplicates); ``cone`` is every
    key the derivation touched; ``opaque`` is set when some contributing
    assignment carried no reason, in which case the analysis is incomplete
    and nothing may be learned from this conflict.
    """

    roots: List[RootCause] = field(default_factory=list)
    cone: Set[Hashable] = field(default_factory=set)
    opaque: bool = False


class ImplicationEngine:
    """Propagates word-level implications to a fixpoint over a node network."""

    #: rule-memo eviction policy.  The LRU experiment (see README.md) found
    #: identical hit rates to FIFO on deep-search sweeps -- per-node caches
    #: rarely reach the 256-entry limit -- while the move-to-end bookkeeping
    #: slowed the hot evaluation path by 15-20%, so FIFO stays the default.
    rule_cache_lru = False

    def __init__(self, assignment: Optional[Assignment] = None):
        self.assignment = assignment if assignment is not None else Assignment()
        self.assignment.on_restore = self._mark_key_dirty
        self.nodes: List[ImplicationNode] = []
        self._watchers: Dict[Hashable, List[ImplicationNode]] = {}
        self._queue: deque = deque()
        self._queued: Set[int] = set()
        self.implication_count = 0
        self.node_evaluations = 0
        # Memoized justification results keyed by the node's pin cubes; the
        # justification test is pure, so identical cubes give identical
        # results.  This makes the repeated unjustified-gate scans of the
        # branch-and-bound search cheap.
        self._justified_cache: Dict[int, Tuple[Tuple[BV3, ...], bool]] = {}
        self.justified_cache_hits = 0
        self.justified_cache_misses = 0
        # Memoized rule evaluations.  Branch-and-bound revisits many
        # identical pin-cube combinations across backtracked branches; rules
        # are pure functions of their cubes, so their results can be reused.
        # Eviction drops one entry at a time (dicts preserve insertion
        # order); with ``rule_cache_lru`` hits are moved to the back first,
        # so deep searches keep their hot entries.
        self._rule_cache: Dict[int, Dict[Tuple[BV3, ...], List[BV3]]] = {}
        self._rule_cache_limit = 256
        self.rule_cache_hits = 0
        self.rule_cache_misses = 0
        self.rule_cache_evictions = 0
        # Node count at each open decision level, so popping a level also
        # retires the nodes added while it was open.
        self._level_node_marks: List[int] = []
        # Unjustified-frontier state: keys touched since the last refresh,
        # nodes explicitly marked for re-testing (activation toggles), and
        # the persistent frontier itself (id(node) -> node).
        self._dirty_keys: Set[Hashable] = set()
        self._dirty_nodes: Dict[int, ImplicationNode] = {}
        self._unjustified: Dict[int, ImplicationNode] = {}
        #: high-water mark of the frontier size (reportable statistic).
        self.frontier_peak = 0

    # ------------------------------------------------------------------
    def add_node(self, node: ImplicationNode, widths: Optional[Sequence[int]] = None) -> None:
        """Register a node; optionally declare the widths of its keys."""
        self.nodes.append(node)
        if widths is not None:
            for key, width in zip(node.keys, widths):
                self.assignment.register(key, width)
        for key in node.keys:
            self._watchers.setdefault(key, []).append(node)
        self._dirty_nodes[id(node)] = node

    def watchers(self, key: Hashable) -> List[ImplicationNode]:
        """Nodes that read or drive ``key``."""
        return self._watchers.get(key, [])

    # ------------------------------------------------------------------
    def assign(
        self,
        key: Hashable,
        cube: BV3,
        propagate: bool = True,
        reason: Optional[object] = None,
    ) -> bool:
        """Refine ``key`` with ``cube`` and (optionally) propagate to fixpoint.

        Returns ``True`` when new information was added.  Raises
        :class:`ImplicationConflict` on contradiction.  ``reason`` is stored
        on the trail for conflict analysis (see :meth:`analyze_conflict`).
        """
        changed = self.assignment.assign(key, cube, reason)
        if changed:
            self.implication_count += 1
            self._enqueue_watchers(key)
            if propagate:
                self.propagate()
        return changed

    def _enqueue_watchers(self, key: Hashable) -> None:
        # Watchers are already being visited here, so the frontier's dirty
        # marking rides along (only backtrack restores go through the
        # cheaper key set, where no watcher walk happens anyway).
        dirty = self._dirty_nodes
        for node in self._watchers.get(key, []):
            dirty[id(node)] = node
            if not node.active:
                continue
            marker = id(node)
            if marker not in self._queued:
                self._queued.add(marker)
                self._queue.append(node)

    def _mark_key_dirty(self, key: Hashable) -> None:
        """Record a restored key for the next frontier refresh."""
        self._dirty_keys.add(key)

    def mark_dirty(self, nodes: Iterable[ImplicationNode]) -> None:
        """Schedule nodes for frontier re-testing (activation toggles)."""
        dirty = self._dirty_nodes
        for node in nodes:
            dirty[id(node)] = node

    def enqueue(self, nodes: Iterable[ImplicationNode]) -> None:
        """Schedule specific nodes for (re-)evaluation."""
        dirty = self._dirty_nodes
        for node in nodes:
            dirty[id(node)] = node
            if not node.active:
                continue
            marker = id(node)
            if marker not in self._queued:
                self._queued.add(marker)
                self._queue.append(node)

    def propagate(self) -> None:
        """Run the implication worklist to a fixpoint.

        Raises :class:`ImplicationConflict` when any rule detects a
        contradiction; the queue is cleared in that case so the caller can
        backtrack and restart cleanly.
        """
        try:
            while self._queue:
                node = self._queue.popleft()
                self._queued.discard(id(node))
                if node.active:
                    self._evaluate(node)
        except (ImplicationConflict, BV3Conflict) as exc:
            self._queue.clear()
            self._queued.clear()
            if isinstance(exc, ImplicationConflict):
                raise
            raise ImplicationConflict(str(exc)) from exc

    def _evaluate(self, node: ImplicationNode) -> None:
        self.node_evaluations += 1
        cubes = [self.assignment.get(key) for key in node.keys]
        cache = self._rule_cache.setdefault(id(node), {})
        cache_key = tuple(cubes)
        refined = cache.get(cache_key)
        if refined is None:
            self.rule_cache_misses += 1
            try:
                refined = node.rule(cubes)
            except BV3Conflict as exc:
                raise ImplicationConflict(
                    "%s: %s" % (node.name, exc), keys=tuple(node.keys)
                ) from exc
            if len(cache) >= self._rule_cache_limit:
                # Drop only the oldest entry, not the whole cache.
                del cache[next(iter(cache))]
                self.rule_cache_evictions += 1
            cache[cache_key] = refined
        else:
            self.rule_cache_hits += 1
            if self.rule_cache_lru:
                # Move-to-end on hit: hot entries outlive the eviction scan.
                del cache[cache_key]
                cache[cache_key] = refined
        try:
            for key, old, new in zip(node.keys, cubes, refined):
                if new is old or new == old:
                    continue
                if self.assignment.assign(key, new, node):
                    self.implication_count += 1
                    self._enqueue_watchers(key)
        except ImplicationConflict as exc:
            if exc.keys is None:
                # Attribute the contradiction to the node that derived the
                # incompatible cube, so conflict analysis can walk all of
                # its antecedents (not just the conflicting key's).
                exc.keys = tuple(node.keys)
            raise

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------
    def analyze_conflict(self, conflict: ImplicationConflict, stop_mark: int) -> ConflictAnalysis:
        """Walk the trail backward from ``conflict`` to its external roots.

        ``stop_mark`` bounds the walk: trail entries below it (the shared
        base-model fixpoint) are treated as part of the model, not as
        antecedents.  The walk visits only entries whose key is already
        known to be in the conflict cone, expanding the cone through each
        deriving node's keys -- the standard implication-graph traversal,
        done directly on the restore trail.

        The conflict need not have been raised by this engine: a synthetic
        :class:`ImplicationConflict` seeded with the key core of an external
        refutation (e.g. a datapath-solver infeasibility certificate) is
        analysed identically, since only :attr:`ImplicationConflict.conflict_keys`
        and the trail are consulted.
        """
        assignment = self.assignment
        relevant: Set[Hashable] = set(conflict.conflict_keys)
        analysis = ConflictAnalysis(cone=relevant, opaque=not relevant)
        for index in range(assignment.trail_length - 1, stop_mark - 1, -1):
            key, _previous, reason = assignment.trail_entry(index)
            if key not in relevant:
                continue
            if reason is None:
                analysis.opaque = True
            elif isinstance(reason, RootCause):
                analysis.roots.append(reason)
            else:  # an ImplicationNode: pull its pins into the cone
                relevant.update(reason.keys)
        return analysis

    # ------------------------------------------------------------------
    # Decision level management (delegates to the assignment store)
    # ------------------------------------------------------------------
    def push_level(self) -> None:
        """Open a decision level (see :class:`Assignment`)."""
        self._level_node_marks.append(len(self.nodes))
        self.assignment.push_level()

    def pop_level(self) -> None:
        """Backtrack one decision level, restoring partially implied cubes.

        Nodes added while the level was open are retired: removed from the
        node list, unhooked from their watcher lists and dropped from the
        memoisation caches, together with any queue entries.
        """
        self._queue.clear()
        self._queued.clear()
        if self._level_node_marks:
            mark = self._level_node_marks.pop()
            if len(self.nodes) > mark:
                self._retire_nodes(mark)
        self.assignment.pop_level()

    # ------------------------------------------------------------------
    # Savepoints (retraction across decision levels and node groups)
    # ------------------------------------------------------------------
    def savepoint(self) -> EngineSavepoint:
        """Capture assignment state and node count for :meth:`rollback_to`."""
        return (self.assignment.savepoint(), len(self.nodes))

    def rollback_to(self, savepoint: EngineSavepoint) -> None:
        """Retract everything after ``savepoint``.

        Closes decision levels opened after the savepoint, restores the
        assignment trail, retires nodes added since, and clears the worklist.
        Safe to call after a conflict (the queue is already clear then).
        """
        assignment_savepoint, node_mark = savepoint
        self._queue.clear()
        self._queued.clear()
        if len(self.nodes) > node_mark:
            self._retire_nodes(node_mark)
        # Level node-marks above the savepoint's depth belong to levels that
        # the assignment rollback closes.
        del self._level_node_marks[assignment_savepoint[1]:]
        self.assignment.rollback_to(assignment_savepoint)

    def _retire_nodes(self, mark: int) -> None:
        """Remove (and unhook) every node added after position ``mark``.

        Retirement is stack-disciplined: retired nodes are exactly the tail
        of the node list, so their watcher entries form a suffix of each
        watcher list and can be popped off the end.
        """
        retired = self.nodes[mark:]
        del self.nodes[mark:]
        retired_ids = {id(node) for node in retired}
        keys: Set[Hashable] = set()
        for node in retired:
            keys.update(node.keys)
        for key in keys:
            watchers = self._watchers.get(key)
            while watchers and id(watchers[-1]) in retired_ids:
                watchers.pop()
            if not watchers:
                self._watchers.pop(key, None)
        # Drop memo and frontier entries: id() values may be reused by
        # future node objects.
        for node_id in retired_ids:
            self._rule_cache.pop(node_id, None)
            self._justified_cache.pop(node_id, None)
            self._dirty_nodes.pop(node_id, None)
            self._unjustified.pop(node_id, None)

    # ------------------------------------------------------------------
    # Justification support
    # ------------------------------------------------------------------
    def forward_outputs(self, node: ImplicationNode) -> List[BV3]:
        """Three-valued forward simulation of a node's outputs."""
        num_inputs = len(node.keys) - node.num_outputs
        cubes = [self.assignment.get(key) for key in node.keys[:num_inputs]]
        cubes += [
            BV3.unknown(self.assignment.width(key)) for key in node.keys[num_inputs:]
        ]
        refined = node.rule(cubes)
        return refined[num_inputs:]

    def is_justified(self, node: ImplicationNode) -> bool:
        """The paper's unjustified-gate test.

        A node is justified when its three-valued forward simulation value
        covers every known bit of the required output value(s); i.e. the
        output requirement already follows from the current input cubes.
        """
        cubes = tuple(self.assignment.get(key) for key in node.keys)
        cached = self._justified_cache.get(id(node))
        if cached is not None and cached[0] == cubes:
            self.justified_cache_hits += 1
            return cached[1]
        self.justified_cache_misses += 1
        result = self._compute_justified(node)
        self._justified_cache[id(node)] = (cubes, result)
        return result

    def _compute_justified(self, node: ImplicationNode) -> bool:
        try:
            forward = self.forward_outputs(node)
        except BV3Conflict:
            return False
        for key, simulated in zip(node.output_keys, forward):
            required = self.assignment.get(key)
            if required.is_fully_unknown():
                continue
            if not required.covers(simulated):
                return False
        return True

    def unjustified_nodes(
        self, nodes: Optional[Iterable[ImplicationNode]] = None
    ) -> List[ImplicationNode]:
        """All nodes whose required output is not yet justified (full scan)."""
        candidates = self.nodes if nodes is None else nodes
        result = []
        for node in candidates:
            has_requirement = any(
                self.assignment.is_assigned(key) for key in node.output_keys
            )
            if has_requirement and not self.is_justified(node):
                result.append(node)
        return result

    # ------------------------------------------------------------------
    # Incremental unjustified frontier
    # ------------------------------------------------------------------
    def _refresh_frontier(self) -> None:
        dirty_nodes = self._dirty_nodes
        if self._dirty_keys:
            watchers = self._watchers
            for key in self._dirty_keys:
                for node in watchers.get(key, ()):
                    dirty_nodes[id(node)] = node
            self._dirty_keys.clear()
        if not dirty_nodes:
            return
        unjustified = self._unjustified
        is_assigned = self.assignment.is_assigned
        for marker, node in dirty_nodes.items():
            if (
                node.active
                and any(is_assigned(key) for key in node.output_keys)
                and not self.is_justified(node)
            ):
                unjustified[marker] = node
            else:
                unjustified.pop(marker, None)
        dirty_nodes.clear()
        if len(unjustified) > self.frontier_peak:
            self.frontier_peak = len(unjustified)

    def unjustified_frontier(
        self, order: Dict[int, int]
    ) -> List[ImplicationNode]:
        """The unjustified nodes, incrementally maintained.

        Only nodes whose keys changed since the last query (assignment,
        backtrack restore, activation toggle, addition) are re-tested; the
        result is returned in the caller's canonical order (``order`` maps
        ``id(node)`` to its rank, e.g. the unrolled model's fresh-build node
        order), making the frontier bit-compatible with a full
        :meth:`unjustified_nodes` scan over the same nodes.
        """
        self._refresh_frontier()
        if not self._unjustified:
            return []
        return sorted(self._unjustified.values(), key=lambda node: order[id(node)])
