"""Implication rules for comparators (paper Fig. 4).

Comparators are the datapath-to-control interface.  Forward implication
decides the 1-bit output when the operand ranges are conclusive; backward
implication tightens the operand ranges from a known output and maps the
tightened ranges back to cubes with the MSB-first procedure of Rules 1-2.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.bitvector import BV3, BV3Conflict
from repro.bitvector.intervals import cube_to_range, range_to_cube, tighten_for_compare


def imply_comparator(op: str, cubes: Sequence[BV3]) -> List[BV3]:
    """Comparator pins: ``a, b, out`` with ``out = (a <op> b)``."""
    a, b, out = cubes

    # ------------------------------------------------------------------
    # Forward: decide the output when the operand information is conclusive.
    # ------------------------------------------------------------------
    forced = _forward_decide(op, a, b)
    new_out = out
    if forced is not None:
        new_out = out.intersect(BV3.from_int(1, forced))

    # ------------------------------------------------------------------
    # Backward: a known output tightens both operand ranges (Fig. 4).
    # ------------------------------------------------------------------
    new_a, new_b = a, b
    out_bit = new_out.bit(0)
    if out_bit is not None:
        if op in ("==", "!="):
            equal_required = (op == "==") == (out_bit == 1)
            if equal_required:
                # Both operands must agree on every known bit.
                merged = new_a.intersect(new_b)
                new_a, new_b = merged, merged
            else:
                # Must differ: conflict when both are known and equal.
                if new_a.is_fully_known() and new_b.is_fully_known() and new_a.value == new_b.value:
                    raise BV3Conflict("operands equal but comparator requires difference")
        else:
            result = out_bit == 1
            range_a, range_b = cube_to_range(new_a), cube_to_range(new_b)
            tight_a, tight_b = tighten_for_compare(op, range_a, range_b, result)
            if tight_a.is_empty() or tight_b.is_empty():
                raise BV3Conflict(
                    "comparator %s with output %d has empty operand range" % (op, out_bit)
                )
            new_a = range_to_cube(new_a, tight_a)
            new_b = range_to_cube(new_b, tight_b)
            # A second pass can tighten further once the cubes improved
            # (the Fig. 4 example needs it for the second operand).
            range_a, range_b = cube_to_range(new_a), cube_to_range(new_b)
            tight_a, tight_b = tighten_for_compare(op, range_a, range_b, result)
            if tight_a.is_empty() or tight_b.is_empty():
                raise BV3Conflict(
                    "comparator %s with output %d has empty operand range" % (op, out_bit)
                )
            new_a = range_to_cube(new_a, tight_a)
            new_b = range_to_cube(new_b, tight_b)

    # Re-run the forward decision with the refined operands to catch
    # conflicts (e.g. output requires > but ranges now force <=).
    forced = _forward_decide(op, new_a, new_b)
    if forced is not None:
        new_out = new_out.intersect(BV3.from_int(1, forced))
    return [new_a, new_b, new_out]


def _forward_decide(op: str, a: BV3, b: BV3):
    """Return 0/1 when the comparator output is already determined, else None."""
    if op == "==":
        if a.is_fully_known() and b.is_fully_known():
            return 1 if a.value == b.value else 0
        if not a.compatible(b):
            return 0
        return None
    if op == "!=":
        if a.is_fully_known() and b.is_fully_known():
            return 1 if a.value != b.value else 0
        if not a.compatible(b):
            return 1
        return None

    min_a, max_a = a.min_value(), a.max_value()
    min_b, max_b = b.min_value(), b.max_value()
    if op == ">":
        if min_a > max_b:
            return 1
        if max_a <= min_b:
            return 0
    elif op == ">=":
        if min_a >= max_b:
            return 1
        if max_a < min_b:
            return 0
    elif op == "<":
        if max_a < min_b:
            return 1
        if min_a >= max_b:
            return 0
    elif op == "<=":
        if max_a <= min_b:
            return 1
        if min_a > max_b:
            return 0
    else:  # pragma: no cover - guarded by the Comparator constructor
        raise ValueError("unknown comparison operator %r" % (op,))
    return None
