"""Word-level logic implication (Section 3.1 of the paper).

Every signal value is a three-valued cube (:class:`repro.bitvector.BV3`).
Implication is performed forward *and* backward on every primitive type, and
-- the paper's key point -- implications are translated across the boundary
between Boolean control logic and the arithmetic datapath (ranges for
comparators, ripple-carry cells for adders, cube unions for multiplexors).

The engine is event driven: whenever a net's cube is refined, every node
touching that net is re-evaluated until a fixpoint is reached or a conflict
is detected.  The assignment store keeps a trail per decision level so that
backtracking restores the *previous partially-implied* cube of each signal,
not the fully unknown value (word-level signals can be implied many times).
"""

from repro.implication.assignment import Assignment, ImplicationConflict
from repro.implication.compiled import CompiledAssignment, CompiledEngine, compile_model
from repro.implication.engine import ImplicationEngine, ImplicationNode
from repro.implication.rules import build_rule, forward_simulate

__all__ = [
    "Assignment",
    "CompiledAssignment",
    "CompiledEngine",
    "ImplicationConflict",
    "ImplicationEngine",
    "ImplicationNode",
    "build_rule",
    "forward_simulate",
    "compile_model",
]
