"""Elaboration ("quick synthesis") of parsed Verilog into the word-level netlist.

Following the paper, elaboration performs no logic minimisation: every
operator in the source maps directly onto one word-level primitive, so the
design intent survives into the netlist that the checker reasons about.

Supported semantics:

* continuous ``assign`` statements become combinational primitives;
* each ``reg`` assigned in an ``always @(posedge clk)`` block becomes a
  word-level register whose next-value function is built from the block's
  ``if``/``case``/non-blocking assignments (unassigned paths hold the
  register's current value);
* an additional ``posedge <rst>`` in the sensitivity list together with a
  top-level ``if (<rst>) ...`` branch is mapped onto the register's
  asynchronous reset pin.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.hdl.ast import (
    AlwaysBlock,
    AssignStmt,
    BinaryOp,
    BitSelect,
    CaseStmt,
    Concat,
    HdlExpression,
    HdlStatement,
    Identifier,
    IfStmt,
    ModuleDecl,
    NonBlockingAssign,
    Number,
    PartSelect,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.parser import parse_verilog
from repro.netlist.circuit import Circuit
from repro.netlist.nets import Net


class ElaborationError(Exception):
    """Raised when the design uses constructs outside the supported subset."""


class Elaborator:
    """Builds a :class:`Circuit` from a parsed module."""

    def __init__(self, module: ModuleDecl):
        self.module = module
        self.circuit = Circuit(module.name, source_lines=module.source_lines)
        self._nets: Dict[str, Net] = {}
        self._register_names: List[str] = []
        self._clock_names: List[str] = []

    # ------------------------------------------------------------------
    def elaborate(self) -> Circuit:
        """Run elaboration and return the resulting circuit."""
        self._collect_registers_and_clocks()
        self._declare_nets()
        for assign in self.module.assigns:
            self._elaborate_assign(assign)
        for block in self.module.always_blocks:
            self._elaborate_always(block)
        self._mark_outputs()
        return self.circuit

    # ------------------------------------------------------------------
    def _collect_registers_and_clocks(self) -> None:
        for block in self.module.always_blocks:
            self._clock_names.append(block.clock)
            for name in self._assigned_names(block.body):
                if name not in self._register_names:
                    self._register_names.append(name)

    def _assigned_names(self, statements: List[HdlStatement]) -> List[str]:
        names: List[str] = []
        for statement in statements:
            if isinstance(statement, NonBlockingAssign):
                names.append(statement.target)
            elif isinstance(statement, IfStmt):
                names.extend(self._assigned_names(statement.then_body))
                names.extend(self._assigned_names(statement.else_body))
            elif isinstance(statement, CaseStmt):
                for _, body in statement.items:
                    names.extend(self._assigned_names(body))
                names.extend(self._assigned_names(statement.default))
        return names

    def _declare_nets(self) -> None:
        declared: Dict[str, int] = {}
        directions: Dict[str, str] = {}
        for port in self.module.ports:
            declared[port.name] = port.width
            directions[port.name] = port.direction
        for net in self.module.nets:
            declared.setdefault(net.name, net.width)

        for name, width in declared.items():
            direction = directions.get(name)
            if direction == "input":
                self._nets[name] = self.circuit.input(name, width)
            else:
                self._nets[name] = self.circuit.new_net(name, width)

    def _mark_outputs(self) -> None:
        for port in self.module.ports:
            if port.direction == "output":
                self.circuit.output(self._nets[port.name])

    # ------------------------------------------------------------------
    # Continuous assignments
    # ------------------------------------------------------------------
    def _elaborate_assign(self, assign: AssignStmt) -> None:
        if not isinstance(assign.target, str):
            raise ElaborationError(
                "bit/part-select assignment targets are not supported (module %s)"
                % (self.module.name,)
            )
        target = self._net(assign.target)
        value = self._expression(assign.expr, width_hint=target.width)
        value = self._fit(value, target.width)
        # Connect through a buffer so the declared net keeps its name.
        from repro.netlist.gates import BufGate

        self.circuit._register(BufGate(self.circuit._unique_name("buf"), [value], target))

    # ------------------------------------------------------------------
    # Clocked processes
    # ------------------------------------------------------------------
    def _elaborate_always(self, block: AlwaysBlock) -> None:
        body = block.body
        reset_net: Optional[Net] = None
        reset_values: Dict[str, int] = {}

        if block.reset is not None:
            reset_net = self._net(block.reset)
            # The conventional async-reset shape: if (rst) <resets> else <logic>
            if len(body) == 1 and isinstance(body[0], IfStmt) and self._is_reset_condition(
                body[0].condition, block.reset
            ):
                for statement in body[0].then_body:
                    if isinstance(statement, NonBlockingAssign) and isinstance(
                        statement.expr, Number
                    ):
                        reset_values[statement.target] = statement.expr.value
                body = body[0].else_body

        registers = sorted(set(self._assigned_names(body)) | set(reset_values))
        current = {name: self._net(name) for name in registers}
        next_values = self._interpret(body, dict(current))

        for name in registers:
            target = current.get(name, self._net(name))
            next_net = self._fit(next_values.get(name, target), target.width)
            self.circuit.dff_into(
                target,
                next_net,
                reset=reset_net,
                reset_value=reset_values.get(name, 0),
                init_value=0,
            )

    def _is_reset_condition(self, condition: HdlExpression, reset_name: str) -> bool:
        return isinstance(condition, Identifier) and condition.name == reset_name

    def _interpret(
        self, statements: List[HdlStatement], values: Dict[str, Net]
    ) -> Dict[str, Net]:
        """Symbolically execute a statement list, returning next-value nets."""
        result = dict(values)
        for statement in statements:
            if isinstance(statement, NonBlockingAssign):
                target_width = self._net(statement.target).width
                result[statement.target] = self._fit(
                    self._expression(statement.expr, width_hint=target_width), target_width
                )
            elif isinstance(statement, IfStmt):
                condition = self._condition(statement.condition)
                then_values = self._interpret(statement.then_body, result)
                else_values = self._interpret(statement.else_body, result)
                result = self._merge(condition, then_values, else_values)
            elif isinstance(statement, CaseStmt):
                result = self._interpret_case(statement, result)
            else:
                raise ElaborationError("unsupported statement %r" % (statement,))
        return result

    def _interpret_case(self, statement: CaseStmt, values: Dict[str, Net]) -> Dict[str, Net]:
        selector = self._expression(statement.selector)
        result = self._interpret(statement.default, values) if statement.default else dict(values)
        # Later case items take priority when labels overlap, matching the
        # first-match semantics of a Verilog case evaluated top to bottom.
        for labels, body in reversed(statement.items):
            branch = self._interpret(body, values)
            match_terms = []
            for label in labels:
                label_net = self._fit(self._expression(label, width_hint=selector.width), selector.width)
                match_terms.append(self.circuit.eq(selector, label_net))
            matches = match_terms[0] if len(match_terms) == 1 else self.circuit.or_(*match_terms)
            result = self._merge(matches, branch, result)
        return result

    def _merge(
        self, condition: Net, when_true: Dict[str, Net], when_false: Dict[str, Net]
    ) -> Dict[str, Net]:
        merged: Dict[str, Net] = {}
        for name in set(when_true) | set(when_false):
            true_net = when_true.get(name, self._net(name))
            false_net = when_false.get(name, self._net(name))
            if true_net is false_net:
                merged[name] = true_net
            else:
                merged[name] = self.circuit.mux(condition, false_net, true_net)
        return merged

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise ElaborationError(
                "undeclared identifier %r in module %r" % (name, self.module.name)
            ) from None

    def _fit(self, net: Net, width: int) -> Net:
        if net.width == width:
            return net
        if net.width < width:
            return self.circuit.zext(net, width)
        return self.circuit.slice(net, width - 1, 0)

    def _condition(self, expr: HdlExpression) -> Net:
        net = self._expression(expr)
        if net.width == 1:
            return net
        return self.circuit.ne(net, 0)

    def _expression(self, expr: HdlExpression, width_hint: Optional[int] = None) -> Net:
        circuit = self.circuit
        if isinstance(expr, Identifier):
            return self._net(expr.name)
        if isinstance(expr, Number):
            width = expr.width or width_hint or max(1, expr.value.bit_length())
            return circuit.const(expr.value, width)
        if isinstance(expr, BitSelect):
            return circuit.bit(self._net(expr.name), expr.index)
        if isinstance(expr, PartSelect):
            return circuit.slice(self._net(expr.name), expr.msb, expr.lsb)
        if isinstance(expr, Concat):
            parts = [self._expression(part) for part in expr.parts]
            return circuit.concat(*parts)
        if isinstance(expr, UnaryOp):
            return self._unary(expr)
        if isinstance(expr, BinaryOp):
            return self._binary(expr, width_hint)
        if isinstance(expr, TernaryOp):
            condition = self._condition(expr.condition)
            when_true = self._expression(expr.when_true, width_hint)
            when_false = self._expression(expr.when_false, width_hint)
            width = max(when_true.width, when_false.width)
            return circuit.mux(condition, self._fit(when_false, width), self._fit(when_true, width))
        raise ElaborationError("unsupported expression %r" % (expr,))

    def _unary(self, expr: UnaryOp) -> Net:
        circuit = self.circuit
        operand = self._expression(expr.operand)
        if expr.op == "~":
            return circuit.not_(operand)
        if expr.op == "!":
            return circuit.eq(operand, 0)
        if expr.op == "-":
            return circuit.sub(circuit.const(0, operand.width), operand)
        if expr.op == "&":
            return circuit.reduce_and(operand)
        if expr.op == "|":
            return circuit.reduce_or(operand)
        if expr.op == "^":
            return circuit.reduce_xor(operand)
        raise ElaborationError("unsupported unary operator %r" % (expr.op,))

    def _binary(self, expr: BinaryOp, width_hint: Optional[int]) -> Net:
        circuit = self.circuit
        op = expr.op
        if op in ("&&", "||"):
            lhs = self._condition(expr.lhs)
            rhs = self._condition(expr.rhs)
            return circuit.and_(lhs, rhs) if op == "&&" else circuit.or_(lhs, rhs)

        lhs = self._expression(expr.lhs, width_hint)
        rhs = self._expression(expr.rhs, width_hint)
        if op in ("<<", ">>"):
            if isinstance(expr.rhs, Number):
                amount: Union[Net, int] = expr.rhs.value
            else:
                amount = rhs
            return circuit.shl(lhs, amount) if op == "<<" else circuit.shr(lhs, amount)

        width = max(lhs.width, rhs.width)
        lhs, rhs = self._fit(lhs, width), self._fit(rhs, width)
        builders = {
            "+": circuit.add, "-": circuit.sub, "*": circuit.mul,
            "&": circuit.and_, "|": circuit.or_, "^": circuit.xor,
            "==": circuit.eq, "!=": circuit.ne, "<": circuit.lt,
            "<=": circuit.le, ">": circuit.gt, ">=": circuit.ge,
            "~^": circuit.xnor, "^~": circuit.xnor,
        }
        if op not in builders:
            raise ElaborationError("unsupported binary operator %r" % (op,))
        return builders[op](lhs, rhs)


def elaborate(module: ModuleDecl) -> Circuit:
    """Elaborate a parsed module into a circuit."""
    return Elaborator(module).elaborate()


def compile_verilog(source: str, top: Optional[str] = None) -> Circuit:
    """Parse and elaborate Verilog source text (single-module designs)."""
    modules = parse_verilog(source)
    if top is None:
        module = modules[0]
    else:
        matches = [m for m in modules if m.name == top]
        if not matches:
            raise ElaborationError("no module named %r in source" % (top,))
        module = matches[0]
    return elaborate(module)
