"""Recursive-descent parser for the supported Verilog subset."""

from __future__ import annotations

from typing import List, Tuple, Union

from repro.hdl.ast import (
    AlwaysBlock,
    AssignStmt,
    BinaryOp,
    BitSelect,
    CaseStmt,
    Concat,
    HdlExpression,
    HdlStatement,
    Identifier,
    IfStmt,
    ModuleDecl,
    NetDecl,
    NonBlockingAssign,
    Number,
    ParameterDecl,
    PartSelect,
    PortDecl,
    TernaryOp,
    UnaryOp,
)
from repro.hdl.lexer import Lexer, Token, TokenKind, parse_number_literal


class ParseError(Exception):
    """Raised on syntax errors, with the offending source position."""


#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "~^": 4, "^~": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    """Parses one or more module definitions."""

    def __init__(self, source: str):
        self.tokens = Lexer(source).tokenize()
        self.index = 0
        self.source_lines = source.count("\n") + 1
        self._parameters = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def _advance(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.EOF:
            self.index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise ParseError("expected %r, got %r at line %d" % (word, token.text, token.line))
        return token

    def _expect_punct(self, punct: str) -> Token:
        token = self._advance()
        if not token.is_punct(punct):
            raise ParseError("expected %r, got %r at line %d" % (punct, token.text, token.line))
        return token

    def _expect_op(self, op: str) -> Token:
        token = self._advance()
        if not token.is_op(op):
            raise ParseError("expected %r, got %r at line %d" % (op, token.text, token.line))
        return token

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind is not TokenKind.IDENT:
            raise ParseError("expected identifier, got %r at line %d" % (token.text, token.line))
        return token.text

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> List[ModuleDecl]:
        """Parse every module in the source."""
        modules: List[ModuleDecl] = []
        while not self._peek().kind is TokenKind.EOF:
            modules.append(self._parse_module())
        if not modules:
            raise ParseError("no module found in source")
        return modules

    def _parse_module(self) -> ModuleDecl:
        self._expect_keyword("module")
        module = ModuleDecl(name=self._expect_ident(), source_lines=self.source_lines)
        self._parameters = {}

        # Port name list (ANSI headers with directions are also accepted).
        declared_in_header = {}
        if self._peek().is_punct("("):
            self._advance()
            while not self._peek().is_punct(")"):
                token = self._peek()
                if token.kind is TokenKind.KEYWORD and token.text in ("input", "output", "inout"):
                    direction = self._advance().text
                    width = self._parse_optional_range()
                    if self._peek().is_keyword("wire") or self._peek().is_keyword("reg"):
                        self._advance()
                        if width == 1:
                            width = self._parse_optional_range()
                    name = self._expect_ident()
                    declared_in_header[name] = PortDecl(direction, name, width)
                    module.ports.append(declared_in_header[name])
                elif token.kind is TokenKind.IDENT:
                    self._advance()
                elif self._peek().is_punct(","):
                    pass
                else:
                    raise ParseError(
                        "unexpected token %r in port list at line %d"
                        % (token.text, token.line)
                    )
                if self._peek().is_punct(","):
                    self._advance()
            self._expect_punct(")")
        self._expect_punct(";")

        while not self._peek().is_keyword("endmodule"):
            token = self._peek()
            if token.kind is TokenKind.KEYWORD and token.text in ("input", "output", "inout"):
                self._parse_port_declaration(module)
            elif token.kind is TokenKind.KEYWORD and token.text in ("wire", "reg"):
                self._parse_net_declaration(module)
            elif token.kind is TokenKind.KEYWORD and token.text in ("parameter", "localparam"):
                self._parse_parameter(module)
            elif token.is_keyword("assign"):
                module.assigns.append(self._parse_assign())
            elif token.is_keyword("always"):
                module.always_blocks.append(self._parse_always())
            else:
                raise ParseError(
                    "unexpected token %r at line %d" % (token.text, token.line)
                )
        self._expect_keyword("endmodule")
        return module

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def _parse_optional_range(self) -> int:
        """Parse ``[msb:lsb]`` and return the width (1 when absent)."""
        if not self._peek().is_punct("["):
            return 1
        self._advance()
        msb = self._parse_constant_expression()
        self._expect_punct(":")
        lsb = self._parse_constant_expression()
        self._expect_punct("]")
        return msb - lsb + 1

    def _parse_port_declaration(self, module: ModuleDecl) -> None:
        direction = self._advance().text
        if self._peek().is_keyword("wire") or self._peek().is_keyword("reg"):
            self._advance()
        width = self._parse_optional_range()
        while True:
            name = self._expect_ident()
            existing = next((p for p in module.ports if p.name == name), None)
            if existing is not None:
                existing.direction = direction
                existing.width = width
            else:
                module.ports.append(PortDecl(direction, name, width))
            if self._peek().is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")

    def _parse_net_declaration(self, module: ModuleDecl) -> None:
        kind = self._advance().text
        width = self._parse_optional_range()
        while True:
            name = self._expect_ident()
            if not any(p.name == name for p in module.ports):
                module.nets.append(NetDecl(kind, name, width))
            if self._peek().is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")

    def _parse_parameter(self, module: ModuleDecl) -> None:
        self._advance()
        self._parse_optional_range()
        while True:
            name = self._expect_ident()
            self._expect_op("=")
            value = self._parse_constant_expression()
            module.parameters.append(ParameterDecl(name, value))
            self._parameters[name] = value
            if self._peek().is_punct(","):
                self._advance()
                continue
            break
        self._expect_punct(";")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_assign(self) -> AssignStmt:
        self._expect_keyword("assign")
        target = self._parse_assignment_target()
        self._expect_op("=")
        expr = self._parse_expression()
        self._expect_punct(";")
        return AssignStmt(target, expr)

    def _parse_assignment_target(self) -> Union[str, BitSelect, PartSelect]:
        name = self._expect_ident()
        if self._peek().is_punct("["):
            self._advance()
            first = self._parse_constant_expression()
            if self._peek().is_punct(":"):
                self._advance()
                second = self._parse_constant_expression()
                self._expect_punct("]")
                return PartSelect(name, first, second)
            self._expect_punct("]")
            return BitSelect(name, first)
        return name

    def _parse_always(self) -> AlwaysBlock:
        self._expect_keyword("always")
        self._expect_punct("@")
        self._expect_punct("(")
        edge = self._advance()
        if not (edge.is_keyword("posedge") or edge.is_keyword("negedge")):
            raise ParseError(
                "only edge-triggered always blocks are supported (line %d)" % (edge.line,)
            )
        clock = self._expect_ident()
        reset = None
        reset_edge = None
        if self._peek().is_keyword("or") if self._peek().kind is TokenKind.IDENT else False:
            pass
        while self._peek().kind is TokenKind.IDENT and self._peek().text == "or":
            self._advance()
            extra_edge = self._advance()
            reset_edge = extra_edge.text
            reset = self._expect_ident()
        self._expect_punct(")")
        body = self._parse_statement_block()
        return AlwaysBlock(clock=clock, edge=edge.text, body=body, reset=reset, reset_edge=reset_edge)

    def _parse_statement_block(self) -> List[HdlStatement]:
        if self._peek().is_keyword("begin"):
            self._advance()
            statements: List[HdlStatement] = []
            while not self._peek().is_keyword("end"):
                statements.append(self._parse_statement())
            self._expect_keyword("end")
            return statements
        return [self._parse_statement()]

    def _parse_statement(self) -> HdlStatement:
        token = self._peek()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("case"):
            return self._parse_case()
        if token.kind is TokenKind.IDENT:
            name = self._expect_ident()
            self._expect_op("<=")
            expr = self._parse_expression()
            self._expect_punct(";")
            return NonBlockingAssign(name, expr)
        raise ParseError("unexpected statement at line %d: %r" % (token.line, token.text))

    def _parse_if(self) -> IfStmt:
        self._expect_keyword("if")
        self._expect_punct("(")
        condition = self._parse_expression()
        self._expect_punct(")")
        then_body = self._parse_statement_block()
        else_body: List[HdlStatement] = []
        if self._peek().is_keyword("else"):
            self._advance()
            if self._peek().is_keyword("if"):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_statement_block()
        return IfStmt(condition, then_body, else_body)

    def _parse_case(self) -> CaseStmt:
        self._expect_keyword("case")
        self._expect_punct("(")
        selector = self._parse_expression()
        self._expect_punct(")")
        items: List[Tuple[List[HdlExpression], List[HdlStatement]]] = []
        default: List[HdlStatement] = []
        while not self._peek().is_keyword("endcase"):
            if self._peek().is_keyword("default"):
                self._advance()
                self._expect_punct(":")
                default = self._parse_statement_block()
                continue
            labels = [self._parse_expression()]
            while self._peek().is_punct(","):
                self._advance()
                labels.append(self._parse_expression())
            self._expect_punct(":")
            body = self._parse_statement_block()
            items.append((labels, body))
        self._expect_keyword("endcase")
        return CaseStmt(selector, items, default)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _parse_constant_expression(self) -> int:
        expr = self._parse_expression()
        return self._fold_constant(expr)

    def _fold_constant(self, expr: HdlExpression) -> int:
        if isinstance(expr, Number):
            return expr.value
        if isinstance(expr, Identifier) and expr.name in self._parameters:
            return self._parameters[expr.name]
        if isinstance(expr, BinaryOp):
            lhs = self._fold_constant(expr.lhs)
            rhs = self._fold_constant(expr.rhs)
            operations = {
                "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                "/": lhs // rhs if rhs else 0, "%": lhs % rhs if rhs else 0,
                "<<": lhs << rhs, ">>": lhs >> rhs,
            }
            if expr.op in operations:
                return operations[expr.op]
        raise ParseError("expected a constant expression, got %r" % (expr,))

    def _parse_expression(self, min_precedence: int = 0) -> HdlExpression:
        lhs = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind is not TokenKind.OPERATOR or token.text not in _PRECEDENCE:
                break
            precedence = _PRECEDENCE[token.text]
            if precedence < min_precedence:
                break
            op = self._advance().text
            rhs = self._parse_expression(precedence + 1)
            lhs = BinaryOp(op, lhs, rhs)
        # Ternary operator has the lowest precedence.
        if min_precedence == 0 and self._peek().is_op("?"):
            self._advance()
            when_true = self._parse_expression()
            self._expect_punct(":")
            when_false = self._parse_expression()
            return TernaryOp(lhs, when_true, when_false)
        return lhs

    def _parse_unary(self) -> HdlExpression:
        token = self._peek()
        if token.kind is TokenKind.OPERATOR and token.text in ("~", "!", "-", "&", "|", "^"):
            self._advance()
            return UnaryOp(token.text, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> HdlExpression:
        token = self._advance()
        if token.kind in (TokenKind.NUMBER, TokenKind.BASED_NUMBER):
            width, value = parse_number_literal(token.text)
            return Number(value, width)
        if token.is_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.is_punct("{"):
            parts = [self._parse_expression()]
            while self._peek().is_punct(","):
                self._advance()
                parts.append(self._parse_expression())
            self._expect_punct("}")
            return Concat(parts)
        if token.kind is TokenKind.IDENT:
            name = token.text
            if name in self._parameters:
                return Number(self._parameters[name])
            if self._peek().is_punct("["):
                self._advance()
                first = self._parse_constant_expression()
                if self._peek().is_punct(":"):
                    self._advance()
                    second = self._parse_constant_expression()
                    self._expect_punct("]")
                    return PartSelect(name, first, second)
                self._expect_punct("]")
                return BitSelect(name, first)
            return Identifier(name)
        raise ParseError("unexpected token %r at line %d" % (token.text, token.line))


def parse_verilog(source: str) -> List[ModuleDecl]:
    """Parse Verilog source text into module declarations."""
    return Parser(source).parse()
