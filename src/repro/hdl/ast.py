"""Abstract syntax tree of the supported Verilog subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class HdlExpression:
    """Base class of HDL expressions."""


@dataclass
class Identifier(HdlExpression):
    """A reference to a declared net or register."""

    name: str


@dataclass
class Number(HdlExpression):
    """A numeric literal, optionally with an explicit width."""

    value: int
    width: Optional[int] = None


@dataclass
class UnaryOp(HdlExpression):
    """Unary operator: ``~``, ``!``, ``-``, ``&`` (reduction), ``|``, ``^``."""

    op: str
    operand: HdlExpression


@dataclass
class BinaryOp(HdlExpression):
    """Binary operator over two sub-expressions."""

    op: str
    lhs: HdlExpression
    rhs: HdlExpression


@dataclass
class TernaryOp(HdlExpression):
    """Conditional selection ``condition ? when_true : when_false``."""

    condition: HdlExpression
    when_true: HdlExpression
    when_false: HdlExpression


@dataclass
class Concat(HdlExpression):
    """Concatenation ``{a, b, c}`` (most significant part first)."""

    parts: List[HdlExpression]


@dataclass
class BitSelect(HdlExpression):
    """Single-bit select ``name[index]`` (constant index only)."""

    name: str
    index: int


@dataclass
class PartSelect(HdlExpression):
    """Part select ``name[msb:lsb]`` (constant bounds only)."""

    name: str
    msb: int
    lsb: int


# ----------------------------------------------------------------------
# Statements and declarations
# ----------------------------------------------------------------------
class HdlStatement:
    """Base class of procedural statements."""


@dataclass
class NonBlockingAssign(HdlStatement):
    """``target <= expression;`` inside a clocked process."""

    target: str
    expr: HdlExpression


@dataclass
class IfStmt(HdlStatement):
    """``if (condition) ... else ...``."""

    condition: HdlExpression
    then_body: List[HdlStatement]
    else_body: List[HdlStatement] = field(default_factory=list)


@dataclass
class CaseStmt(HdlStatement):
    """``case (selector) value: ...; default: ...; endcase``."""

    selector: HdlExpression
    items: List[Tuple[List[HdlExpression], List[HdlStatement]]]
    default: List[HdlStatement] = field(default_factory=list)


@dataclass
class AssignStmt:
    """Continuous assignment ``assign target = expression;``."""

    target: Union[str, "PartSelect", "BitSelect"]
    expr: HdlExpression


@dataclass
class AlwaysBlock:
    """A clocked process ``always @(posedge clock) ...``."""

    clock: str
    edge: str
    body: List[HdlStatement]
    reset: Optional[str] = None
    reset_edge: Optional[str] = None


@dataclass
class PortDecl:
    """A module port with direction and width."""

    direction: str
    name: str
    width: int


@dataclass
class NetDecl:
    """An internal ``wire`` or ``reg`` declaration."""

    kind: str
    name: str
    width: int


@dataclass
class ParameterDecl:
    """A ``parameter``/``localparam`` constant."""

    name: str
    value: int


@dataclass
class ModuleDecl:
    """One Verilog module."""

    name: str
    ports: List[PortDecl] = field(default_factory=list)
    nets: List[NetDecl] = field(default_factory=list)
    parameters: List[ParameterDecl] = field(default_factory=list)
    assigns: List[AssignStmt] = field(default_factory=list)
    always_blocks: List[AlwaysBlock] = field(default_factory=list)
    source_lines: int = 0

    def port(self, name: str) -> PortDecl:
        """Look up a port by name."""
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError("no port named %r in module %r" % (name, self.name))
